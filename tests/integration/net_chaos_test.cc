// The network-chaos campaign: seeds x fault mixes x workloads, each cell one
// complete exchange over an adversarial LossyChannel carried by the session
// layer. The invariant, every cell, no exceptions:
//
//   the exchange either completes with a verified quote (or the app-level
//   equivalent: a correct login verdict, the correct factor list) or fails
//   CLOSED with a typed Status within its deadline. Zero accepted-but-wrong.
//
// A deliberately replay-vulnerable verifier variant (trust_wire_nonce) is
// run through the same adversary as a control: it must FAIL the matrix,
// proving the campaign can actually catch accepted-but-wrong endpoints.

#include <algorithm>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/distributed.h"
#include "src/apps/hello.h"
#include "src/apps/ssh.h"
#include "src/attest/verifier.h"
#include "src/common/serde.h"
#include "src/core/remote_attestation.h"
#include "src/crypto/sha1.h"
#include "src/net/session.h"

namespace flicker {
namespace {

// Generous app-level deadlines: a Flicker session on the server burns around
// a second of simulated time (SKINIT + unseal + quote), so the transport
// gets several retransmit windows around one handler run. Finite, though: a
// dead wire still fails closed.
SessionConfig ChaosSessionConfig() {
  SessionConfig config;
  config.attempt_timeout_ms = 60.0;
  config.max_attempts = 6;
  config.total_deadline_ms = 8000.0;
  return config;
}

// The server's handler runs to completion once a request frame is accepted,
// so a cell may overshoot the session deadline by at most one handler run
// before the client can observe the expiry and fail closed.
constexpr double kHandlerSlackMs = 3000.0;

enum class CellVerdict { kVerified, kFailedClosed, kWrongAnswer };

struct MixSpec {
  const char* name;
  NetFaultMix mix;
  std::vector<PartitionWindow> partitions;
};

std::vector<MixSpec> ChaosMixes() {
  std::vector<MixSpec> mixes;
  mixes.push_back({"clean", NetFaultMix{}, {}});
  MixSpec drop5{"drop5", NetFaultMix{}, {}};
  drop5.mix.drop_bp = 500;
  mixes.push_back(drop5);
  MixSpec drop20{"drop20", NetFaultMix{}, {}};
  drop20.mix.drop_bp = 2000;
  mixes.push_back(drop20);
  MixSpec dupdrop{"dup10+drop5", NetFaultMix{}, {}};
  dupdrop.mix.duplicate_bp = 1000;
  dupdrop.mix.drop_bp = 500;
  mixes.push_back(dupdrop);
  MixSpec corrupt{"corrupt10", NetFaultMix{}, {}};
  corrupt.mix.corrupt_bp = 1000;
  mixes.push_back(corrupt);
  MixSpec slow{"delay20+reorder10", NetFaultMix{}, {}};
  slow.mix.delay_bp = 2000;
  slow.mix.delay_ms = 40.0;
  slow.mix.reorder_bp = 1000;
  mixes.push_back(slow);
  // The cut swallows every datagram a default call can send (6 attempts =
  // 6 requests, responses included in the window): guaranteed fail-closed
  // cells, so the campaign provably exercises that path too.
  MixSpec cut{"partition+drop10", NetFaultMix{}, {{1, 16}}};
  cut.mix.drop_bp = 1000;
  mixes.push_back(cut);
  return mixes;
}

bool IsCleanMix(const MixSpec& spec) {
  return spec.mix.drop_bp == 0 && spec.mix.duplicate_bp == 0 && spec.mix.reorder_bp == 0 &&
         spec.mix.corrupt_bp == 0 && spec.mix.delay_bp == 0 && spec.partitions.empty();
}

struct MatrixTally {
  int cells = 0;
  int verified = 0;
  int failed_closed = 0;
  int wrong = 0;

  void Count(CellVerdict verdict) {
    ++cells;
    verified += verdict == CellVerdict::kVerified;
    failed_closed += verdict == CellVerdict::kFailedClosed;
    wrong += verdict == CellVerdict::kWrongAnswer;
  }
};

class NetChaosTest : public ::testing::Test {
 protected:
  NetChaosTest()
      : hello_binary_(MakeBinary(std::make_shared<HelloWorldPal>())),
        ssh_binary_(MakeBinary(std::make_shared<SshPal>())),
        dist_binary_(MakeBinary(std::make_shared<DistributedPal>())),
        cert_(ca_.Certify(platform_.tpm()->aik_public(), "chaos-host")),
        service_(&platform_, cert_),
        verifier_(&hello_binary_, ca_.public_key()),
        ssh_server_(&platform_, &ssh_binary_),
        ssh_client_(&ssh_binary_, ca_.public_key(), cert_),
        boinc_client_(&platform_, &dist_binary_) {}

  static PalBinary MakeBinary(std::shared_ptr<Pal> pal) {
    PalBuildOptions options;
    options.measurement_stub = true;
    return BuildPal(std::move(pal), options).take();
  }

  // One session-layer exchange over a fresh adversarial wire. `classify`
  // judges a delivered OK reply; transport/typed-Status failures are the
  // fail-closed outcome by construction.
  CellVerdict RunCell(uint64_t schedule_seed, const MixSpec& spec, const Bytes& request,
                      const SessionServer::Handler& handler,
                      const std::function<CellVerdict(const Bytes&)>& classify) {
    LossyChannel channel(platform_.clock());
    channel.set_fault_schedule(NetFaultSchedule(schedule_seed, spec.mix, spec.partitions));
    SessionClient client(&channel, NetEndpoint::kClient, ChaosSessionConfig());
    SessionServer server(&channel, NetEndpoint::kServer);
    const double start_ms = platform_.clock()->NowMillis();
    Result<Bytes> reply = client.Call(request, [&](double deadline_ms) {
      server.ServePending(deadline_ms, handler);
    });
    const double elapsed_ms = platform_.clock()->NowMillis() - start_ms;
    EXPECT_LE(elapsed_ms, ChaosSessionConfig().total_deadline_ms + kHandlerSlackMs)
        << spec.name << " seed " << schedule_seed << " blew its deadline";
    if (!reply.ok()) {
      return CellVerdict::kFailedClosed;
    }
    CellVerdict verdict = classify(reply.value());
    if (verdict == CellVerdict::kWrongAnswer) {
      std::cerr << "WRONG ANSWER in mix " << spec.name << " seed " << schedule_seed << "\n";
      channel.DumpTrace(std::cerr);
    }
    return verdict;
  }

  FlickerPlatform platform_;
  PalBinary hello_binary_;
  PalBinary ssh_binary_;
  PalBinary dist_binary_;
  PrivacyCa ca_;
  AikCertificate cert_;
  AttestationService service_;
  AttestationVerifier verifier_;
  SshServer ssh_server_;
  SshClient ssh_client_;
  BoincClient boinc_client_;
};

TEST_F(NetChaosTest, MatrixHoldsInvariantAcross200PlusCells) {
  const std::vector<MixSpec> mixes = ChaosMixes();
  const int kSeeds = 10;
  MatrixTally tally;
  MatrixTally clean_tally;
  int replay_cells = 0;

  // ---- Shared fixtures built once; the chaos lives in the network. ----

  // SSH: establish and pin K_PAL over a clean control channel.
  ASSERT_TRUE(ssh_server_.AddUser("alice", "correct horse", "a1b2c3d4").ok());
  {
    Bytes setup_nonce = ssh_client_.MakeNonce();
    Result<SshServer::SetupResult> setup = ssh_server_.Setup(setup_nonce);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    ASSERT_TRUE(ssh_client_.VerifyServerSetup(setup.value(), setup_nonce).ok());
  }

  // Distributed: compute one unit and record its attested submission; every
  // cell then carries that same submission across a different hostile wire.
  BoincServer boinc_server;
  FactorWorkUnit unit = boinc_server.CreateWorkUnit(30030);
  unit.search_limit = 10000;
  const std::vector<uint64_t> reference = BoincServer::ReferenceFactors(unit);
  Bytes boinc_nonce = platform_.tpm()->GetRandom(20);
  ASSERT_TRUE(boinc_client_.Initialize().ok());
  ASSERT_TRUE(boinc_client_.Process(unit, 200, boinc_nonce).status.ok());
  Result<BoincClient::ResultSubmission> submission = boinc_client_.SubmitResult(boinc_nonce);
  ASSERT_TRUE(submission.ok()) << submission.status().ToString();
  const Bytes submission_wire = submission.value().Serialize();

  // A genuine reply the on-path replay adversary will answer with later.
  Bytes recorded_reply;
  {
    Bytes challenge = verifier_.MakeChallenge();
    Result<Bytes> reply = service_.HandleChallenge(challenge, hello_binary_, BytesOf("warmup"));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(verifier_.CheckReply(reply.value()).status.ok());
    recorded_reply = reply.value();
  }

  for (size_t mix_index = 0; mix_index < mixes.size(); ++mix_index) {
    const MixSpec& spec = mixes[mix_index];
    const bool clean = IsCleanMix(spec);
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const uint64_t schedule_seed = static_cast<uint64_t>(seed) * 1000003ULL + mix_index;

      // ---- Workload 1: remote attestation (challenge -> verified quote).
      // Every third seed the server is an on-path adversary replaying the
      // recorded genuine reply; the hardened verifier must fail it closed.
      {
        const bool adversary_replays = (seed % 3 == 0);
        replay_cells += adversary_replays;
        Bytes challenge = verifier_.MakeChallenge();
        Result<AttestationChallenge> issued = AttestationChallenge::Deserialize(challenge);
        ASSERT_TRUE(issued.ok());
        SessionServer::Handler handler = [&](const Bytes& wire) -> Result<Bytes> {
          if (adversary_replays) {
            return recorded_reply;
          }
          return service_.HandleChallenge(wire, hello_binary_, BytesOf("chaos"));
        };
        auto classify = [&](const Bytes& reply_wire) {
          AttestationVerifier::Outcome outcome = verifier_.CheckReply(reply_wire);
          if (!outcome.status.ok()) {
            return CellVerdict::kFailedClosed;  // Rejected reply: closed.
          }
          // Accepted: it must be THIS cell's exchange, nothing stale.
          return outcome.log.nonce == issued.value().nonce &&
                         outcome.log.outputs == BytesOf("Hello, world")
                     ? CellVerdict::kVerified
                     : CellVerdict::kWrongAnswer;
        };
        CellVerdict verdict = RunCell(schedule_seed, spec, challenge, handler, classify);
        tally.Count(verdict);
        if (clean) {
          clean_tally.Count(verdict);
          // With no faults armed the outcome is exactly determined: genuine
          // exchanges verify, the replay adversary is always caught.
          EXPECT_EQ(verdict, adversary_replays ? CellVerdict::kFailedClosed
                                               : CellVerdict::kVerified)
              << "clean attestation cell, seed " << seed;
        }
      }

      // ---- Workload 2: secure channel (SSH login over the lossy wire).
      {
        Bytes login_nonce = ssh_client_.MakeNonce();
        Result<Bytes> encrypted = ssh_client_.EncryptPassword("correct horse", login_nonce);
        ASSERT_TRUE(encrypted.ok());
        SshLoginRequest login;
        login.username = "alice";
        login.encrypted_password = encrypted.value();
        login.login_nonce = login_nonce;
        SessionServer::Handler handler = [&](const Bytes& wire) {
          return ssh_server_.HandleLoginFrame(wire);
        };
        auto classify = [](const Bytes& reply) {
          if (reply.size() == 1 && reply[0] == 1) {
            return CellVerdict::kVerified;  // Correct password authenticated.
          }
          if (reply.size() == 1 && reply[0] == 0) {
            return CellVerdict::kFailedClosed;  // Denied: safe, not wrong.
          }
          return CellVerdict::kWrongAnswer;  // Garbage accepted as a verdict.
        };
        CellVerdict verdict =
            RunCell(schedule_seed ^ 0x55aaULL, spec, login.Serialize(), handler, classify);
        tally.Count(verdict);
        if (clean) {
          clean_tally.Count(verdict);
          EXPECT_EQ(verdict, CellVerdict::kVerified) << "clean ssh cell, seed " << seed;
        }
      }

      // ---- Workload 3: distributed computing (attested result submission).
      {
        SessionServer::Handler handler = [&](const Bytes& wire) {
          return boinc_server.HandleSubmissionFrame(dist_binary_, wire, cert_,
                                                    ca_.public_key(), boinc_nonce);
        };
        auto classify = [&](const Bytes& reply) {
          Reader r(reply);
          uint32_t count = r.U32();
          std::vector<uint64_t> divisors;
          for (uint32_t i = 0; i < count && r.ok(); ++i) {
            divisors.push_back(r.U64());
          }
          return r.ok() && r.AtEnd() && divisors == reference ? CellVerdict::kVerified
                                                              : CellVerdict::kWrongAnswer;
        };
        CellVerdict verdict =
            RunCell(schedule_seed ^ 0xb01cULL, spec, submission_wire, handler, classify);
        tally.Count(verdict);
        if (clean) {
          clean_tally.Count(verdict);
          EXPECT_EQ(verdict, CellVerdict::kVerified) << "clean boinc cell, seed " << seed;
        }
      }
    }
  }

  std::cerr << "net chaos matrix: " << tally.cells << " cells (" << replay_cells
            << " with a replay adversary), " << tally.verified << " verified, "
            << tally.failed_closed << " failed closed, " << tally.wrong << " wrong\n";
  EXPECT_EQ(tally.cells, kSeeds * static_cast<int>(mixes.size()) * 3);
  EXPECT_GE(tally.cells, 200);
  EXPECT_EQ(tally.wrong, 0) << "accepted-but-wrong exchanges in the matrix";
  EXPECT_EQ(clean_tally.cells, kSeeds * 3);
  // Chaos must neither starve every cell nor be a no-op: both terminal
  // outcomes appear, and the partition mix guarantees fail-closed cells.
  EXPECT_GT(tally.verified, tally.cells / 3);
  EXPECT_GT(tally.failed_closed, replay_cells);
}

TEST_F(NetChaosTest, BatchQuoteSlicesSurviveChaosAndForeignSlicesFailClosed) {
  // Batch-quote workload: one TPM quote answered K challengers; each slice
  // (quote + auth path) now crosses a hostile wire. The invariant sharpens:
  // no challenger may EVER accept a quote slice for a nonce outside its own
  // auth path, whatever the wire or an on-path adversary serves it.
  const size_t kChallengers = 8;

  // One Flicker session all challengers attest.
  Bytes session_nonce = Sha1::Digest(BytesOf("chaos batch session"));
  SlbCoreOptions options;
  options.nonce = session_nonce;
  Result<FlickerSessionResult> session =
      platform_.ExecuteSession(hello_binary_, Bytes(), options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value().ok());
  SessionExpectation expectation;
  expectation.binary = &hello_binary_;
  expectation.outputs = session.value().outputs();
  expectation.nonce = session_nonce;

  // One coalesced batch, flushed once; the chaos lives in delivering slices.
  std::vector<Bytes> nonces;
  for (size_t i = 0; i < kChallengers; ++i) {
    nonces.push_back(Sha1::Digest(BytesOf("chaos challenger " + std::to_string(i))));
    ASSERT_TRUE(platform_.tqd()->SubmitBatched(nonces.back(), PcrSelection({17})).ok());
  }
  std::vector<BatchQuoteResponse> slices;
  ASSERT_TRUE(platform_.tqd()->FlushReadyBatches(&slices, /*force=*/true).ok());
  ASSERT_EQ(slices.size(), kChallengers);
  std::map<Bytes, Bytes> slice_wire;  // nonce -> serialized slice.
  for (const BatchQuoteResponse& slice : slices) {
    slice_wire[slice.nonce] = SerializeBatchQuoteResponse(slice);
  }

  const std::vector<MixSpec> mixes = ChaosMixes();
  MatrixTally tally;
  for (size_t mix_index = 0; mix_index < mixes.size(); ++mix_index) {
    const MixSpec& spec = mixes[mix_index];
    const bool clean = IsCleanMix(spec);
    for (int seed = 1; seed <= 10; ++seed) {
      const uint64_t schedule_seed = static_cast<uint64_t>(seed) * 7000003ULL + mix_index;
      const size_t me = static_cast<size_t>(seed) % kChallengers;
      // Every third seed an on-path adversary hands this challenger a
      // NEIGHBOUR's genuine slice instead of its own.
      const bool adversary = (seed % 3 == 0);
      SessionServer::Handler handler = [&](const Bytes& wire) -> Result<Bytes> {
        const Bytes& key = adversary ? nonces[(me + 1) % kChallengers] : wire;
        auto it = slice_wire.find(key);
        if (it == slice_wire.end()) {
          return NotFoundError("unknown challenge nonce");
        }
        return it->second;
      };
      auto classify = [&](const Bytes& reply) {
        Result<BatchQuoteResponse> slice = DeserializeBatchQuoteResponse(reply);
        if (!slice.ok()) {
          return CellVerdict::kFailedClosed;  // Garbled slice: rejected.
        }
        Status verdict =
            VerifyBatchQuote(expectation, slice.value(), cert_, ca_.public_key(), nonces[me]);
        if (!verdict.ok()) {
          return CellVerdict::kFailedClosed;
        }
        // Accepted: it must be THIS challenger's slice.
        return slice.value().nonce == nonces[me] ? CellVerdict::kVerified
                                                 : CellVerdict::kWrongAnswer;
      };
      CellVerdict verdict = RunCell(schedule_seed, spec, nonces[me], handler, classify);
      tally.Count(verdict);
      if (clean) {
        EXPECT_EQ(verdict,
                  adversary ? CellVerdict::kFailedClosed : CellVerdict::kVerified)
            << "clean batch cell, seed " << seed;
      }
    }
  }
  std::cerr << "batch-quote chaos: " << tally.cells << " cells, " << tally.verified
            << " verified, " << tally.failed_closed << " failed closed, " << tally.wrong
            << " wrong\n";
  EXPECT_EQ(tally.wrong, 0) << "a challenger accepted a slice outside its own path";
  EXPECT_GT(tally.verified, 0);
  EXPECT_GT(tally.failed_closed, 0);

  // Byte-level corruption sweep on one genuine slice: no single-byte flip
  // may yield an ACCEPTED slice answering a different nonce or carrying a
  // different quote. Flips in untrusted bytes the hardened verifier ignores
  // (e.g. the wire's claimed quote nonce, which is recomputed from the auth
  // path) may still verify - they leave the accepted content unchanged.
  const Bytes& wire = slice_wire[nonces[0]];
  const BatchQuoteResponse& genuine =
      *std::find_if(slices.begin(), slices.end(),
                    [&](const BatchQuoteResponse& s) { return s.nonce == nonces[0]; });
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    Bytes mutated = wire;
    mutated[pos] ^= 0xff;
    Result<BatchQuoteResponse> slice = DeserializeBatchQuoteResponse(mutated);
    if (!slice.ok()) {
      continue;
    }
    Status verdict =
        VerifyBatchQuote(expectation, slice.value(), cert_, ca_.public_key(), nonces[0]);
    if (!verdict.ok()) {
      continue;
    }
    EXPECT_EQ(slice.value().nonce, nonces[0]) << "flip at byte " << pos;
    EXPECT_EQ(slice.value().response.quote.signature, genuine.response.quote.signature)
        << "flip at byte " << pos;
    EXPECT_EQ(slice.value().response.quote.pcr_values, genuine.response.quote.pcr_values)
        << "flip at byte " << pos;
  }
}

TEST_F(NetChaosTest, ReplayVulnerableVerifierFailsTheMatrix) {
  // Control experiment: the verifier variant that trusts the wire's claimed
  // nonce runs against the same replaying adversary. The matrix MUST catch
  // it accepting stale replies - if this test ever observes zero wrong
  // answers, the campaign has lost its teeth.
  Bytes recorded_reply;
  {
    Bytes challenge = verifier_.MakeChallenge();
    Result<Bytes> reply = service_.HandleChallenge(challenge, hello_binary_, BytesOf("x"));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(verifier_.CheckReply(reply.value()).status.ok());
    recorded_reply = reply.value();
  }

  verifier_.set_trust_wire_nonce_for_testing(true);
  int accepted_wrong = 0;
  for (int seed = 1; seed <= 10; ++seed) {
    LossyChannel channel(platform_.clock());
    SessionClient client(&channel, NetEndpoint::kClient, ChaosSessionConfig());
    SessionServer server(&channel, NetEndpoint::kServer);
    Bytes challenge = verifier_.MakeChallenge();
    Result<AttestationChallenge> issued = AttestationChallenge::Deserialize(challenge);
    ASSERT_TRUE(issued.ok());
    Result<Bytes> reply = client.Call(challenge, [&](double deadline_ms) {
      server.ServePending(deadline_ms, [&](const Bytes&) -> Result<Bytes> {
        return recorded_reply;  // The adversary answers from its recording.
      });
    });
    ASSERT_TRUE(reply.ok());
    AttestationVerifier::Outcome outcome = verifier_.CheckReply(reply.value());
    // Accepting a reply whose nonce is not this cell's challenge is the
    // accepted-but-wrong failure the hardened verifier exists to prevent.
    if (outcome.status.ok() && outcome.log.nonce != issued.value().nonce) {
      ++accepted_wrong;
    }
  }
  EXPECT_EQ(accepted_wrong, 10) << "the vulnerable variant must accept every replay";

  // The hardened verifier rejects the identical adversary.
  verifier_.set_trust_wire_nonce_for_testing(false);
  LossyChannel channel(platform_.clock());
  SessionClient client(&channel, NetEndpoint::kClient, ChaosSessionConfig());
  SessionServer server(&channel, NetEndpoint::kServer);
  verifier_.MakeChallenge();
  Result<Bytes> reply = client.Call(BytesOf("challenge"), [&](double deadline_ms) {
    server.ServePending(deadline_ms,
                        [&](const Bytes&) -> Result<Bytes> { return recorded_reply; });
  });
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(verifier_.CheckReply(reply.value()).status.code(), StatusCode::kReplayDetected);
}

}  // namespace
}  // namespace flicker
