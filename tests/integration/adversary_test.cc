// Integration tests for the §3.1 adversary: a ring-0 attacker who controls
// the OS and DMA devices, plus the platform extensions (TXT launch, PAL
// execution budget, cross-PAL sealed handoff).

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/core/sealed_state.h"
#include "src/crypto/sha1.h"
#include "src/os/devices.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

// A PAL that holds a secret in SLB memory for a while (giving an attacker's
// DMA device a window to aim at).
class DmaTargetPal : public Pal {
 public:
  explicit DmaTargetPal(Machine* machine) : machine_(machine) {}
  std::string name() const override { return "dma-target"; }
  std::vector<std::string> required_modules() const override { return {}; }
  size_t app_code_bytes() const override { return 128; }
  Status Execute(PalContext* context) override {
    // Write a secret into the SLB stack area.
    FLICKER_RETURN_IF_ERROR(
        context->WriteMemory(context->slb_base() + kSlbStackOffset, BytesOf("pal-secret")));

    // Mid-session, a compromised NIC tries to read and overwrite it by DMA.
    DmaDevice evil_nic(machine_, "evil-nic");
    Result<Bytes> stolen = evil_nic.ReadFrom(context->slb_base() + kSlbStackOffset, 10);
    Status smashed =
        evil_nic.WriteTo(context->slb_base() + kSlbCodeOffset, Bytes(16, 0xcc));
    read_blocked_ = !stolen.ok();
    write_blocked_ = !smashed.ok();

    // But DMA to memory outside the SLB region still works (devices keep
    // running during sessions, §7.5).
    outside_allowed_ = evil_nic.WriteTo(0x800000, Bytes(16, 0x11)).ok();
    return context->SetOutputs(BytesOf("done"));
  }

  bool read_blocked_ = false;
  bool write_blocked_ = false;
  bool outside_allowed_ = false;

 private:
  Machine* machine_;
};

TEST(AdversaryTest, DmaIntoSlbBlockedDuringSession) {
  FlickerPlatform platform;
  auto pal = std::make_shared<DmaTargetPal>(platform.machine());
  Result<PalBinary> binary = BuildPal(pal);
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok());
  EXPECT_TRUE(pal->read_blocked_);
  EXPECT_TRUE(pal->write_blocked_);
  EXPECT_TRUE(pal->outside_allowed_);
  EXPECT_EQ(platform.machine()->dma_blocked_count(), 2u);

  // After the session the DEV is clear again.
  DmaDevice nic(platform.machine(), "nic");
  EXPECT_TRUE(nic.WriteTo(kSlbFixedBase + kSlbStackOffset, Bytes(4, 0)).ok());
}

TEST(AdversaryTest, RebootCannotForgeSkinitPcr) {
  // After a reboot, dynamic PCRs hold -1. Software extends can never reach a
  // value of the form H(0^20 || m): the attacker cannot simulate SKINIT.
  FlickerPlatform platform;
  platform.machine()->Reboot();
  TpmClient* tpm = platform.tpm();
  EXPECT_EQ(tpm->PcrRead(kSkinitPcr).value(), Bytes(kPcrSize, 0xff));

  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  // Try to replicate the PAL's execution PCR by extending its measurement.
  ASSERT_TRUE(tpm->PcrExtend(kSkinitPcr, binary.value().skinit_measurement).ok());
  EXPECT_NE(tpm->PcrRead(kSkinitPcr).value(), ComputeExecutionPcr17(binary.value()));
}

TEST(AdversaryTest, SealedHandoffBetweenTwoDifferentPals) {
  // §4.3.1's P -> P' pattern: a producer PAL seals data for a *different*
  // consumer PAL; only the consumer (under Flicker) can read it.
  FlickerPlatform platform;
  Bytes auth = Sha1::Digest(BytesOf("handoff"));

  class ConsumerPal : public Pal {
   public:
    ConsumerPal(Bytes sealed, Bytes auth) : sealed_(std::move(sealed)), auth_(std::move(auth)) {}
    ConsumerPal() = default;
    std::string name() const override { return "consumer"; }
    std::vector<std::string> required_modules() const override {
      return {kModuleTpmDriver, kModuleTpmUtilities};
    }
    size_t app_code_bytes() const override { return 200; }
    Status Execute(PalContext* context) override {
      Result<Bytes> secret =
          UnsealInPal(context->tpm(), SealedBlob::Deserialize(sealed_), auth_);
      if (!secret.ok()) {
        return secret.status();
      }
      return context->SetOutputs(secret.value());
    }

   private:
    Bytes sealed_;
    Bytes auth_;
  };

  class ProducerPal : public Pal {
   public:
    ProducerPal(Bytes target_pcr, Bytes auth)
        : target_pcr_(std::move(target_pcr)), auth_(std::move(auth)) {}
    std::string name() const override { return "producer"; }
    std::vector<std::string> required_modules() const override {
      return {kModuleTpmDriver, kModuleTpmUtilities};
    }
    size_t app_code_bytes() const override { return 200; }
    Status Execute(PalContext* context) override {
      Result<SealedBlob> blob =
          SealForPal(context->tpm(), BytesOf("from P to P'"), target_pcr_, auth_);
      if (!blob.ok()) {
        return blob.status();
      }
      return context->SetOutputs(blob.value().Serialize());
    }

   private:
    Bytes target_pcr_;
    Bytes auth_;
  };

  // The producer needs the consumer's execution-PCR value, which is public
  // (derived from the consumer's published binary).
  Result<PalBinary> consumer_shape = BuildPal(std::make_shared<ConsumerPal>());
  ASSERT_TRUE(consumer_shape.ok());
  Bytes consumer_pcr = ComputeExecutionPcr17(consumer_shape.value());

  Result<PalBinary> producer =
      BuildPal(std::make_shared<ProducerPal>(consumer_pcr, auth));
  ASSERT_TRUE(producer.ok());
  Result<FlickerSessionResult> produce = platform.ExecuteSession(producer.value(), Bytes());
  ASSERT_TRUE(produce.ok());
  ASSERT_TRUE(produce.value().ok()) << produce.value().record.pal_status.ToString();
  Bytes sealed = produce.value().outputs();

  // The OS itself cannot unseal it.
  EXPECT_FALSE(UnsealInPal(platform.tpm(), SealedBlob::Deserialize(sealed), auth).ok());

  // The consumer PAL can.
  Result<PalBinary> consumer = BuildPal(std::make_shared<ConsumerPal>(sealed, auth));
  ASSERT_TRUE(consumer.ok());
  ASSERT_EQ(consumer.value().skinit_measurement, consumer_shape.value().skinit_measurement);
  Result<FlickerSessionResult> consume = platform.ExecuteSession(consumer.value(), Bytes());
  ASSERT_TRUE(consume.ok());
  ASSERT_TRUE(consume.value().ok()) << consume.value().record.pal_status.ToString();
  EXPECT_EQ(consume.value().outputs(), BytesOf("from P to P'"));

  // The producer cannot read back its own gift.
  class GreedyProducer : public ProducerPal {
   public:
    GreedyProducer(Bytes sealed, Bytes auth)
        : ProducerPal(Bytes(kPcrSize, 0), auth), sealed_(std::move(sealed)), auth2_(auth) {}
    Status Execute(PalContext* context) override {
      Result<Bytes> secret =
          UnsealInPal(context->tpm(), SealedBlob::Deserialize(sealed_), auth2_);
      return secret.ok() ? Status::Ok() : secret.status();
    }

   private:
    Bytes sealed_;
    Bytes auth2_;
  };
  Result<PalBinary> greedy = BuildPal(std::make_shared<GreedyProducer>(sealed, auth));
  ASSERT_TRUE(greedy.ok());
  Result<FlickerSessionResult> steal = platform.ExecuteSession(greedy.value(), Bytes());
  ASSERT_TRUE(steal.ok());
  EXPECT_FALSE(steal.value().ok());
}

// ---- Intel TXT launch ----

TEST(TxtTest, SessionRunsAndChainsThroughAcm) {
  FlickerPlatformConfig config;
  config.machine.tech = LateLaunchTech::kIntelTxt;
  FlickerPlatform platform(config);

  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  Bytes nonce = Sha1::Digest(BytesOf("txt-nonce"));
  SlbCoreOptions options;
  options.nonce = nonce;
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok());
  EXPECT_EQ(result.value().outputs(), BytesOf("Hello, world"));

  // The execution PCR includes the SINIT ACM link; the SVM chain does not
  // match, the TXT chain does.
  EXPECT_NE(result.value().record.pcr17_during_execution,
            ComputeExecutionPcr17(binary.value(), LateLaunchTech::kAmdSvm));
  EXPECT_EQ(result.value().record.pcr17_during_execution,
            ComputeExecutionPcr17(binary.value(), LateLaunchTech::kIntelTxt));

  SessionExpectation expectation;
  expectation.binary = &binary.value();
  expectation.inputs = Bytes();
  expectation.outputs = result.value().outputs();
  expectation.nonce = nonce;
  expectation.tech = LateLaunchTech::kIntelTxt;
  EXPECT_EQ(result.value().record.pcr17_final, ComputeExpectedPcr17(expectation));
}

TEST(TxtTest, SenterRequiresSmx) {
  MachineConfig config;
  config.tech = LateLaunchTech::kIntelTxt;
  Machine machine(config);
  machine.bsp()->smx_enabled = false;
  for (int i = 1; i < machine.num_cpus(); ++i) {
    machine.cpu(i)->state = CpuState::kIdle;
    ASSERT_TRUE(machine.apic()->SendInitIpi(i).ok());
  }
  Bytes image(kSlbRegionSize, 0);
  image[0] = 0x00;
  image[1] = 0x10;
  ASSERT_TRUE(machine.memory()->Write(0x100000, image).ok());
  Result<SkinitLaunch> launch = machine.Senter(0, 0x100000);
  ASSERT_FALSE(launch.ok());
  EXPECT_EQ(launch.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TxtTest, SvmSealedBlobNotReadableOnTxtChain) {
  // The same PAL has different execution PCRs on SVM vs TXT platforms, so
  // sealed state does not leak across technologies.
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  EXPECT_NE(ComputeExecutionPcr17(binary.value(), LateLaunchTech::kAmdSvm),
            ComputeExecutionPcr17(binary.value(), LateLaunchTech::kIntelTxt));
}

// ---- PAL execution budget (§5.1.2 timing restrictions) ----

class RunawayPal : public Pal {
 public:
  std::string name() const override { return "runaway"; }
  std::vector<std::string> required_modules() const override { return {}; }
  size_t app_code_bytes() const override { return 64; }
  Status Execute(PalContext* context) override {
    // An infinite loop, as seen by the platform clock.
    for (int i = 0; i < 1000000; ++i) {
      context->ChargeMillis(100.0);
      Status st = context->SetOutputs(BytesOf("still running"));
      if (!st.ok()) {
        return st;  // The SLB-core timer fired.
      }
    }
    return Status::Ok();
  }
};

TEST(WatchdogTest, RunawayPalIsTerminated) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<RunawayPal>());
  ASSERT_TRUE(binary.ok());
  SlbCoreOptions options;
  options.max_pal_ms = 500;
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  EXPECT_EQ(result.value().record.pal_status.code(), StatusCode::kResourceExhausted);
  // The OS got its machine back.
  EXPECT_FALSE(platform.machine()->in_secure_session());
  EXPECT_TRUE(platform.machine()->bsp()->interrupts_enabled);
  // And the pause was bounded near the budget, not the PAL's million rounds.
  EXPECT_LT(result.value().session_total_ms, 1000.0);
}

TEST(WatchdogTest, WellBehavedPalUnaffected) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  SlbCoreOptions options;
  options.max_pal_ms = 500;
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
  EXPECT_EQ(result.value().outputs(), BytesOf("Hello, world"));
}

TEST(WatchdogTest, BudgetMustCoverTpmOperations) {
  // §5.1.2's caveat: "a PAL may need some minimal amount of time to allow
  // TPM operations to complete". A budget below the unseal latency starves
  // any sealed-storage PAL.
  FlickerPlatform platform;
  class UnsealishPal : public Pal {
   public:
    std::string name() const override { return "unsealish"; }
    std::vector<std::string> required_modules() const override {
      return {kModuleTpmDriver, kModuleTpmUtilities};
    }
    size_t app_code_bytes() const override { return 128; }
    Status Execute(PalContext* context) override {
      // Unseal-scale TPM latency, then try to produce output.
      context->tpm()->GetRandom(16);
      context->ChargeMillis(898.0);
      return context->SetOutputs(BytesOf("late result"));
    }
  };
  Result<PalBinary> binary = BuildPal(std::make_shared<UnsealishPal>());
  ASSERT_TRUE(binary.ok());

  SlbCoreOptions tight;
  tight.max_pal_ms = 100;  // Below one TPM unseal.
  Result<FlickerSessionResult> starved = platform.ExecuteSession(binary.value(), Bytes(), tight);
  ASSERT_TRUE(starved.ok());
  EXPECT_FALSE(starved.value().ok());

  SlbCoreOptions generous;
  generous.max_pal_ms = 2000;
  Result<FlickerSessionResult> fine = platform.ExecuteSession(binary.value(), Bytes(), generous);
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(fine.value().ok());
}

// ---- Flicker-aware device quiescing (§7.5 discussion) ----

TEST(QuiesceTest, AwareDriverEliminatesMidTransferStalls) {
  BlockCopyParams params;
  params.total_bytes = 32ULL * 1024 * 1024;
  BlockCopyReport naive = SimulateBlockCopyDuringSessions(params);
  params.flicker_aware_quiesce = true;
  BlockCopyReport aware = SimulateBlockCopyDuringSessions(params);

  EXPECT_GT(naive.stall_events, 0u);
  EXPECT_EQ(aware.stall_events, 0u);
  EXPECT_EQ(aware.io_errors, 0u);
  EXPECT_EQ(aware.source_digest, aware.delivered_digest);
}

}  // namespace
}  // namespace flicker
