// The chaos fuzzer caught the PR 3 crash matrix's seeded bug once; these
// tests pin that it keeps doing so. A campaign over the misordered-commit
// store must find a torn_state violation, shrink it to a handful of events,
// and produce a replay file that round-trips through the parser and re-runs
// to the same signature and order digest. A clean store must survive the
// same campaign with zero violations.

#include <gtest/gtest.h>

#include <string>

#include "src/sim/chaos_fuzz.h"
#include "src/sim/fleet.h"

namespace flicker {
namespace sim {
namespace {

// Mirrors micro_fleet's --chaos-fuzz base: small enough that a campaign is
// cheap, checkpointed so crash-point cuts are in the generator's dice.
FleetConfig FuzzBase() {
  FleetConfig config;
  config.seed = 9;
  config.num_machines = 4;
  config.num_verifiers = 2;
  config.rounds = 32;
  config.mean_interarrival_ms = 100.0;
  config.batched_machines_bp = 5000;
  config.round_timeout_ms = 30000.0;
  config.checkpoints.enabled = true;
  return config;
}

TEST(ChaosFuzzTest, GeneratorIsDeterministicAndInRange) {
  const FleetConfig base = FuzzBase();
  const ChaosPlan a = GenerateChaosPlan(42, base);
  const ChaosPlan b = GenerateChaosPlan(42, base);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_GE(a.events.size(), 1u);
  // Every generated plan must pass the fleet's own config validation -
  // the fuzzer may only explore the legal fault space.
  Fleet fleet(ApplyChaosPlan(base, a));
  EXPECT_TRUE(fleet.Run().ok());
}

TEST(ChaosFuzzTest, CleanStoreSurvivesCampaign) {
  const FleetConfig base = FuzzBase();
  const ChaosFuzzReport report = ChaosFuzz(base, /*campaign_seed=*/3, /*num_plans=*/6);
  EXPECT_EQ(report.plans_run, 6);
  EXPECT_EQ(report.violations, 0);
  EXPECT_FALSE(report.found);
}

TEST(ChaosFuzzTest, FindsAndShrinksSeededMisorderedCommit) {
  FleetConfig base = FuzzBase();
  base.checkpoints.misordered_commit = true;

  const ChaosFuzzReport report = ChaosFuzz(base, /*campaign_seed=*/1, /*num_plans=*/24);
  ASSERT_TRUE(report.found);
  EXPECT_EQ(report.signature, "torn_state");
  EXPECT_GT(report.violations, 0);
  // The issue's bar: the shrinker lands on a minimal schedule of at most
  // three fault events, and it only ever removes events.
  EXPECT_LE(report.minimal.events.size(), 3u);
  EXPECT_LE(report.minimal.events.size(), report.original_events);
  EXPECT_GT(report.shrink_runs, 0);
  // The minimal plan still reproduces on a fresh run.
  const ChaosOutcome rerun = RunChaosPlan(base, report.minimal);
  ASSERT_TRUE(rerun.ran);
  EXPECT_EQ(rerun.signature, report.signature);
  // The artifact names the failure and the durability boundaries.
  EXPECT_NE(report.artifact.find("torn_state"), std::string::npos);
  EXPECT_NE(report.artifact.find("order_digest"), std::string::npos);
  EXPECT_NE(report.artifact.find("crash points"), std::string::npos);
}

TEST(ChaosFuzzTest, ReplayRoundTripsThroughText) {
  FleetConfig base = FuzzBase();
  base.checkpoints.misordered_commit = true;
  const ChaosFuzzReport report = ChaosFuzz(base, /*campaign_seed=*/1, /*num_plans=*/24);
  ASSERT_TRUE(report.found);

  Result<ChaosReplay> parsed = ParseChaosReplay(report.replay_file);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().signature, report.signature);
  EXPECT_EQ(parsed.value().plan.events.size(), report.minimal.events.size());

  // Serialize(parse(text)) == text: the format carries everything it needs.
  const ChaosOutcome outcome =
      RunChaosPlan(parsed.value().base, parsed.value().plan);
  ASSERT_TRUE(outcome.ran);
  EXPECT_EQ(SerializeChaosReplay(parsed.value().base, parsed.value().plan, outcome.signature),
            report.replay_file);
}

TEST(ChaosFuzzTest, ReplayRunsAreByteIdentical) {
  FleetConfig base = FuzzBase();
  base.checkpoints.misordered_commit = true;
  const ChaosFuzzReport report = ChaosFuzz(base, /*campaign_seed=*/1, /*num_plans=*/24);
  ASSERT_TRUE(report.found);

  const ChaosOutcome first = RunChaosPlan(base, report.minimal);
  const ChaosOutcome second = RunChaosPlan(base, report.minimal);
  ASSERT_TRUE(first.ran);
  ASSERT_TRUE(second.ran);
  EXPECT_EQ(first.signature, second.signature);
  EXPECT_EQ(first.stats.order_digest, second.stats.order_digest);
  const FleetConfig applied = ApplyChaosPlan(base, report.minimal);
  EXPECT_EQ(first.stats.ToJson(applied), second.stats.ToJson(applied));
}

TEST(ChaosFuzzTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseChaosReplay("not a replay").ok());
  EXPECT_FALSE(ParseChaosReplay("# flicker chaos replay v1\nbogus_directive 7\n").ok());
  // A structurally valid file with no fleet shape is useless - refused.
  EXPECT_FALSE(ParseChaosReplay("# flicker chaos replay v1\nseed 3\n").ok());
}

}  // namespace
}  // namespace sim
}  // namespace flicker
