// The event heap: total order by (time, seeded tiebreak, seq), O(1) lazy
// cancellation, and per-seed interleaving of simultaneous events.

#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace flicker {
namespace sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue(1);
  std::vector<int> order;
  queue.Schedule(300, 0, [&] { order.push_back(3); });
  queue.Schedule(100, 0, [&] { order.push_back(1); });
  queue.Schedule(200, 0, [&] { order.push_back(2); });
  while (!queue.empty()) {
    queue.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, PeekTimeSeesEarliestPending) {
  EventQueue queue(1);
  uint64_t at = 0;
  EXPECT_FALSE(queue.PeekTime(&at));
  queue.Schedule(500, 0, [] {});
  EventId early = queue.Schedule(200, 0, [] {});
  ASSERT_TRUE(queue.PeekTime(&at));
  EXPECT_EQ(at, 200u);
  // Cancelling the earliest exposes the survivor.
  ASSERT_TRUE(queue.Cancel(early));
  ASSERT_TRUE(queue.PeekTime(&at));
  EXPECT_EQ(at, 500u);
}

TEST(EventQueueTest, SimultaneousEventsInterleaveBySeed) {
  // Eight events at the same instant: the seeded tiebreak permutes them,
  // and the permutation is a pure function of the seed.
  auto order_for_seed = [](uint64_t seed) {
    EventQueue queue(seed);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      queue.Schedule(1000, 0, [&order, i] { order.push_back(i); });
    }
    while (!queue.empty()) {
      queue.Pop().fn();
    }
    return order;
  };
  EXPECT_EQ(order_for_seed(7), order_for_seed(7));
  EXPECT_NE(order_for_seed(7), order_for_seed(8));
}

TEST(EventQueueTest, CancelIsLazyAndSingleShot) {
  EventQueue queue(1);
  EventId id = queue.Schedule(100, 0, [] { FAIL() << "cancelled event fired"; });
  EventId survivor = queue.Schedule(200, 0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));  // Already dead.
  EXPECT_EQ(queue.size(), 1u);
  ScheduledEvent event = queue.Pop();
  EXPECT_EQ(event.seq, survivor.seq);
  EXPECT_FALSE(queue.Cancel(survivor));  // Already fired.
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.cancelled(), 1u);
}

TEST(EventQueueTest, InvalidIdNeverCancels) {
  EventQueue queue(1);
  EXPECT_FALSE(queue.Cancel(EventId{}));
  EXPECT_FALSE(queue.Cancel(EventId{99}));
}

TEST(EventQueueTest, TracksScheduledAndHighWater) {
  EventQueue queue(1);
  for (int i = 0; i < 5; ++i) {
    queue.Schedule(static_cast<uint64_t>(i), 0, [] {});
  }
  EXPECT_EQ(queue.scheduled(), 5u);
  EXPECT_EQ(queue.max_size(), 5u);
  queue.Pop();
  queue.Pop();
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.max_size(), 5u);
}

}  // namespace
}  // namespace sim
}  // namespace flicker
