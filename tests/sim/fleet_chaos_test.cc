// Chaos under the fleet engine: rack partitions starve rounds into
// timeouts, corrupted frames are refused (never accepted), and power cuts
// mid-run lose RAM state but the machine reboots, re-attests and rejoins.
// The accounting identity and the accepted_wrong == 0 invariant hold
// through all of it.

#include <gtest/gtest.h>

#include "src/sim/fleet.h"

namespace flicker {
namespace sim {
namespace {

FleetConfig BaseConfig() {
  FleetConfig config;
  config.seed = 5;
  config.num_machines = 8;
  config.num_verifiers = 2;
  config.rounds = 48;
  config.mean_interarrival_ms = 1.0;
  config.batched_machines_bp = 5000;
  config.round_timeout_ms = 30000.0;
  return config;
}

void CheckAccounting(const FleetStats& stats) {
  EXPECT_EQ(stats.rounds_injected,
            stats.rounds_completed + stats.rounds_timed_out + stats.rounds_failed);
  EXPECT_EQ(stats.accepted_wrong, 0u);
}

TEST(FleetChaosTest, PartitionedRackTimesOutAndRecovers) {
  FleetConfig config = BaseConfig();
  // Cut half the rack off the farm for the first stretch of the run. The
  // window spans several quote times: the partitioned machines' first few
  // responses hit the cut wire and rot in flight.
  FleetPartition partition;
  partition.start_ms = 0.0;
  partition.end_ms = 4000.0;
  partition.first_machine = 0;
  partition.last_machine = 3;
  config.partitions.push_back(partition);

  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();

  CheckAccounting(stats);
  EXPECT_GT(stats.partition_drops, 0u);
  EXPECT_GT(stats.rounds_timed_out, 0u);
  // Machines outside the window still complete rounds.
  EXPECT_GT(stats.rounds_completed, 0u);
}

TEST(FleetChaosTest, CorruptedFramesAreAlwaysRefused) {
  FleetConfig config = BaseConfig();
  config.fault_mix.corrupt_bp = 2000;  // Every fifth frame garbled.
  config.fault_seed = 13;

  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();

  CheckAccounting(stats);
  EXPECT_GT(stats.tampered_rejected, 0u);
  EXPECT_GT(stats.rounds_completed, 0u);
}

TEST(FleetChaosTest, LossyWiresNeverBreakTheInvariant) {
  FleetConfig config = BaseConfig();
  config.fault_mix.drop_bp = 1000;
  config.fault_mix.duplicate_bp = 500;
  config.fault_mix.reorder_bp = 500;
  config.fault_mix.delay_bp = 500;
  config.fault_mix.corrupt_bp = 500;
  config.fault_seed = 29;

  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();

  CheckAccounting(stats);
  EXPECT_GT(stats.rounds_completed, 0u);
}

TEST(FleetChaosTest, PowerCutMachineRebootsAndRejoins) {
  FleetConfig config = BaseConfig();
  config.num_machines = 4;
  config.rounds = 40;
  FleetPowerCut cut;
  cut.at_ms = 1000.0;  // Mid-run: windows and queued rounds die with RAM.
  cut.machine = 1;
  config.power_cuts.push_back(cut);

  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();

  CheckAccounting(stats);
  EXPECT_EQ(stats.power_cuts, 1u);
  EXPECT_EQ(stats.machines_dead, 0u);  // The reboot succeeded.
  // Post-reboot the machine's bootstrap chain changed; everything that
  // still completed verified against the right snapshot.
  EXPECT_GT(stats.rounds_completed, 0u);
}

TEST(FleetChaosTest, CombinedCampaignHoldsTheLine) {
  FleetConfig config = BaseConfig();
  config.rounds = 64;
  config.fault_mix.drop_bp = 500;
  config.fault_mix.corrupt_bp = 500;
  config.fault_seed = 31;
  FleetPartition partition;
  partition.start_ms = 1000.0;
  partition.end_ms = 5000.0;
  partition.first_machine = 4;
  partition.last_machine = 7;
  config.partitions.push_back(partition);
  FleetPowerCut cut;
  cut.at_ms = 1500.0;
  cut.machine = 0;
  config.power_cuts.push_back(cut);

  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  CheckAccounting(fleet.stats());
  EXPECT_EQ(fleet.stats().power_cuts, 1u);
}

}  // namespace
}  // namespace sim
}  // namespace flicker
