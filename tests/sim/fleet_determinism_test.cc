// The fleet's determinism contract: same seed => byte-identical BENCH JSON
// and identical executor order digest; different seeds => different
// interleavings, same invariants. This is what lets a thousand-machine
// chaos run be replayed bit-exact from one integer.

#include <gtest/gtest.h>

#include <string>

#include "src/sim/fleet.h"

namespace flicker {
namespace sim {
namespace {

FleetConfig Config(uint64_t seed) {
  FleetConfig config;
  config.seed = seed;
  config.num_machines = 8;
  config.num_verifiers = 2;
  config.rounds = 32;
  config.mean_interarrival_ms = 1.0;
  config.batched_machines_bp = 5000;
  config.round_timeout_ms = 5000.0;
  return config;
}

struct RunResult {
  uint64_t digest = 0;
  uint64_t events = 0;
  std::string json;
  FleetStats stats;
};

RunResult RunOnce(const FleetConfig& config) {
  Fleet fleet(config);
  EXPECT_TRUE(fleet.Run().ok());
  RunResult result;
  result.digest = fleet.executor()->OrderDigest();
  result.events = fleet.executor()->events_processed();
  result.json = fleet.stats().ToJson(config);
  result.stats = fleet.stats();
  return result;
}

TEST(FleetDeterminismTest, SameSeedIsByteIdentical) {
  RunResult first = RunOnce(Config(1234));
  RunResult second = RunOnce(Config(1234));
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.json, second.json);
}

TEST(FleetDeterminismTest, DifferentSeedsExploreDifferentInterleavings) {
  RunResult first = RunOnce(Config(1234));
  RunResult second = RunOnce(Config(4321));
  EXPECT_NE(first.digest, second.digest);
  // The invariants hold under every interleaving.
  for (const RunResult* run : {&first, &second}) {
    EXPECT_EQ(run->stats.accepted_wrong, 0u);
    EXPECT_EQ(run->stats.rounds_injected,
              run->stats.rounds_completed + run->stats.rounds_timed_out + run->stats.rounds_failed);
  }
}

TEST(FleetDeterminismTest, ChaosRunsReplayBitExact) {
  FleetConfig config = Config(99);
  config.fault_mix.drop_bp = 500;
  config.fault_mix.corrupt_bp = 500;
  config.fault_seed = 7;
  config.round_timeout_ms = 200.0;
  FleetPartition partition;
  partition.start_ms = 5.0;
  partition.end_ms = 15.0;
  partition.first_machine = 0;
  partition.last_machine = 3;
  config.partitions.push_back(partition);

  RunResult first = RunOnce(config);
  RunResult second = RunOnce(config);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.json, second.json);
}

}  // namespace
}  // namespace sim
}  // namespace flicker
