// Verifier-tier faults under the fleet engine: a gray-slow worker that
// still answers, a crashed worker that never does, and a hung worker that
// stalls its whole queue. The unhedged control shows each fault's damage;
// the farm policy (p95 hedges, breakers, admission control) masks it. The
// config validator rejects fault plans that target hardware outside the
// fleet before any event runs.

#include <gtest/gtest.h>

#include "src/sim/fleet.h"

namespace flicker {
namespace sim {
namespace {

FleetConfig BaseConfig() {
  FleetConfig config;
  config.seed = 7;
  config.num_machines = 16;
  config.num_verifiers = 4;
  config.rounds = 64;
  config.mean_interarrival_ms = 10.0;
  config.batched_machines_bp = 5000;
  config.round_timeout_ms = 30000.0;
  // Expensive enough that a 40x gray verifier builds a real queue.
  config.verify_cost_ms = 20.0;
  return config;
}

FleetVerifierFault FaultWindow(FleetVerifierFault::Kind kind, int verifier, double end_ms) {
  FleetVerifierFault fault;
  fault.kind = kind;
  fault.verifier = verifier;
  fault.start_ms = 0.0;
  fault.end_ms = end_ms;
  fault.slow_factor = 40.0;
  return fault;
}

void CheckAccounting(const FleetStats& stats) {
  EXPECT_EQ(stats.rounds_injected,
            stats.rounds_completed + stats.rounds_timed_out + stats.rounds_failed);
  EXPECT_EQ(stats.accepted_wrong, 0u);
}

FleetStats RunOrDie(const FleetConfig& config) {
  Fleet fleet(config);
  EXPECT_TRUE(fleet.Run().ok());
  return fleet.stats();
}

TEST(FleetVerifierFaultTest, GraySlowVerifierDegradesBlindRoundRobin) {
  FleetConfig config = BaseConfig();
  config.verifier_faults.push_back(
      FaultWindow(FleetVerifierFault::Kind::kGraySlow, 0, 4000.0));

  const FleetStats stats = RunOrDie(config);
  CheckAccounting(stats);
  EXPECT_GT(stats.verifier_fault_frames, 0u);

  // The control group: no faults, same load. Blind round-robin routes 1/4
  // of the fleet through the gray worker, so the tail must carry several
  // gray service times (slow_factor * verify_cost = 800 ms each) of queue
  // that the fault-free baseline does not. (The sharper 3x-p99 bar lives in
  // the micro_recovery farm campaign, whose load is tuned for it.)
  FleetConfig clean = BaseConfig();
  const FleetStats baseline = RunOrDie(clean);
  EXPECT_GT(stats.LatencyPercentileMs(0.99),
            baseline.LatencyPercentileMs(0.99) + 3.0 * 800.0);
}

TEST(FleetVerifierFaultTest, HedgingMasksGraySlowVerifier) {
  FleetConfig unhedged = BaseConfig();
  unhedged.verifier_faults.push_back(
      FaultWindow(FleetVerifierFault::Kind::kGraySlow, 0, 4000.0));
  FleetConfig hedged = unhedged;
  hedged.farm.hedge = true;
  hedged.farm.max_outstanding = 16;

  const FleetStats slow = RunOrDie(unhedged);
  const FleetStats masked = RunOrDie(hedged);
  CheckAccounting(masked);

  // Every round completes, the hedge copies did real work, and the tail a
  // gray verifier inflicts on round-robin is gone.
  EXPECT_EQ(masked.rounds_completed, masked.rounds_injected);
  EXPECT_GT(masked.hedges_fired, 0u);
  EXPECT_GT(masked.hedge_wins, 0u);
  EXPECT_LT(masked.LatencyPercentileMs(0.99), slow.LatencyPercentileMs(0.99));
}

TEST(FleetVerifierFaultTest, CrashedVerifierTripsBreakerAndFailsOver) {
  FleetConfig config = BaseConfig();
  config.farm.hedge = true;
  // Crashed the whole run: every frame it is handed vanishes, so only the
  // breaker (fed by hedge-detected misses) keeps traffic away from it.
  config.verifier_faults.push_back(
      FaultWindow(FleetVerifierFault::Kind::kCrash, 1, 1e9));

  const FleetStats stats = RunOrDie(config);
  CheckAccounting(stats);
  EXPECT_EQ(stats.rounds_completed, stats.rounds_injected);
  EXPECT_GT(stats.verifier_fault_frames, 0u);
  EXPECT_GT(stats.breaker_trips, 0u);
}

TEST(FleetVerifierFaultTest, HungVerifierRecoversAfterWindow) {
  FleetConfig config = BaseConfig();
  config.farm.hedge = true;
  config.verifier_faults.push_back(
      FaultWindow(FleetVerifierFault::Kind::kHang, 2, 1500.0));

  const FleetStats stats = RunOrDie(config);
  CheckAccounting(stats);
  // Frames caught by the hang never get answers; the hedges still land
  // every round, and the breaker that opened during the stall re-closes
  // once the thawed verifier answers a probe - an MTTR sample per recovery.
  EXPECT_EQ(stats.rounds_completed, stats.rounds_injected);
  EXPECT_GT(stats.hedges_fired, 0u);
}

TEST(FleetVerifierFaultTest, AdmissionControlShedsInsteadOfQueueing) {
  FleetConfig config = BaseConfig();
  config.mean_interarrival_ms = 1.0;  // Slam the farm.
  config.farm.hedge = true;
  config.farm.max_outstanding = 1;
  config.verifier_faults.push_back(
      FaultWindow(FleetVerifierFault::Kind::kGraySlow, 0, 4000.0));

  const FleetStats stats = RunOrDie(config);
  CheckAccounting(stats);
  // The frontend shed under pressure, shed machines came back with paced
  // resends, and the rounds still finished.
  EXPECT_GT(stats.overload_sheds, 0u);
  EXPECT_GT(stats.overload_resends, 0u);
  EXPECT_EQ(stats.rounds_completed, stats.rounds_injected);
}

TEST(FleetVerifierFaultTest, DeterministicAcrossReruns) {
  FleetConfig config = BaseConfig();
  config.farm.hedge = true;
  config.verifier_faults.push_back(
      FaultWindow(FleetVerifierFault::Kind::kGraySlow, 0, 4000.0));

  Fleet a(config);
  ASSERT_TRUE(a.Run().ok());
  Fleet b(config);
  ASSERT_TRUE(b.Run().ok());
  EXPECT_EQ(a.stats().ToJson(config), b.stats().ToJson(config));
  EXPECT_EQ(a.stats().order_digest, b.stats().order_digest);
}

// ---- Config validation: a fault plan naming hardware that does not exist
// must be rejected before the first event, not crash mid-run. ----

TEST(FleetVerifierFaultTest, RejectsVerifierFaultOutsideFarm) {
  FleetConfig config = BaseConfig();
  config.verifier_faults.push_back(
      FaultWindow(FleetVerifierFault::Kind::kGraySlow, config.num_verifiers, 100.0));
  EXPECT_FALSE(Fleet(config).Run().ok());
}

TEST(FleetVerifierFaultTest, RejectsPartitionOutsideFleet) {
  FleetConfig config = BaseConfig();
  FleetPartition window;
  window.start_ms = 0.0;
  window.end_ms = 100.0;
  window.first_machine = 0;
  window.last_machine = config.num_machines;  // One past the end.
  config.partitions.push_back(window);
  EXPECT_FALSE(Fleet(config).Run().ok());
}

TEST(FleetVerifierFaultTest, RejectsPowerCutOutsideFleet) {
  FleetConfig config = BaseConfig();
  FleetPowerCut cut;
  cut.machine = -1;
  cut.at_ms = 50.0;
  config.power_cuts.push_back(cut);
  EXPECT_FALSE(Fleet(config).Run().ok());
}

TEST(FleetVerifierFaultTest, RejectsDegenerateFarmThresholds) {
  FleetConfig config = BaseConfig();
  config.farm.hedge = true;
  config.farm.max_hedges_per_round = 0;
  EXPECT_FALSE(Fleet(config).Run().ok());
}

}  // namespace
}  // namespace sim
}  // namespace flicker
