// The quote daemon as a discrete-event actor: batch windows own real heap
// timers instead of waiting for a poll, full windows flush inline and
// cancel their timer, the breaker cooldown probes itself, and a power cut
// silences everything.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/os/tqd.h"
#include "src/sim/executor.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

Bytes Nonce(const std::string& tag) { return BytesOf("nonce-" + tag); }

// One machine + daemon wired to a SimExecutor, mirroring the fleet's
// TimerHost binding.
class TqdTimerTest : public ::testing::Test {
 protected:
  TqdTimerTest() : executor_(7) {}

  void Bind(TqdConfig config) {
    tqd_ = std::make_unique<TpmQuoteDaemon>(&machine_, config);
    actor_ = executor_.RegisterActor("machine", machine_.clock());
    TpmQuoteDaemon::TimerHost host;
    host.schedule = [this](uint64_t delay_ns, std::function<void()> fn) {
      return executor_.ScheduleAfterLocal(actor_, delay_ns, std::move(fn)).seq;
    };
    host.cancel = [this](uint64_t id) { executor_.Cancel(sim::EventId{id}); };
    tqd_->BindTimers(
        std::move(host),
        [this](std::vector<BatchQuoteResponse> responses) {
          for (BatchQuoteResponse& response : responses) {
            batch_out_.push_back(std::move(response));
          }
        },
        [this](std::vector<AttestationResponse> responses) {
          for (AttestationResponse& response : responses) {
            drain_out_.push_back(std::move(response));
          }
        });
  }

  Machine machine_;
  sim::SimExecutor executor_;
  sim::ActorId actor_ = sim::kNoActor;
  std::unique_ptr<TpmQuoteDaemon> tqd_;
  std::vector<BatchQuoteResponse> batch_out_;
  std::vector<AttestationResponse> drain_out_;
};

TEST_F(TqdTimerTest, WindowTimerFlushesAtDeadline) {
  TqdConfig config;
  config.max_batch_size = 32;
  config.max_batch_wait_ms = 10.0;
  Bind(config);

  ASSERT_TRUE(tqd_->SubmitBatched(Nonce("a"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd_->SubmitBatched(Nonce("b"), PcrSelection({17})).ok());
  EXPECT_TRUE(batch_out_.empty());  // Nobody polled; nothing flushed yet.

  executor_.Run();
  ASSERT_EQ(batch_out_.size(), 2u);
  EXPECT_EQ(batch_out_[0].nonce, Nonce("a"));
  EXPECT_EQ(tqd_->batched_pending(), 0u);
  EXPECT_EQ(tqd_->batch_quotes(), 1u);
  // The flush happened at the window deadline, not at time zero.
  EXPECT_GE(machine_.clock()->NowMillis(), 10.0);
}

TEST_F(TqdTimerTest, FullWindowFlushesInlineAndCancelsTimer) {
  TqdConfig config;
  config.max_batch_size = 2;
  config.max_batch_wait_ms = 1000.0;
  Bind(config);

  ASSERT_TRUE(tqd_->SubmitBatched(Nonce("a"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd_->SubmitBatched(Nonce("b"), PcrSelection({17})).ok());
  // The filling submit flushed synchronously; no timer wait involved.
  ASSERT_EQ(batch_out_.size(), 2u);
  EXPECT_LT(machine_.clock()->NowMillis(), 1000.0);

  // The cancelled deadline timer must not produce a second flush.
  executor_.Run();
  EXPECT_EQ(batch_out_.size(), 2u);
  EXPECT_EQ(tqd_->batch_quotes(), 1u);
}

TEST_F(TqdTimerTest, SelectionsKeepSeparateWindowsAndTimers) {
  TqdConfig config;
  config.max_batch_size = 32;
  config.max_batch_wait_ms = 5.0;
  Bind(config);

  ASSERT_TRUE(tqd_->SubmitBatched(Nonce("p17"), PcrSelection({17})).ok());
  machine_.clock()->AdvanceMillis(2.0);
  ASSERT_TRUE(tqd_->SubmitBatched(Nonce("p18"), PcrSelection({17, 18})).ok());

  executor_.Run();
  EXPECT_EQ(batch_out_.size(), 2u);
  EXPECT_EQ(tqd_->batch_quotes(), 2u);  // One quote per selection window.
}

TEST_F(TqdTimerTest, BreakerProbeDrainsQueueAfterCooldown) {
  machine_.tpm_transport()->hardware()->ForceFailureMode();
  TqdConfig config;
  config.breaker_threshold = 1;
  config.breaker_cooldown_ms = 100.0;
  Bind(config);

  ASSERT_FALSE(tqd_->HandleChallenge(Nonce("queued"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd_->breaker_open());
  ASSERT_EQ(tqd_->queued_count(), 1u);

  // The TPM recovers while the cooldown timer is pending.
  machine_.tpm_transport()->hardware()->ClearFailureMode();
  machine_.tpm_transport()->hardware()->Init();
  ASSERT_TRUE(machine_.tpm()->Startup(TpmStartupType::kClear).ok());

  executor_.Run();
  EXPECT_FALSE(tqd_->breaker_open());
  EXPECT_EQ(tqd_->queued_count(), 0u);
  ASSERT_EQ(drain_out_.size(), 1u);
  EXPECT_GE(machine_.clock()->NowMillis(), config.breaker_cooldown_ms);
}

TEST_F(TqdTimerTest, PowerLossDropsWindowsAndSilencesTimers) {
  TqdConfig config;
  config.max_batch_size = 32;
  config.max_batch_wait_ms = 10.0;
  Bind(config);

  ASSERT_TRUE(tqd_->SubmitBatched(Nonce("doomed"), PcrSelection({17})).ok());
  tqd_->OnPowerLoss();
  EXPECT_EQ(tqd_->batched_pending(), 0u);

  executor_.Run();  // The armed deadline timer was cancelled: no flush.
  EXPECT_TRUE(batch_out_.empty());
  EXPECT_EQ(tqd_->batch_quotes(), 0u);
}

}  // namespace
}  // namespace flicker
