// The fleet harness end to end on a small rack: every injected round
// resolves, verifiers really verify (the full quote/cert chain), batch
// windows aggregate, full-session rounds refresh expectations, and the
// stats JSON is well-formed.

#include "src/sim/fleet.h"

#include <gtest/gtest.h>

#include <string>

namespace flicker {
namespace sim {
namespace {

FleetConfig SmallFleet() {
  FleetConfig config;
  config.seed = 11;
  config.num_machines = 6;
  config.num_verifiers = 2;
  config.rounds = 24;
  config.mean_interarrival_ms = 2.0;
  config.batched_machines_bp = 5000;
  // A quote alone is ~973 ms and rounds to one machine queue up behind each
  // other, so the clean-run timeout must cover the worst per-machine queue.
  config.round_timeout_ms = 30000.0;
  return config;
}

TEST(FleetTest, CleanWiresCompleteEveryRound) {
  Fleet fleet(SmallFleet());
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();

  EXPECT_EQ(stats.rounds_injected, 24u);
  EXPECT_EQ(stats.rounds_completed, 24u);
  EXPECT_EQ(stats.rounds_timed_out, 0u);
  EXPECT_EQ(stats.rounds_failed, 0u);
  EXPECT_EQ(stats.rounds_rejected, 0u);
  EXPECT_EQ(stats.accepted_wrong, 0u);
  EXPECT_EQ(stats.responses_verified, 24u);
  EXPECT_EQ(stats.round_latencies_ms.size(), 24u);
  EXPECT_GT(stats.sim_duration_ms, 0.0);
  EXPECT_GT(stats.SessionsPerSec(), 0.0);
  EXPECT_GT(stats.LatencyPercentileMs(0.5), 0.0);
  EXPECT_LE(stats.LatencyPercentileMs(0.5), stats.LatencyPercentileMs(0.99));
}

TEST(FleetTest, BatchedMachinesAggregateChallenges) {
  FleetConfig config = SmallFleet();
  // Everybody batches; a short window forces several flushes.
  config.batched_machines_bp = 10000;
  config.max_batch_wait_ms = 5.0;
  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();

  EXPECT_EQ(stats.rounds_completed, 24u);
  EXPECT_GT(stats.batch_quotes, 0u);
  // Fewer quotes than rounds: the windows actually coalesced.
  EXPECT_LT(stats.batch_quotes, 24u);
  uint64_t batched_rounds = 0;
  for (const auto& [size, count] : stats.batch_sizes) {
    batched_rounds += size * count;
  }
  EXPECT_EQ(batched_rounds, 24u);
}

TEST(FleetTest, FullSessionRoundsRefreshExpectations) {
  FleetConfig config = SmallFleet();
  config.full_session_bp = 5000;  // Half the rounds re-run Flicker sessions.
  config.round_timeout_ms = 30000.0;
  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();

  // Refreshed expectations must still verify: a quote snapshotted before a
  // refresh is judged against the chain it was produced under.
  EXPECT_EQ(stats.rounds_completed, 24u);
  EXPECT_EQ(stats.accepted_wrong, 0u);
  EXPECT_EQ(stats.rounds_rejected, 0u);
}

TEST(FleetTest, VerifierFarmSharesTheLoad) {
  FleetConfig config = SmallFleet();
  config.verify_cost_ms = 1.0;
  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();

  EXPECT_EQ(stats.num_verifiers, 2);
  // 24 verifications at 1 ms each across the farm.
  EXPECT_GE(stats.verifier_busy_ms, 24.0);
  EXPECT_GT(stats.VerifierUtilization(), 0.0);
  EXPECT_LE(stats.VerifierUtilization(), 1.0);
}

TEST(FleetTest, JsonCarriesTheBenchContract) {
  FleetConfig config = SmallFleet();
  Fleet fleet(config);
  ASSERT_TRUE(fleet.Run().ok());
  std::string json = fleet.stats().ToJson(config);

  for (const char* key :
       {"\"machines\"", "\"verifiers\"", "\"seed\"", "\"completed\"",
        "\"accepted_wrong\"", "\"sessions_per_sec\"", "\"p50\"", "\"p99\"",
        "\"utilization\"", "\"order_digest\"", "\"events\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in:\n" << json;
  }
}

}  // namespace
}  // namespace sim
}  // namespace flicker
