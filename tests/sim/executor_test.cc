// The executor's activity model: dispatch moves global now, fast-forwards
// the target actor's clock (never backwards), and a busy actor's later
// start time falls out of the clock max - single-server FIFO queueing with
// no explicit queue. OrderDigest pins the exact dispatch order per seed.

#include "src/sim/executor.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/clock.h"

namespace flicker {
namespace sim {
namespace {

TEST(SimExecutorTest, DispatchFastForwardsActorClock) {
  SimExecutor executor(1);
  SimClock clock;
  ActorId actor = executor.RegisterActor("machine", &clock);
  executor.ScheduleAt(actor, 5'000'000, [] {});
  executor.Run();
  EXPECT_EQ(executor.NowNs(), 5'000'000u);
  EXPECT_EQ(clock.NowNanos(), 5'000'000u);
}

TEST(SimExecutorTest, BusyActorClockNeverMovesBackwards) {
  // The actor burned local time past the event's timestamp: the event
  // starts at the actor's later now (FIFO queueing), not at heap time.
  SimExecutor executor(1);
  SimClock clock;
  ActorId actor = executor.RegisterActor("machine", &clock);
  uint64_t seen_local_ns = 0;
  executor.ScheduleAt(actor, 1'000, [&] {
    clock.AdvanceMicros(500);  // The activity charges 500 us of work.
  });
  executor.ScheduleAt(actor, 2'000, [&] { seen_local_ns = clock.NowNanos(); });
  executor.Run();
  EXPECT_EQ(seen_local_ns, 501'000u);  // Not 2'000: the actor was busy.
  EXPECT_EQ(executor.NowNs(), 2'000u);
}

TEST(SimExecutorTest, IndependentActorsRunInParallelTime) {
  SimExecutor executor(1);
  SimClock a_clock, b_clock;
  ActorId a = executor.RegisterActor("a", &a_clock);
  ActorId b = executor.RegisterActor("b", &b_clock);
  executor.ScheduleAt(a, 1'000, [&] { a_clock.AdvanceMillis(972.0); });
  executor.ScheduleAt(b, 2'000, [] {});
  executor.Run();
  // A's 972 ms quote did not delay B.
  EXPECT_EQ(b_clock.NowNanos(), 2'000u);
}

TEST(SimExecutorTest, ScheduleAtClampsToNow) {
  SimExecutor executor(1);
  ActorId actor = executor.RegisterActor("timer", nullptr);
  std::vector<int> order;
  executor.ScheduleAt(actor, 10'000, [&] {
    order.push_back(1);
    // Scheduled "in the past" relative to global now: fires at now.
    executor.ScheduleAt(actor, 0, [&] { order.push_back(2); });
  });
  executor.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(executor.NowNs(), 10'000u);
}

TEST(SimExecutorTest, ScheduleAfterLocalMeasuresFromActorClock) {
  SimExecutor executor(1);
  SimClock clock;
  ActorId actor = executor.RegisterActor("machine", &clock);
  uint64_t fired_at = 0;
  executor.ScheduleAt(actor, 1'000, [&] {
    clock.AdvanceMicros(9);  // Local now = 10'000 ns.
    executor.ScheduleAfterLocal(actor, 5'000, [&] { fired_at = executor.NowNs(); });
  });
  executor.Run();
  EXPECT_EQ(fired_at, 15'000u);  // 10'000 local + 5'000, not 1'000 + 5'000.
}

TEST(SimExecutorTest, CancelSuppressesPendingEvent) {
  SimExecutor executor(1);
  ActorId actor = executor.RegisterActor("timer", nullptr);
  EventId doomed = executor.ScheduleAt(actor, 1'000, [] { FAIL() << "cancelled event fired"; });
  executor.ScheduleAt(actor, 2'000, [] {});
  EXPECT_TRUE(executor.Cancel(doomed));
  executor.Run();
  EXPECT_EQ(executor.events_processed(), 1u);
  EXPECT_EQ(executor.events_cancelled(), 1u);
}

TEST(SimExecutorTest, RunUntilStopsAtHorizon) {
  SimExecutor executor(1);
  ActorId actor = executor.RegisterActor("timer", nullptr);
  int fired = 0;
  executor.ScheduleAt(actor, 1'000, [&] { ++fired; });
  executor.ScheduleAt(actor, 9'000, [&] { ++fired; });
  executor.RunUntil(5'000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(executor.heap_size(), 1u);
  executor.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimExecutorTest, OrderDigestPinsDispatchOrderPerSeed) {
  auto digest_for_seed = [](uint64_t seed) {
    SimExecutor executor(seed);
    ActorId a = executor.RegisterActor("a", nullptr);
    ActorId b = executor.RegisterActor("b", nullptr);
    for (int i = 0; i < 6; ++i) {
      // All simultaneous: only the seeded tiebreak orders them.
      executor.ScheduleAt(i % 2 == 0 ? a : b, 1'000, [] {});
    }
    executor.Run();
    return executor.OrderDigest();
  };
  EXPECT_EQ(digest_for_seed(42), digest_for_seed(42));
  EXPECT_NE(digest_for_seed(42), digest_for_seed(43));
}

TEST(SimExecutorTest, ActorPidsStartAboveStandaloneDefault) {
  SimExecutor executor(1);
  SimClock clock;
  ActorId first = executor.RegisterActor("m0", &clock);
  ActorId second = executor.RegisterActor("m1", nullptr);
  EXPECT_EQ(executor.actor_pid(first), 2u);  // pid 1 = standalone default.
  EXPECT_EQ(executor.actor_pid(second), 3u);
  EXPECT_EQ(executor.actor_name(first), "m0");
  EXPECT_EQ(executor.actor_clock(first), &clock);
  EXPECT_EQ(executor.actor_count(), 2u);
}

}  // namespace
}  // namespace sim
}  // namespace flicker
