#include "src/common/serde.h"

#include <gtest/gtest.h>

namespace flicker {
namespace {

TEST(SerdeTest, RoundTripAllTypes) {
  Writer w;
  w.U8(0xab);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.Blob(BytesOf("blob data"));
  w.Str("a string");

  Reader r(w.Take());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.Blob(), BytesOf("blob data"));
  EXPECT_EQ(r.Str(), "a string");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, EmptyBlobAndString) {
  Writer w;
  w.Blob(Bytes());
  w.Str("");
  Reader r(w.Take());
  EXPECT_EQ(r.Blob(), Bytes());
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedReadSetsError) {
  Writer w;
  w.U32(7);
  Bytes wire = w.Take();
  wire.pop_back();
  Reader r(wire);
  EXPECT_EQ(r.U32(), 0u);  // Soft-fails to zero.
  EXPECT_FALSE(r.ok());
}

TEST(SerdeTest, BlobLengthBeyondBufferSetsError) {
  Writer w;
  w.U32(1000);  // Claims a 1000-byte blob with no payload.
  Reader r(w.Take());
  EXPECT_EQ(r.Blob(), Bytes());
  EXPECT_FALSE(r.ok());
}

TEST(SerdeTest, ErrorIsSticky) {
  Reader r(Bytes{0x01});
  (void)r.U32();  // Fails.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U8(), 0);  // Still failing even though 1 byte exists.
  EXPECT_FALSE(r.ok());
}

TEST(SerdeTest, AtEndDetectsTrailingBytes) {
  Writer w;
  w.U8(1);
  w.U8(2);
  Reader r(w.Take());
  EXPECT_EQ(r.U8(), 1);
  EXPECT_FALSE(r.AtEnd());
  EXPECT_EQ(r.U8(), 2);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, NestedStructuresCompose) {
  Writer inner;
  inner.Str("nested");
  inner.U32(42);

  Writer outer;
  outer.Blob(inner.Take());
  outer.U8(9);

  Reader r(outer.Take());
  Bytes inner_wire = r.Blob();
  EXPECT_EQ(r.U8(), 9);
  ASSERT_TRUE(r.ok());

  Reader ri(inner_wire);
  EXPECT_EQ(ri.Str(), "nested");
  EXPECT_EQ(ri.U32(), 42u);
  EXPECT_TRUE(ri.AtEnd());
}

}  // namespace
}  // namespace flicker
