#include "src/common/bytes.h"

#include <gtest/gtest.h>

namespace flicker {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(ToHex(data), "0001abff7f");
  bool ok = false;
  EXPECT_EQ(FromHex("0001abff7f", &ok), data);
  EXPECT_TRUE(ok);
}

TEST(BytesTest, HexUppercaseAccepted) {
  bool ok = false;
  EXPECT_EQ(FromHex("ABCD", &ok), (Bytes{0xab, 0xcd}));
  EXPECT_TRUE(ok);
}

TEST(BytesTest, HexOddLengthRejected) {
  bool ok = true;
  EXPECT_TRUE(FromHex("abc", &ok).empty());
  EXPECT_FALSE(ok);
}

TEST(BytesTest, HexBadDigitRejected) {
  bool ok = true;
  EXPECT_TRUE(FromHex("zz", &ok).empty());
  EXPECT_FALSE(ok);
}

TEST(BytesTest, EmptyHex) {
  EXPECT_EQ(ToHex({}), "");
  bool ok = false;
  EXPECT_TRUE(FromHex("", &ok).empty());
  EXPECT_TRUE(ok);
}

TEST(BytesTest, BytesOfCopiesText) {
  Bytes b = BytesOf("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 'c');
}

TEST(BytesTest, ConcatOrdersParts) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes c = {4, 5, 6};
  EXPECT_EQ(Concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(Concat(a, b, c), (Bytes{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(Concat({&c, &a}), (Bytes{4, 5, 6, 1, 2}));
}

TEST(BytesTest, ConstantTimeEquals) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(a, c));
  EXPECT_FALSE(ConstantTimeEquals(a, d));
  EXPECT_TRUE(ConstantTimeEquals({}, {}));
}

TEST(BytesTest, SecureEraseClears) {
  Bytes secret = {9, 9, 9, 9};
  SecureErase(&secret);
  EXPECT_TRUE(secret.empty());
}

TEST(BytesTest, BigEndianIntegerHelpers) {
  Bytes out;
  PutUint16(&out, 0x1234);
  PutUint32(&out, 0xdeadbeef);
  PutUint64(&out, 0x0102030405060708ULL);
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(GetUint16(out, 0), 0x1234);
  EXPECT_EQ(GetUint32(out, 2), 0xdeadbeefu);
  EXPECT_EQ(GetUint64(out, 6), 0x0102030405060708ULL);
}

}  // namespace
}  // namespace flicker
