#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include "src/os/tqd.h"

namespace flicker {
namespace {

TEST(BackoffTest, DefaultsReproduceTqdSchedule) {
  // The daemon's historical schedule is pinned by tqd_robustness_test via
  // elapsed-time checks; this pins it at the policy level: 2, 4, 8 ms.
  BackoffSchedule schedule(BackoffPolicy{});
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 4.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 8.0);
}

TEST(BackoffTest, TqdConfigDefaultsPinTheSchedule) {
  // TqdConfig embeds the shared policy; its defaults must stay 2/4/8 or the
  // daemon's calibrated retry timing silently shifts.
  TqdConfig config;
  BackoffSchedule schedule(config.backoff);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 4.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 8.0);
}

TEST(BackoffTest, CapBoundsEveryDelay) {
  BackoffSchedule schedule(BackoffPolicy{5.0, 2.0, 12.0, 0});
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 5.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 10.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 12.0);  // Capped, not 20.
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 12.0);  // Stays capped.
}

TEST(BackoffTest, PeekDoesNotRatchet) {
  BackoffSchedule schedule(BackoffPolicy{});
  EXPECT_DOUBLE_EQ(schedule.PeekDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.PeekDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.PeekDelayMs(), 4.0);
  EXPECT_EQ(schedule.retries_issued(), 1);
}

TEST(BackoffTest, ResetStartsOver) {
  BackoffSchedule schedule(BackoffPolicy{});
  schedule.NextDelayMs();
  schedule.NextDelayMs();
  schedule.Reset();
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
}

TEST(BackoffTest, JitterShrinksWithinFractionAndReplaysBitExact) {
  BackoffPolicy jittered{10.0, 2.0, 0, 0.5};
  BackoffSchedule a(jittered, 1234);
  BackoffSchedule b(jittered, 1234);
  BackoffSchedule c(jittered, 99);
  bool any_differs_across_seeds = false;
  for (int i = 0; i < 8; ++i) {
    double base = 10.0 * (1 << i);
    double da = a.NextDelayMs();
    EXPECT_GE(da, base * 0.5 - 1e-9);
    EXPECT_LE(da, base + 1e-9);
    EXPECT_DOUBLE_EQ(da, b.NextDelayMs());  // Same seed: bit-exact replay.
    if (da != c.NextDelayMs()) {
      any_differs_across_seeds = true;
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

TEST(BackoffTest, FullJitterDrawsFromWholeWindowAndReplaysBitExact) {
  BackoffPolicy policy{10.0, 2.0, 500.0, 0, true};
  BackoffSchedule a(policy, 77);
  BackoffSchedule b(policy, 77);
  for (int i = 0; i < 10; ++i) {
    double window = 10.0 * (1 << i);
    if (window > 500.0) {
      window = 500.0;  // The cap bounds the window, not just the delay.
    }
    double da = a.NextDelayMs();
    EXPECT_GE(da, 0.0);
    EXPECT_LT(da, window + 1e-9);
    EXPECT_DOUBLE_EQ(da, b.NextDelayMs());  // Same seed: bit-exact replay.
  }
}

TEST(BackoffTest, FullJitterDecorrelatesAcrossSeeds) {
  // The point of full jitter: a rack of machines that all saw the same
  // overload nack must NOT return in lockstep. Give each machine its own
  // seed and the first resend already spreads across the window.
  BackoffPolicy policy{10.0, 2.0, 500.0, 0, true};
  bool any_differs = false;
  double first = BackoffSchedule(policy, 0).NextDelayMs();
  for (uint64_t machine = 1; machine < 8; ++machine) {
    if (BackoffSchedule(policy, machine).NextDelayMs() != first) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(BackoffTest, FullJitterOverridesJitterFraction) {
  // With both knobs set, full jitter wins: delays may land well below what
  // the fraction alone could produce (fraction 0.1 keeps >= 90% of the
  // exponential value; full jitter can draw near zero).
  BackoffPolicy policy{100.0, 2.0, 0, 0.1, true};
  bool any_below_fraction_floor = false;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    if (BackoffSchedule(policy, seed).NextDelayMs() < 90.0) {
      any_below_fraction_floor = true;
    }
  }
  EXPECT_TRUE(any_below_fraction_floor);
}

}  // namespace
}  // namespace flicker
