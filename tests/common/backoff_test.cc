#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include "src/os/tqd.h"

namespace flicker {
namespace {

TEST(BackoffTest, DefaultsReproduceTqdSchedule) {
  // The daemon's historical schedule is pinned by tqd_robustness_test via
  // elapsed-time checks; this pins it at the policy level: 2, 4, 8 ms.
  BackoffSchedule schedule(BackoffPolicy{});
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 4.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 8.0);
}

TEST(BackoffTest, TqdConfigDefaultsPinTheSchedule) {
  // TqdConfig embeds the shared policy; its defaults must stay 2/4/8 or the
  // daemon's calibrated retry timing silently shifts.
  TqdConfig config;
  BackoffSchedule schedule(config.backoff);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 4.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 8.0);
}

TEST(BackoffTest, CapBoundsEveryDelay) {
  BackoffSchedule schedule(BackoffPolicy{5.0, 2.0, 12.0, 0});
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 5.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 10.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 12.0);  // Capped, not 20.
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 12.0);  // Stays capped.
}

TEST(BackoffTest, PeekDoesNotRatchet) {
  BackoffSchedule schedule(BackoffPolicy{});
  EXPECT_DOUBLE_EQ(schedule.PeekDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.PeekDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.PeekDelayMs(), 4.0);
  EXPECT_EQ(schedule.retries_issued(), 1);
}

TEST(BackoffTest, ResetStartsOver) {
  BackoffSchedule schedule(BackoffPolicy{});
  schedule.NextDelayMs();
  schedule.NextDelayMs();
  schedule.Reset();
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
}

TEST(BackoffTest, JitterShrinksWithinFractionAndReplaysBitExact) {
  BackoffPolicy jittered{10.0, 2.0, 0, 0.5};
  BackoffSchedule a(jittered, 1234);
  BackoffSchedule b(jittered, 1234);
  BackoffSchedule c(jittered, 99);
  bool any_differs_across_seeds = false;
  for (int i = 0; i < 8; ++i) {
    double base = 10.0 * (1 << i);
    double da = a.NextDelayMs();
    EXPECT_GE(da, base * 0.5 - 1e-9);
    EXPECT_LE(da, base + 1e-9);
    EXPECT_DOUBLE_EQ(da, b.NextDelayMs());  // Same seed: bit-exact replay.
    if (da != c.NextDelayMs()) {
      any_differs_across_seeds = true;
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

}  // namespace
}  // namespace flicker
