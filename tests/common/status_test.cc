#include "src/common/status.h"

#include <gtest/gtest.h>

namespace flicker {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = PermissionDeniedError("SKINIT requires ring 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.message(), "SKINIT requires ring 0");
  EXPECT_EQ(s.ToString(), "permission denied: SKINIT requires ring 0");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(IntegrityFailureError("").code(), StatusCode::kIntegrityFailure);
  EXPECT_EQ(ReplayDetectedError("").code(), StatusCode::kReplayDetected);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeMoves) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = r.take();
  EXPECT_EQ(v, "payload");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return IntegrityFailureError("tag mismatch"); };
  auto wrapper = [&]() -> Status {
    FLICKER_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIntegrityFailure);

  auto succeeds = []() -> Status { return Status::Ok(); };
  auto wrapper2 = [&]() -> Status {
    FLICKER_RETURN_IF_ERROR(succeeds());
    return NotFoundError("fell through");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace flicker
