// The noisy-neighbor + power-cut chaos campaign, asserted end to end: one
// flooding tenant and one crash-looping tenant share the multiplexer with
// four healthy tenants across two mid-campaign power cuts. Tenant fault
// isolation means the healthy tenants complete 100% of their rounds with
// bounded tail latency, every accepted quote verifies and answers the right
// challenge, the misbehaving tenants are quarantined, and the same seed
// reproduces the same JSON byte for byte.

#include <gtest/gtest.h>

#include "src/vtpm/vtpm_campaign.h"

namespace flicker {
namespace vtpm {
namespace {

VtpmCampaignConfig BaseConfig(uint64_t seed) {
  VtpmCampaignConfig config;
  config.seed = seed;
  config.num_tenants = 6;
  config.duration_ms = 60000.0;
  config.power_cut_at_ms = {20000.0, 41000.0};
  return config;
}

TEST(VtpmCampaignTest, HealthyTenantsAreIsolatedFromNoisyNeighbors) {
  VtpmCampaignConfig config = BaseConfig(7);
  Result<VtpmCampaignStats> run = RunVtpmCampaign(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const VtpmCampaignStats& stats = run.value();

  // The campaign actually stressed the system: a real flood, real power
  // cuts, and quarantines that caught both misbehaving tenants.
  EXPECT_GE(stats.tenants[static_cast<size_t>(config.flooding_tenant)].injected, 100u);
  EXPECT_GT(stats.tenants[static_cast<size_t>(config.flooding_tenant)].breaker_trips, 0u);
  EXPECT_GT(stats.tenants[static_cast<size_t>(config.crashloop_tenant)].breaker_trips, 0u);
  EXPECT_EQ(stats.power_cuts, 2u);
  EXPECT_GT(stats.shed_total, 0u);
  EXPECT_GT(stats.quarantines, 0u);

  // The isolation claims. 100% healthy completion, no starvation (every
  // healthy tenant completed everything it injected, so Jain's index is 1
  // over completion rates and high over raw counts), bounded p99.
  EXPECT_EQ(stats.HealthyCompletionRate(config), 1.0);
  for (int i = 0; i < config.num_tenants; ++i) {
    if (i == config.flooding_tenant || i == config.crashloop_tenant) {
      continue;
    }
    EXPECT_EQ(stats.tenants[static_cast<size_t>(i)].completed,
              stats.tenants[static_cast<size_t>(i)].injected)
        << "tenant " << i << " starved";
  }
  EXPECT_GT(stats.HealthyJainIndex(config), 0.8);
  EXPECT_LT(stats.HealthyLatencyPercentileMs(0.99), config.client_timeout_ms);

  // Attestation integrity under chaos: every accepted quote carried a valid
  // AIK signature, and none answered a challenge its client never issued.
  EXPECT_GT(stats.responses_verified, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.accepted_wrong, 0u);
  // No adversary rolled back state; the power cuts alone must not trip the
  // rollback defense (false positives would quarantine honest tenants).
  EXPECT_EQ(stats.rollbacks_detected, 0u);
}

TEST(VtpmCampaignTest, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  VtpmCampaignConfig config = BaseConfig(21);
  Result<VtpmCampaignStats> first = RunVtpmCampaign(config);
  Result<VtpmCampaignStats> second = RunVtpmCampaign(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().ToJson(config), second.value().ToJson(config));
  EXPECT_EQ(first.value().order_digest, second.value().order_digest);

  VtpmCampaignConfig other = BaseConfig(22);
  Result<VtpmCampaignStats> third = RunVtpmCampaign(other);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(first.value().order_digest, third.value().order_digest);
}

TEST(VtpmCampaignTest, QuietCampaignWithoutMisbehaviorIsAllClean) {
  VtpmCampaignConfig config = BaseConfig(3);
  config.num_tenants = 4;
  config.flooding_tenant = -1;
  config.crashloop_tenant = -1;
  config.power_cut_at_ms.clear();
  config.duration_ms = 30000.0;

  Result<VtpmCampaignStats> run = RunVtpmCampaign(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const VtpmCampaignStats& stats = run.value();
  EXPECT_EQ(stats.HealthyCompletionRate(config), 1.0);
  EXPECT_EQ(stats.quarantines, 0u);
  EXPECT_EQ(stats.accepted_wrong, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.rollbacks_detected, 0u);
}

TEST(VtpmCampaignTest, ConfigIsValidated) {
  VtpmCampaignConfig config;
  config.num_tenants = 0;
  EXPECT_FALSE(RunVtpmCampaign(config).ok());
}

}  // namespace
}  // namespace vtpm
}  // namespace flicker
