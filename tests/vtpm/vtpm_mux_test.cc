// VtpmMultiplexer isolation properties, directly (the campaign test proves
// them end-to-end under load): round-robin fairness, the per-tenant circuit
// breaker on repeated faults, flood quarantine on sustained queue overflow,
// queue-age shedding, and the bound-nonce construction a verifier recomputes.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/vtpm/vtpm_mux.h"

namespace flicker {
namespace vtpm {
namespace {

class VtpmMuxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    platform_ = std::make_unique<FlickerPlatform>();
    Bytes owner_secret = Sha1::Digest(BytesOf("owner"));
    ASSERT_TRUE(platform_->tpm()->TakeOwnership(owner_secret).ok());

    VtpmManagerConfig config;
    config.max_resident = 8;
    config.owner_secret = owner_secret;
    config.blob_auth = Sha1::Digest(BytesOf("blob"));
    config.release_pcr17 = platform_->tpm()->PcrRead(kSkinitPcr).value();
    manager_ = std::make_unique<VtpmManager>(platform_->machine(), config);
  }

  void MakeMux(VtpmMuxConfig config = VtpmMuxConfig()) {
    mux_ = std::make_unique<VtpmMultiplexer>(manager_.get(), platform_->tqd(), config);
    mux_->set_sink([this](const VtpmQuoteCompletion& completion) {
      completions_.push_back(completion);
    });
  }

  Bytes Auth(const std::string& tenant) { return Sha1::Digest(BytesOf("auth-" + tenant)); }

  void AddTenant(const std::string& tenant) {
    ASSERT_TRUE(manager_->CreateTenant(tenant, Auth(tenant)).ok());
  }

  Bytes Nonce(int i) { return Sha1::Digest(BytesOf("nonce-" + std::to_string(i))); }

  std::unique_ptr<FlickerPlatform> platform_;
  std::unique_ptr<VtpmManager> manager_;
  std::unique_ptr<VtpmMultiplexer> mux_;
  std::vector<VtpmQuoteCompletion> completions_;
};

TEST_F(VtpmMuxTest, RoundRobinInterleavesTenantsRegardlessOfArrivalOrder) {
  MakeMux();
  AddTenant("a");
  AddTenant("b");
  // Tenant a floods four requests in before b's single request arrives.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(mux_->Submit("a", Nonce(i), Auth("a")).ok());
  }
  ASSERT_TRUE(mux_->Submit("b", Nonce(100), Auth("b")).ok());

  mux_->PumpAll();
  ASSERT_EQ(completions_.size(), 5u);
  // b is served on the second rotation, not after a's whole backlog.
  EXPECT_EQ(completions_[1].tenant, "b");
  for (const VtpmQuoteCompletion& completion : completions_) {
    EXPECT_TRUE(completion.status.ok()) << completion.status.ToString();
  }
}

TEST_F(VtpmMuxTest, QuoteBindsTenantCompositeAndVerifies) {
  MakeMux();
  AddTenant("a");
  ASSERT_TRUE(manager_->Extend("a", 0, Auth("a"), Bytes(20, 0x77)).ok());
  Bytes composite = manager_->ResidentTenant("a").value()->CompositeDigest();

  ASSERT_TRUE(mux_->Submit("a", Nonce(0), Auth("a")).ok());
  mux_->PumpAll();
  ASSERT_EQ(completions_.size(), 1u);
  const VtpmQuoteCompletion& completion = completions_[0];
  ASSERT_TRUE(completion.status.ok()) << completion.status.ToString();

  // The hardware quote signs the bound nonce a verifier can recompute from
  // the challenge + the tenant's expected composite.
  EXPECT_EQ(completion.composite, composite);
  Bytes expected = VtpmMultiplexer::BoundNonce(TenantTag("a"), composite, Nonce(0));
  EXPECT_EQ(completion.bound_nonce, expected);
  EXPECT_EQ(completion.response.quote.nonce, expected);

  Result<RsaPublicKey> aik = RsaPublicKey::Deserialize(completion.response.aik_public);
  ASSERT_TRUE(aik.ok());
  Bytes info = BytesOf("QUOT");
  Bytes quote_composite = RecomputeQuoteComposite(completion.response.quote);
  info.insert(info.end(), quote_composite.begin(), quote_composite.end());
  info.insert(info.end(), completion.response.quote.nonce.begin(),
              completion.response.quote.nonce.end());
  EXPECT_TRUE(RsaVerifySha1(aik.value(), info, completion.response.quote.signature));

  // A different tenant (or a stale composite) yields a different binding.
  EXPECT_NE(VtpmMultiplexer::BoundNonce(TenantTag("b"), composite, Nonce(0)), expected);
  EXPECT_NE(VtpmMultiplexer::BoundNonce(TenantTag("a"), Bytes(20, 0x00), Nonce(0)), expected);
}

TEST_F(VtpmMuxTest, RepeatedAuthFailuresTripTheBreakerAndShedOnSubmit) {
  VtpmMuxConfig config;
  config.breaker_threshold = 3;
  MakeMux(config);
  AddTenant("sick");

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mux_->Submit("sick", Nonce(i), Auth("wrong")).ok());
    mux_->PumpAll();
  }
  ASSERT_EQ(completions_.size(), 3u);
  for (const VtpmQuoteCompletion& completion : completions_) {
    EXPECT_EQ(completion.status.code(), StatusCode::kPermissionDenied);
  }
  EXPECT_TRUE(mux_->TenantBreakerOpen("sick"));
  EXPECT_EQ(mux_->quarantines_total(), 1u);

  // Breaker-open traffic is refused at the door: no queue churn, no
  // hardware turn, kUnavailable back to the caller.
  Status shed = mux_->Submit("sick", Nonce(9), Auth("wrong"));
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(mux_->pending_count(), 0u);
  EXPECT_GE(mux_->shed_total(), 1u);
}

TEST_F(VtpmMuxTest, BreakerHalfOpensAfterCooldownAndHealedTenantRecovers) {
  VtpmMuxConfig config;
  config.breaker_threshold = 2;
  config.breaker_cooldown_ms = 1000.0;
  MakeMux(config);
  AddTenant("sick");

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(mux_->Submit("sick", Nonce(i), Auth("wrong")).ok());
    mux_->PumpAll();
  }
  ASSERT_TRUE(mux_->TenantBreakerOpen("sick"));
  EXPECT_EQ(mux_->Submit("sick", Nonce(2), Auth("sick")).code(), StatusCode::kUnavailable);

  // After the cooldown the lane half-opens; a now-healthy tenant completes.
  platform_->clock()->AdvanceMillis(1500);
  completions_.clear();
  ASSERT_TRUE(mux_->Submit("sick", Nonce(3), Auth("sick")).ok());
  mux_->PumpAll();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_TRUE(completions_[0].status.ok()) << completions_[0].status.ToString();
  EXPECT_FALSE(mux_->TenantBreakerOpen("sick"));
}

TEST_F(VtpmMuxTest, SustainedOverflowQuarantinesTheFloodingTenant) {
  VtpmMuxConfig config;
  config.max_queue_per_tenant = 4;
  config.flood_threshold = 8;
  MakeMux(config);
  AddTenant("flood");
  AddTenant("quiet");

  // Fill the queue, then keep hammering: every extra submit overflows.
  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 20; ++i) {
    Status st = mux_->Submit("flood", Nonce(i), Auth("flood"));
    st.ok() ? ++accepted : ++shed;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(shed, 16);
  EXPECT_TRUE(mux_->TenantBreakerOpen("flood"));

  // The flood's already-queued requests drain as sheds (the breaker opened
  // while they waited); the quiet tenant still completes normally.
  ASSERT_TRUE(mux_->Submit("quiet", Nonce(100), Auth("quiet")).ok());
  mux_->PumpAll();
  ASSERT_EQ(completions_.size(), 5u);
  for (const VtpmQuoteCompletion& completion : completions_) {
    if (completion.tenant == "flood") {
      EXPECT_EQ(completion.status.code(), StatusCode::kUnavailable);
    } else {
      EXPECT_EQ(completion.tenant, "quiet");
      EXPECT_TRUE(completion.status.ok()) << completion.status.ToString();
    }
  }
}

TEST_F(VtpmMuxTest, StaleQueuedRequestsAreShedNotServed) {
  VtpmMuxConfig config;
  config.max_queue_age_ms = 500.0;
  MakeMux(config);
  AddTenant("slow");

  ASSERT_TRUE(mux_->Submit("slow", Nonce(0), Auth("slow")).ok());
  platform_->clock()->AdvanceMillis(2000);  // Challenger has long timed out.
  mux_->PumpAll();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].status.code(), StatusCode::kUnavailable);
  EXPECT_GE(completions_[0].queue_age_ms, 2000.0);
}

TEST_F(VtpmMuxTest, PowerLossClearsQueuesAndBreakers) {
  VtpmMuxConfig config;
  config.breaker_threshold = 1;
  MakeMux(config);
  AddTenant("a");
  AddTenant("b");
  ASSERT_TRUE(mux_->Submit("a", Nonce(0), Auth("a")).ok());
  ASSERT_TRUE(mux_->Submit("b", Nonce(1), Auth("wrong")).ok());
  mux_->PumpOne();  // a completes.
  mux_->PumpOne();  // b fails; threshold 1 opens its breaker.
  ASSERT_TRUE(mux_->TenantBreakerOpen("b"));
  ASSERT_TRUE(mux_->Submit("a", Nonce(2), Auth("a")).ok());

  mux_->OnPowerLoss();
  EXPECT_EQ(mux_->pending_count(), 0u);
  EXPECT_FALSE(mux_->HasPending());
  // A rebooted multiplexer starts every tenant closed and re-learns.
  EXPECT_FALSE(mux_->TenantBreakerOpen("b"));
}

TEST_F(VtpmMuxTest, RollbackQuarantinedTenantFailsItsRequestsOnly) {
  MakeMux();
  AddTenant("victim");
  AddTenant("healthy");
  ASSERT_TRUE(manager_->SnapshotTenant("victim").ok());
  CrashConsistentSealedStore* store = manager_->StoreForTest("victim");
  CrashConsistentSealedStore::DiskImageForTest stale = store->CaptureDiskForTest();
  ASSERT_TRUE(manager_->SnapshotTenant("victim").ok());

  platform_->machine()->PowerCut();
  ASSERT_TRUE(platform_->tpm()->Startup(TpmStartupType::kClear).ok());
  manager_->OnPowerLoss();
  mux_->OnPowerLoss();
  store->RestoreDiskForTest(std::move(stale));
  ASSERT_TRUE(manager_->RecoverAll().ok());

  ASSERT_TRUE(mux_->Submit("victim", Nonce(0), Auth("victim")).ok());
  ASSERT_TRUE(mux_->Submit("healthy", Nonce(1), Auth("healthy")).ok());
  mux_->PumpAll();
  ASSERT_EQ(completions_.size(), 2u);
  for (const VtpmQuoteCompletion& completion : completions_) {
    if (completion.tenant == "victim") {
      EXPECT_EQ(completion.status.code(), StatusCode::kRollbackDetected);
    } else {
      EXPECT_TRUE(completion.status.ok()) << completion.status.ToString();
    }
  }
}

}  // namespace
}  // namespace vtpm
}  // namespace flicker
