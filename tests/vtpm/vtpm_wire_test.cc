// Hostile-input battery for the vTPM wire formats, in the table-driven
// style of the command-parser batteries: the state blob and the counter
// binding are both parsed from bytes the untrusted OS stores, so
// Deserialize must reject - never crash, never misparse - truncations,
// length lies, and every single-byte flip of a valid encoding.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/serde.h"
#include "src/crypto/sha1.h"
#include "src/vtpm/vtpm_state.h"

namespace flicker {
namespace vtpm {
namespace {

VtpmCounterBinding MakeBinding() {
  VtpmCounterBinding binding;
  binding.counter_id = 42;
  binding.counter_value = 1234567;
  binding.tenant_tag = TenantTag("tenant-a");
  return binding;
}

VtpmState MakeState() {
  VtpmState state = VtpmState::Fresh("tenant-a", Sha1::Digest(BytesOf("auth")),
                                     Sha1::Digest(BytesOf("seed")));
  state.generation = 5;
  state.extends = 2;
  state.binding = MakeBinding();
  state.pcrs[3] = Sha1::Digest(BytesOf("measured"));
  return state;
}

// A hand-built binding encoding with one field lied about; the checksum is
// recomputed so it alone cannot save the parser.
Bytes BindingWithLie(const std::string& lie) {
  Writer w;
  w.U32(0x56434231);  // Magic.
  w.U32(42);
  w.U64(1234567);
  if (lie == "short-tag") {
    w.Blob(Bytes(19, 0xaa));
  } else if (lie == "long-tag") {
    w.Blob(Bytes(21, 0xaa));
  } else if (lie == "huge-tag") {
    w.Blob(Bytes(4096, 0xaa));
  } else if (lie == "trailing") {
    w.Blob(Bytes(20, 0xaa));
    w.U32(0xdeadbeef);
  } else if (lie == "missing-tag") {
    // No tag blob at all.
  }
  Bytes body = w.Take();
  uint32_t crc = 0x811C9DC5u;
  for (uint8_t byte : body) {
    crc = (crc ^ byte) * 0x01000193u;
  }
  PutUint32(&body, crc);
  return body;
}

TEST(VtpmWireBatteryTest, BindingTruncationSweepRejectsEveryPrefix) {
  const Bytes wire = MakeBinding().Serialize();
  for (size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_FALSE(VtpmCounterBinding::Deserialize(truncated).ok())
        << "prefix of " << len << "/" << wire.size() << " bytes parsed";
  }
}

TEST(VtpmWireBatteryTest, BindingSingleByteFlipSweepRejectsEveryFlip) {
  const Bytes wire = MakeBinding().Serialize();
  for (size_t i = 0; i < wire.size(); ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
      Bytes mutated = wire;
      mutated[i] ^= flip;
      EXPECT_FALSE(VtpmCounterBinding::Deserialize(mutated).ok())
          << "flip 0x" << std::hex << int(flip) << " at byte " << std::dec << i << " parsed";
    }
  }
}

TEST(VtpmWireBatteryTest, BindingLengthLiesAreRejected) {
  for (const char* lie : {"short-tag", "long-tag", "huge-tag", "trailing", "missing-tag"}) {
    EXPECT_FALSE(VtpmCounterBinding::Deserialize(BindingWithLie(lie)).ok())
        << "length lie '" << lie << "' parsed";
  }
}

TEST(VtpmWireBatteryTest, BindingGarbageAndEmptyAreRejected) {
  EXPECT_FALSE(VtpmCounterBinding::Deserialize(Bytes()).ok());
  EXPECT_FALSE(VtpmCounterBinding::Deserialize(Bytes(3, 0x00)).ok());
  EXPECT_FALSE(VtpmCounterBinding::Deserialize(Bytes(64, 0xff)).ok());
  // Right sizes, wrong magic.
  Bytes wire = MakeBinding().Serialize();
  wire[0] ^= 0xff;
  EXPECT_FALSE(VtpmCounterBinding::Deserialize(wire).ok());
}

TEST(VtpmWireBatteryTest, StateTruncationSweepRejectsEveryPrefix) {
  const Bytes wire = MakeState().Serialize();
  for (size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_FALSE(VtpmState::Deserialize(truncated).ok())
        << "prefix of " << len << "/" << wire.size() << " bytes parsed";
  }
}

TEST(VtpmWireBatteryTest, StateSingleByteFlipSweepRejectsEveryFlip) {
  const Bytes wire = MakeState().Serialize();
  for (size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= 0x01;
    EXPECT_FALSE(VtpmState::Deserialize(mutated).ok())
        << "flip at byte " << i << " of " << wire.size() << " parsed";
  }
}

TEST(VtpmWireBatteryTest, StateStructuralLiesAreRejected) {
  // Each case re-serializes a corrupted struct through the honest writer, so
  // checksums and framing are valid and only the semantic check can refuse.
  {
    VtpmState state = MakeState();
    state.tenant = std::string(kMaxTenantNameLen + 1, 'x');
    state.binding.tenant_tag = TenantTag(state.tenant);
    EXPECT_FALSE(VtpmState::Deserialize(state.Serialize()).ok()) << "oversize tenant parsed";
  }
  {
    VtpmState state = MakeState();
    state.tenant.clear();
    EXPECT_FALSE(VtpmState::Deserialize(state.Serialize()).ok()) << "empty tenant parsed";
  }
  {
    VtpmState state = MakeState();
    state.owner_auth = Bytes(8, 0x01);
    EXPECT_FALSE(VtpmState::Deserialize(state.Serialize()).ok()) << "short owner auth parsed";
  }
  {
    VtpmState state = MakeState();
    state.pcrs[5] = Bytes(64, 0x01);
    EXPECT_FALSE(VtpmState::Deserialize(state.Serialize()).ok()) << "oversize vPCR parsed";
  }
  {
    // Cross-tenant swap: state blob for tenant-a carrying tenant-b's tag.
    VtpmState state = MakeState();
    state.binding.tenant_tag = TenantTag("tenant-b");
    EXPECT_FALSE(VtpmState::Deserialize(state.Serialize()).ok()) << "cross-tenant tag parsed";
  }
}

TEST(VtpmWireBatteryTest, HonestEncodingsStillParseAfterTheSweeps) {
  // Guard against a battery that "passes" because everything is rejected.
  EXPECT_TRUE(VtpmCounterBinding::Deserialize(MakeBinding().Serialize()).ok());
  EXPECT_TRUE(VtpmState::Deserialize(MakeState().Serialize()).ok());
}

}  // namespace
}  // namespace vtpm
}  // namespace flicker
