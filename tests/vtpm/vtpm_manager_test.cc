// VtpmManager behavior: tenant lifecycle, LRU working-set management,
// power-loss recovery, and - the headline negative test - the rollback
// attack: power-cut the host, hand back an older (perfectly sealed, replay-
// protected at its time) snapshot from the untrusted disk, and the manager
// must detect it (kRollbackDetected), quarantine the tenant, and fail
// closed instead of attesting stale state.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"
#include "src/vtpm/vtpm_manager.h"

namespace flicker {
namespace vtpm {
namespace {

class VtpmManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    platform_ = std::make_unique<FlickerPlatform>();
    owner_secret_ = Sha1::Digest(BytesOf("owner"));
    ASSERT_TRUE(platform_->tpm()->TakeOwnership(owner_secret_).ok());

    VtpmManagerConfig config;
    config.max_resident = 2;
    config.owner_secret = owner_secret_;
    config.blob_auth = Sha1::Digest(BytesOf("blob"));
    config.release_pcr17 = platform_->tpm()->PcrRead(kSkinitPcr).value();
    manager_ = std::make_unique<VtpmManager>(platform_->machine(), config);
  }

  Bytes Auth(const std::string& tenant) {
    return Sha1::Digest(BytesOf("auth-" + tenant));
  }

  void PowerCutAndRecover() {
    platform_->machine()->PowerCut();
    ASSERT_TRUE(platform_->tpm()->Startup(TpmStartupType::kClear).ok());
    manager_->OnPowerLoss();
    ASSERT_TRUE(manager_->RecoverAll().ok());
  }

  std::unique_ptr<FlickerPlatform> platform_;
  std::unique_ptr<VtpmManager> manager_;
  Bytes owner_secret_;
};

TEST_F(VtpmManagerTest, CreateExtendSnapshotSurvivesPowerLoss) {
  ASSERT_TRUE(manager_->CreateTenant("alice", Auth("alice")).ok());
  ASSERT_TRUE(manager_->Extend("alice", 1, Auth("alice"), Bytes(20, 0x11)).ok());
  ASSERT_TRUE(manager_->SnapshotTenant("alice").ok());
  Bytes composite = manager_->ResidentTenant("alice").value()->CompositeDigest();

  PowerCutAndRecover();
  EXPECT_FALSE(manager_->TenantResident("alice"));

  Result<VirtualTpm*> vt = manager_->ResidentTenant("alice");
  ASSERT_TRUE(vt.ok()) << vt.status().ToString();
  EXPECT_EQ(vt.value()->CompositeDigest(), composite);
  EXPECT_EQ(vt.value()->PcrRead(1).value(),
            Sha1::Digest([] {
              Bytes input(20, 0x00);
              Bytes m(20, 0x11);
              input.insert(input.end(), m.begin(), m.end());
              return input;
            }()));
}

TEST_F(VtpmManagerTest, UnsnapshottedExtendIsLostNotTorn) {
  ASSERT_TRUE(manager_->CreateTenant("alice", Auth("alice")).ok());
  Bytes snapshot_composite = manager_->ResidentTenant("alice").value()->CompositeDigest();
  ASSERT_TRUE(manager_->Extend("alice", 0, Auth("alice"), Bytes(20, 0x22)).ok());

  PowerCutAndRecover();
  // The RAM-only extend vanished; the tenant is exactly its last snapshot.
  Result<VirtualTpm*> vt = manager_->ResidentTenant("alice");
  ASSERT_TRUE(vt.ok());
  EXPECT_EQ(vt.value()->CompositeDigest(), snapshot_composite);
  EXPECT_EQ(vt.value()->PcrRead(0).value(), Bytes(20, 0x00));
}

TEST_F(VtpmManagerTest, WrongOwnerAuthIsRefused) {
  ASSERT_TRUE(manager_->CreateTenant("alice", Auth("alice")).ok());
  Status st = manager_->Extend("alice", 0, Auth("mallory"), Bytes(20, 0x33));
  EXPECT_EQ(st.code(), StatusCode::kPermissionDenied);
}

TEST_F(VtpmManagerTest, LruEvictionBoundsTheResidentSet) {
  for (const char* name : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(manager_->CreateTenant(name, Auth(name)).ok());
    EXPECT_LE(manager_->resident_count(), 2u);
  }
  // Every tenant still loads (evicted ones re-load from their stores).
  for (const char* name : {"a", "b", "c", "d"}) {
    EXPECT_TRUE(manager_->ResidentTenant(name).ok()) << name;
  }
  EXPECT_LE(manager_->resident_count(), 2u);
}

TEST_F(VtpmManagerTest, ExplicitEvictThenLoadRoundTrips) {
  ASSERT_TRUE(manager_->CreateTenant("alice", Auth("alice")).ok());
  ASSERT_TRUE(manager_->Extend("alice", 4, Auth("alice"), Bytes(20, 0x44)).ok());
  Bytes composite = manager_->ResidentTenant("alice").value()->CompositeDigest();

  ASSERT_TRUE(manager_->EvictTenant("alice").ok());
  EXPECT_FALSE(manager_->TenantResident("alice"));
  // Eviction snapshots first, so the extend survived.
  EXPECT_EQ(manager_->ResidentTenant("alice").value()->CompositeDigest(), composite);
}

TEST_F(VtpmManagerTest, TenantNamespaceIsValidated) {
  EXPECT_FALSE(manager_->CreateTenant("", Auth("x")).ok());
  EXPECT_FALSE(manager_->CreateTenant(std::string(65, 'x'), Auth("x")).ok());
  EXPECT_FALSE(manager_->CreateTenant("alice", Bytes(5, 0x01)).ok());
  ASSERT_TRUE(manager_->CreateTenant("alice", Auth("alice")).ok());
  EXPECT_EQ(manager_->CreateTenant("alice", Auth("alice")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager_->ResidentTenant("nobody").status().code(), StatusCode::kNotFound);
}

TEST_F(VtpmManagerTest, RollbackAttackIsDetectedAndFailsClosed) {
  ASSERT_TRUE(manager_->CreateTenant("victim", Auth("victim")).ok());
  ASSERT_TRUE(manager_->Extend("victim", 0, Auth("victim"), Bytes(20, 0x01)).ok());
  ASSERT_TRUE(manager_->SnapshotTenant("victim").ok());

  // The attacker copies the disk now (a complete, internally consistent
  // sealed snapshot)...
  CrashConsistentSealedStore* store = manager_->StoreForTest("victim");
  ASSERT_NE(store, nullptr);
  CrashConsistentSealedStore::DiskImageForTest stale = store->CaptureDiskForTest();

  // ...the tenant keeps running and snapshots a newer generation...
  ASSERT_TRUE(manager_->Extend("victim", 0, Auth("victim"), Bytes(20, 0x02)).ok());
  ASSERT_TRUE(manager_->SnapshotTenant("victim").ok());

  // ...then the attacker power-cuts the host and restores the stale copy.
  platform_->machine()->PowerCut();
  ASSERT_TRUE(platform_->tpm()->Startup(TpmStartupType::kClear).ok());
  manager_->OnPowerLoss();
  store->RestoreDiskForTest(std::move(stale));
  ASSERT_TRUE(manager_->RecoverAll().ok());

  // Deterministically detected: the stale blob's version cannot match the
  // live hardware counter.
  uint64_t rollbacks_before = manager_->rollbacks_detected();
  Result<VirtualTpm*> vt = manager_->ResidentTenant("victim");
  ASSERT_FALSE(vt.ok());
  EXPECT_EQ(vt.status().code(), StatusCode::kRollbackDetected) << vt.status().ToString();
  EXPECT_EQ(manager_->rollbacks_detected(), rollbacks_before + 1);

  // Fail closed: the tenant stays quarantined for every later operation.
  EXPECT_TRUE(manager_->TenantQuarantined("victim"));
  EXPECT_EQ(manager_->ResidentTenant("victim").status().code(), StatusCode::kRollbackDetected);
  EXPECT_EQ(manager_->Extend("victim", 0, Auth("victim"), Bytes(20, 0x03)).code(),
            StatusCode::kRollbackDetected);
  EXPECT_EQ(manager_->SnapshotTenant("victim").code(), StatusCode::kRollbackDetected);
}

TEST_F(VtpmManagerTest, QuarantineIsPerTenant) {
  ASSERT_TRUE(manager_->CreateTenant("victim", Auth("victim")).ok());
  ASSERT_TRUE(manager_->CreateTenant("healthy", Auth("healthy")).ok());
  ASSERT_TRUE(manager_->SnapshotTenant("victim").ok());

  CrashConsistentSealedStore* store = manager_->StoreForTest("victim");
  CrashConsistentSealedStore::DiskImageForTest stale = store->CaptureDiskForTest();
  ASSERT_TRUE(manager_->SnapshotTenant("victim").ok());

  platform_->machine()->PowerCut();
  ASSERT_TRUE(platform_->tpm()->Startup(TpmStartupType::kClear).ok());
  manager_->OnPowerLoss();
  store->RestoreDiskForTest(std::move(stale));
  ASSERT_TRUE(manager_->RecoverAll().ok());

  EXPECT_EQ(manager_->ResidentTenant("victim").status().code(), StatusCode::kRollbackDetected);
  // The co-tenant is untouched: isolation means one tenant's compromise
  // never degrades another's service.
  EXPECT_TRUE(manager_->ResidentTenant("healthy").ok());
  EXPECT_TRUE(manager_->Extend("healthy", 0, Auth("healthy"), Bytes(20, 0x05)).ok());
}

TEST_F(VtpmManagerTest, CorruptStateBlobQuarantinesTheTenant) {
  ASSERT_TRUE(manager_->CreateTenant("victim", Auth("victim")).ok());
  ASSERT_TRUE(manager_->SnapshotTenant("victim").ok());

  // Swap in a different tenant's (validly sealed) disk: the unseal succeeds
  // and the version matches, but the state names the wrong tenant.
  ASSERT_TRUE(manager_->CreateTenant("other", Auth("other")).ok());

  platform_->machine()->PowerCut();
  ASSERT_TRUE(platform_->tpm()->Startup(TpmStartupType::kClear).ok());
  manager_->OnPowerLoss();
  ASSERT_TRUE(manager_->RecoverAll().ok());

  CrashConsistentSealedStore* victim = manager_->StoreForTest("victim");
  CrashConsistentSealedStore* other = manager_->StoreForTest("other");
  victim->RestoreDiskForTest(other->CaptureDiskForTest());

  Result<VirtualTpm*> vt = manager_->ResidentTenant("victim");
  ASSERT_FALSE(vt.ok());
  EXPECT_TRUE(manager_->TenantQuarantined("victim"));
}

}  // namespace
}  // namespace vtpm
}  // namespace flicker
