// VtpmState / VirtualTpm unit coverage: wire round-trips, hardware-faithful
// vPCR extend semantics, deterministic key derivation, and the owner-auth
// gate. The hostile-input battery for the same formats lives in
// vtpm_wire_test.cc.

#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/vtpm/vtpm.h"
#include "src/vtpm/vtpm_state.h"

namespace flicker {
namespace vtpm {
namespace {

VtpmState MakeState() {
  VtpmState state = VtpmState::Fresh("tenant-a", Sha1::Digest(BytesOf("auth")),
                                     Sha1::Digest(BytesOf("seed")));
  state.generation = 7;
  state.extends = 3;
  state.binding.counter_id = 42;
  state.binding.counter_value = 9;
  return state;
}

TEST(VtpmStateTest, BindingRoundTrips) {
  VtpmCounterBinding binding;
  binding.counter_id = 11;
  binding.counter_value = 1234567890123ULL;
  binding.tenant_tag = TenantTag("tenant-a");

  Result<VtpmCounterBinding> back = VtpmCounterBinding::Deserialize(binding.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == binding);
}

TEST(VtpmStateTest, StateRoundTrips) {
  VtpmState state = MakeState();
  Result<VtpmState> back = VtpmState::Deserialize(state.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().tenant, state.tenant);
  EXPECT_EQ(back.value().generation, state.generation);
  EXPECT_EQ(back.value().owner_auth, state.owner_auth);
  EXPECT_EQ(back.value().key_seed, state.key_seed);
  EXPECT_EQ(back.value().pcrs, state.pcrs);
  EXPECT_TRUE(back.value().binding == state.binding);
  EXPECT_EQ(back.value().extends, state.extends);
}

TEST(VtpmStateTest, FreshStateIsAllZeroPcrsGenerationZero) {
  VtpmState state = VtpmState::Fresh("t", Bytes(20, 0x01), Bytes(20, 0x02));
  EXPECT_EQ(state.generation, 0u);
  EXPECT_EQ(state.extends, 0u);
  for (const Bytes& pcr : state.pcrs) {
    EXPECT_EQ(pcr, Bytes(20, 0x00));
  }
  EXPECT_EQ(state.binding.tenant_tag, TenantTag("t"));
}

TEST(VtpmStateTest, TenantTagIsSha1OfName) {
  EXPECT_EQ(TenantTag("tenant-a"), Sha1::Digest(BytesOf("tenant-a")));
  EXPECT_NE(TenantTag("tenant-a"), TenantTag("tenant-b"));
}

TEST(VirtualTpmTest, ExtendMatchesHardwareSemantics) {
  VirtualTpm vt(MakeState());
  Bytes measurement = Sha1::Digest(BytesOf("module"));
  Bytes before = vt.PcrRead(2).value();
  ASSERT_TRUE(vt.Extend(2, measurement).ok());

  Bytes expected_input = before;
  expected_input.insert(expected_input.end(), measurement.begin(), measurement.end());
  EXPECT_EQ(vt.PcrRead(2).value(), Sha1::Digest(expected_input));
  EXPECT_EQ(vt.state().extends, MakeState().extends + 1);
}

TEST(VirtualTpmTest, ExtendRejectsOutOfRangeIndex) {
  VirtualTpm vt(MakeState());
  EXPECT_FALSE(vt.Extend(-1, Bytes(20, 0xaa)).ok());
  EXPECT_FALSE(vt.Extend(kNumVtpmPcrs, Bytes(20, 0xaa)).ok());
  EXPECT_FALSE(vt.PcrRead(kNumVtpmPcrs).ok());
}

TEST(VirtualTpmTest, CompositeDigestTracksTheBank) {
  VirtualTpm vt(MakeState());
  Bytes before = vt.CompositeDigest();
  ASSERT_TRUE(vt.Extend(0, Bytes(20, 0x55)).ok());
  EXPECT_NE(vt.CompositeDigest(), before);

  // Two instances with identical banks agree.
  VirtualTpm other(vt.state());
  EXPECT_EQ(other.CompositeDigest(), vt.CompositeDigest());
}

TEST(VirtualTpmTest, DeriveKeyIsDeterministicPerSeedAndLabel) {
  VirtualTpm vt(MakeState());
  EXPECT_EQ(vt.DeriveKey("storage"), vt.DeriveKey("storage"));
  EXPECT_NE(vt.DeriveKey("storage"), vt.DeriveKey("identity"));
  EXPECT_EQ(vt.DeriveKey("storage"),
            HmacSha1(MakeState().key_seed, BytesOf("storage")));

  VtpmState reseeded = MakeState();
  reseeded.key_seed = Sha1::Digest(BytesOf("other-seed"));
  EXPECT_NE(VirtualTpm(reseeded).DeriveKey("storage"), vt.DeriveKey("storage"));
}

TEST(VirtualTpmTest, OwnerAuthGateIsExact) {
  VirtualTpm vt(MakeState());
  EXPECT_TRUE(vt.CheckOwnerAuth(Sha1::Digest(BytesOf("auth"))));
  EXPECT_FALSE(vt.CheckOwnerAuth(Sha1::Digest(BytesOf("wrong"))));
  EXPECT_FALSE(vt.CheckOwnerAuth(Bytes()));
}

}  // namespace
}  // namespace vtpm
}  // namespace flicker
