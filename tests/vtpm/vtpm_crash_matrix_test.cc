// The vTPM crash matrix: sweep a power loss over every durability boundary
// of a multi-tenant vTPM workload (create / extend / snapshot / evict and
// the seal + counter protocol underneath) x both reset kinds, and assert
// the crash-consistency invariants after recovery:
//
//   A. RecoverAll succeeds: no tenant store fails closed, no tenant is
//      quarantined (there was no adversary, only a crash),
//   B. every pre-existing tenant loads to exactly one of its in-flight
//      snapshots - the pre-crash or post-crash generation, never torn,
//      never anything else,
//   C. a tenant whose create was interrupted either exists fully or was
//      rolled back to nonexistence (and its name is reusable),
//   D. service resumes: extends, snapshots, and a mux quote all work.
//
// The fixture dumps the crash-point census alongside the TPM transport
// trace on failure, and the binary writes the census file the verify.sh
// coverage gate consumes.

#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"
#include "src/vtpm/vtpm_mux.h"

namespace flicker {
namespace vtpm {
namespace {

enum class ResetKind { kPowerCut, kWarmReset };

const char* ResetKindName(ResetKind kind) {
  return kind == ResetKind::kPowerCut ? "PowerCut" : "WarmReset";
}

struct Rig {
  std::unique_ptr<FlickerPlatform> platform;
  std::unique_ptr<VtpmManager> manager;
  std::unique_ptr<VtpmMultiplexer> mux;
  // Composites each pre-existing tenant may legally serve after recovery:
  // its last pre-workload snapshot or its post-workload snapshot.
  Bytes alice_pre, alice_post, bob_pre, bob_post;
};

Bytes Auth(const std::string& tenant) { return Sha1::Digest(BytesOf("auth-" + tenant)); }

class VtpmCrashMatrixTest : public ::testing::Test {
 protected:
  // Setup runs without a FaultInjectionScope: its crash points neither fire
  // nor pollute the recording.
  static std::unique_ptr<Rig> MakeRig() {
    auto rig = std::make_unique<Rig>();
    rig->platform = std::make_unique<FlickerPlatform>();
    Bytes owner_secret = Sha1::Digest(BytesOf("owner"));
    EXPECT_TRUE(rig->platform->tpm()->TakeOwnership(owner_secret).ok());

    VtpmManagerConfig config;
    config.max_resident = 1;  // Tiny working set: loads force evictions.
    config.owner_secret = owner_secret;
    config.blob_auth = Sha1::Digest(BytesOf("blob"));
    config.release_pcr17 = rig->platform->tpm()->PcrRead(kSkinitPcr).value();
    rig->manager = std::make_unique<VtpmManager>(rig->platform->machine(), config);
    rig->mux = std::make_unique<VtpmMultiplexer>(rig->manager.get(), rig->platform->tqd(),
                                                 VtpmMuxConfig());

    EXPECT_TRUE(rig->manager->CreateTenant("alice", Auth("alice")).ok());
    EXPECT_TRUE(rig->manager->Extend("alice", 0, Auth("alice"), Bytes(20, 0xa1)).ok());
    EXPECT_TRUE(rig->manager->SnapshotTenant("alice").ok());
    rig->alice_pre = rig->manager->ResidentTenant("alice").value()->CompositeDigest();

    EXPECT_TRUE(rig->manager->CreateTenant("bob", Auth("bob")).ok());
    EXPECT_TRUE(rig->manager->Extend("bob", 0, Auth("bob"), Bytes(20, 0xb1)).ok());
    EXPECT_TRUE(rig->manager->SnapshotTenant("bob").ok());
    rig->bob_pre = rig->manager->ResidentTenant("bob").value()->CompositeDigest();

    // The legal post-crash composites are computed from pure VtpmState
    // arithmetic (no hardware), mirroring what the workload will do.
    VirtualTpm alice_next(rig->manager->ResidentTenant("alice").value()->state());
    EXPECT_TRUE(alice_next.Extend(1, Bytes(20, 0xa2)).ok());
    rig->alice_post = alice_next.CompositeDigest();
    VirtualTpm bob_next(rig->manager->ResidentTenant("bob").value()->state());
    EXPECT_TRUE(bob_next.Extend(1, Bytes(20, 0xb2)).ok());
    rig->bob_post = bob_next.CompositeDigest();
    return rig;
  }

  // The deterministic workload every cell replays: extend + snapshot two
  // tenants (forcing LRU evictions at max_resident=1), explicit evict, and
  // a mid-workload tenant creation. Throws PowerLossException when armed.
  static void RunWorkload(Rig* rig) {
    (void)rig->manager->Extend("alice", 1, Auth("alice"), Bytes(20, 0xa2));
    (void)rig->manager->SnapshotTenant("alice");
    (void)rig->manager->Extend("bob", 1, Auth("bob"), Bytes(20, 0xb2));
    (void)rig->manager->SnapshotTenant("bob");
    (void)rig->manager->EvictTenant("bob");
    (void)rig->manager->CreateTenant("carol", Auth("carol"));
  }

  static void Reset(Rig* rig, ResetKind kind) {
    if (kind == ResetKind::kPowerCut) {
      rig->platform->machine()->PowerCut();
    } else {
      rig->platform->machine()->WarmReset();
    }
  }

  // Recovery runs OUTSIDE the fault scope (the cut already happened); its
  // own crash points are swept separately by the double-fault suite.
  static bool RecoverAndCheck(Rig* rig) {
    Result<TpmStartupReport> startup = rig->platform->tpm()->Startup(TpmStartupType::kClear);
    EXPECT_TRUE(startup.ok()) << startup.status().ToString();
    if (!startup.ok()) {
      return false;
    }
    rig->manager->OnPowerLoss();
    rig->mux->OnPowerLoss();

    // A. Crash-only recovery succeeds and quarantines nobody.
    Status recovered = rig->manager->RecoverAll();
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    if (!recovered.ok()) {
      return false;
    }
    EXPECT_FALSE(rig->manager->TenantQuarantined("alice"));
    EXPECT_FALSE(rig->manager->TenantQuarantined("bob"));

    // B. Each pre-existing tenant serves exactly one in-flight generation.
    for (const auto& [name, pre, post] :
         {std::tuple<const char*, Bytes*, Bytes*>{"alice", &rig->alice_pre, &rig->alice_post},
          std::tuple<const char*, Bytes*, Bytes*>{"bob", &rig->bob_pre, &rig->bob_post}}) {
      Result<VirtualTpm*> vt = rig->manager->ResidentTenant(name);
      EXPECT_TRUE(vt.ok()) << name << ": " << vt.status().ToString();
      if (!vt.ok()) {
        return false;
      }
      Bytes composite = vt.value()->CompositeDigest();
      EXPECT_TRUE(composite == *pre || composite == *post)
          << name << " serves a composite that is neither in-flight generation";
    }

    // C. The interrupted create either completed or rolled back cleanly.
    if (rig->manager->TenantExists("carol")) {
      EXPECT_TRUE(rig->manager->ResidentTenant("carol").ok());
    } else {
      EXPECT_TRUE(rig->manager->CreateTenant("carol", Auth("carol")).ok())
          << "rolled-back tenant name is not reusable";
    }

    // D. Service resumed end to end: extend, snapshot, and a mux quote.
    EXPECT_TRUE(rig->manager->Extend("alice", 2, Auth("alice"), Bytes(20, 0xa3)).ok());
    EXPECT_TRUE(rig->manager->SnapshotTenant("alice").ok());
    bool quoted = false;
    rig->mux->set_sink([&quoted](const VtpmQuoteCompletion& completion) {
      EXPECT_TRUE(completion.status.ok()) << completion.status.ToString();
      quoted = completion.status.ok();
    });
    EXPECT_TRUE(rig->mux->Submit("bob", Sha1::Digest(BytesOf("post-crash")), Auth("bob")).ok());
    rig->mux->PumpAll();
    EXPECT_TRUE(quoted);

    return !::testing::Test::HasFatalFailure();
  }

  std::vector<std::string> RecordHits() {
    std::unique_ptr<Rig> rig = MakeRig();
    FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
    scheduler->ClearHits();
    FaultInjectionScope scope(scheduler);
    RunWorkload(rig.get());
    return scheduler->hits();
  }
};

TEST_F(VtpmCrashMatrixTest, WorkloadCoversTheVtpmCrashSurface) {
  std::vector<std::string> hits = RecordHits();
  std::set<std::string> distinct(hits.begin(), hits.end());
  for (const char* point :
       {"vtpm.create.provisioned", "vtpm.extend.applied", "vtpm.snapshot.serialized",
        "vtpm.snapshot.sealed", "vtpm.evict.dropped", "seal.staged", "seal.incremented",
        "seal.committed", "tpm.counter.journal", "tpm.counter.staged", "tpm.counter.commit"}) {
    EXPECT_TRUE(distinct.count(point)) << "workload never reached " << point;
  }
}

TEST_F(VtpmCrashMatrixTest, EveryCrashPointTimesEveryResetKindRecovers) {
  const std::vector<std::string> hits = RecordHits();
  ASSERT_GE(hits.size(), 11u);

  for (ResetKind kind : {ResetKind::kPowerCut, ResetKind::kWarmReset}) {
    for (size_t i = 1; i <= hits.size(); ++i) {
      std::unique_ptr<Rig> rig = MakeRig();
      FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
      CrashPlan plan;
      plan.crash_at_hit = i;
      scheduler->Arm(plan);
      bool crashed = false;
      std::string point;
      {
        FaultInjectionScope scope(scheduler);
        try {
          RunWorkload(rig.get());
        } catch (const PowerLossException& e) {
          crashed = true;
          point = e.point();
        }
      }
      ASSERT_TRUE(crashed) << "hit " << i << " never fired (recorded " << hits[i - 1] << ")";
      EXPECT_EQ(point, hits[i - 1]) << "replay diverged from the recording at hit " << i;

      Reset(rig.get(), kind);
      bool ok = RecoverAndCheck(rig.get());
      if (!ok || ::testing::Test::HasFailure()) {
        std::cerr << "vtpm crash matrix cell failed: crash at hit " << i << " ('" << point
                  << "') + " << ResetKindName(kind) << "\n";
        scheduler->DumpCrashPoints(std::cerr);
        rig->platform->machine()->tpm_transport()->DumpTrace(std::cerr);
        FAIL() << "invariant violated at '" << point << "' x " << ResetKindName(kind);
      }
    }
  }
}

// Writes this binary's crash-point census for the verify.sh coverage gate.
class CensusEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { ASSERT_TRUE(WriteCrashPointCensus("vtpm_crash_matrix_test")); }
};
::testing::Environment* const census_env =
    ::testing::AddGlobalTestEnvironment(new CensusEnvironment);

}  // namespace
}  // namespace vtpm
}  // namespace flicker
