// Double-fault recovery: power is cut a SECOND time while the first crash
// is being recovered - during the sealed store's recovery classification or
// the TPM's NV write-ahead journal replay. Recovery must be idempotent: the
// third attempt converges to a clean state (or fails closed), never serves
// torn or stale data, and the vTPM manager's tenants come back.
//
// The FaultScheduler disarms after one crash, so each cell arms a fresh
// plan for the recovery pass, scoped around the recovery calls only.

#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"
#include "src/vtpm/vtpm_manager.h"

namespace flicker {
namespace vtpm {
namespace {

Bytes Auth(const std::string& tenant) { return Sha1::Digest(BytesOf("auth-" + tenant)); }

struct Rig {
  std::unique_ptr<FlickerPlatform> platform;
  std::unique_ptr<VtpmManager> manager;
  Bytes pre, post;  // The two composites alice may legally serve.
};

std::unique_ptr<Rig> MakeRig() {
  auto rig = std::make_unique<Rig>();
  rig->platform = std::make_unique<FlickerPlatform>();
  Bytes owner_secret = Sha1::Digest(BytesOf("owner"));
  EXPECT_TRUE(rig->platform->tpm()->TakeOwnership(owner_secret).ok());

  VtpmManagerConfig config;
  config.owner_secret = owner_secret;
  config.blob_auth = Sha1::Digest(BytesOf("blob"));
  config.release_pcr17 = rig->platform->tpm()->PcrRead(kSkinitPcr).value();
  rig->manager = std::make_unique<VtpmManager>(rig->platform->machine(), config);

  EXPECT_TRUE(rig->manager->CreateTenant("alice", Auth("alice")).ok());
  EXPECT_TRUE(rig->manager->Extend("alice", 0, Auth("alice"), Bytes(20, 0x01)).ok());
  EXPECT_TRUE(rig->manager->SnapshotTenant("alice").ok());
  rig->pre = rig->manager->ResidentTenant("alice").value()->CompositeDigest();

  VirtualTpm next(rig->manager->ResidentTenant("alice").value()->state());
  EXPECT_TRUE(next.Extend(1, Bytes(20, 0x02)).ok());
  rig->post = next.CompositeDigest();
  return rig;
}

// Cut power at the `first_hit`-th crash point of an extend+snapshot, then
// cut power AGAIN at every crash point the recovery path itself executes,
// then recover for real and check alice converged.
void SweepDoubleFaults(size_t first_hit, int* recovery_cells) {
  // Recording pass for the recovery surface of this particular first crash.
  std::vector<std::string> recovery_hits;
  {
    std::unique_ptr<Rig> rig = MakeRig();
    FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
    CrashPlan plan;
    plan.crash_at_hit = first_hit;
    scheduler->Arm(plan);
    bool crashed = false;
    {
      FaultInjectionScope scope(scheduler);
      try {
        (void)rig->manager->Extend("alice", 1, Auth("alice"), Bytes(20, 0x02));
        (void)rig->manager->SnapshotTenant("alice");
      } catch (const PowerLossException&) {
        crashed = true;
      }
    }
    if (!crashed) {
      return;  // The workload has fewer crash points than first_hit.
    }
    rig->platform->machine()->PowerCut();
    scheduler->ClearHits();
    // Record with the scope active but no plan armed: Startup's journal
    // replay and RecoverAll's store classification both run inside it.
    FaultInjectionScope scope(scheduler);
    ASSERT_TRUE(rig->platform->tpm()->Startup(TpmStartupType::kClear).ok());
    rig->manager->OnPowerLoss();
    ASSERT_TRUE(rig->manager->RecoverAll().ok());
    recovery_hits = scheduler->hits();
  }

  // Replay: same first crash, second crash at each recovery hit.
  for (size_t second = 1; second <= recovery_hits.size(); ++second) {
    std::unique_ptr<Rig> rig = MakeRig();
    FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
    CrashPlan plan;
    plan.crash_at_hit = first_hit;
    scheduler->Arm(plan);
    {
      FaultInjectionScope scope(scheduler);
      try {
        (void)rig->manager->Extend("alice", 1, Auth("alice"), Bytes(20, 0x02));
        (void)rig->manager->SnapshotTenant("alice");
      } catch (const PowerLossException&) {
      }
    }
    rig->platform->machine()->PowerCut();

    // Second cut, mid-recovery.
    CrashPlan second_plan;
    second_plan.crash_at_hit = second;
    scheduler->Arm(second_plan);
    bool double_faulted = false;
    {
      FaultInjectionScope scope(scheduler);
      try {
        ASSERT_TRUE(rig->platform->tpm()->Startup(TpmStartupType::kClear).ok());
        rig->manager->OnPowerLoss();
        (void)rig->manager->RecoverAll();
      } catch (const PowerLossException&) {
        double_faulted = true;
      }
    }
    if (!double_faulted) {
      continue;  // This recovery pass had fewer hits (already-clean store).
    }
    ++*recovery_cells;
    rig->platform->machine()->PowerCut();

    // Third attempt, unarmed: must converge.
    ASSERT_TRUE(rig->platform->tpm()->Startup(TpmStartupType::kClear).ok());
    rig->manager->OnPowerLoss();
    Status final_recovery = rig->manager->RecoverAll();
    ASSERT_TRUE(final_recovery.ok())
        << "first crash at hit " << first_hit << ", second at recovery hit " << second << " ('"
        << recovery_hits[second - 1] << "'): " << final_recovery.ToString();

    Result<VirtualTpm*> vt = rig->manager->ResidentTenant("alice");
    if (!vt.ok()) {
      // Only a fail-closed classification may refuse service; torn or
      // stale data may not hide behind an error.
      std::cerr << "double-fault cell: first=" << first_hit << " second='"
                << recovery_hits[second - 1] << "' -> " << vt.status().ToString() << "\n";
      scheduler->DumpCrashPoints(std::cerr);
      FAIL() << "tenant neither loads nor failed closed: " << vt.status().ToString();
    }
    Bytes composite = vt.value()->CompositeDigest();
    EXPECT_TRUE(composite == rig->pre || composite == rig->post)
        << "double fault served a torn generation (first=" << first_hit << ", second='"
        << recovery_hits[second - 1] << "')";
    // Service resumes fully.
    EXPECT_TRUE(rig->manager->Extend("alice", 2, Auth("alice"), Bytes(20, 0x03)).ok());
    EXPECT_TRUE(rig->manager->SnapshotTenant("alice").ok());
  }
}

TEST(VtpmDoubleFaultTest, SecondCutDuringRecoveryStillConverges) {
  // Enumerate the extend+snapshot crash surface once to bound the sweep.
  size_t workload_hits = 0;
  {
    std::unique_ptr<Rig> rig = MakeRig();
    FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
    scheduler->ClearHits();
    FaultInjectionScope scope(scheduler);
    (void)rig->manager->Extend("alice", 1, Auth("alice"), Bytes(20, 0x02));
    (void)rig->manager->SnapshotTenant("alice");
    workload_hits = scheduler->hits().size();
  }
  ASSERT_GE(workload_hits, 5u);

  int recovery_cells = 0;
  for (size_t first = 1; first <= workload_hits; ++first) {
    SweepDoubleFaults(first, &recovery_cells);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // The sweep must actually have exercised double faults, including the
  // journal-replay and store-recovery boundaries.
  EXPECT_GT(recovery_cells, 0) << "no recovery pass ever hit a crash point";
}

TEST(VtpmDoubleFaultTest, RecoveryCrashSurfaceIncludesReplayAndClassification) {
  // A crash at the counter journal's commit mark leaves the richest
  // recovery work: the committed journal entry must be rolled forward at
  // startup (tpm.journal.replay), which lands the increment and makes the
  // staged snapshot promotable (seal.recover.promote). Assert the recovery
  // pass actually executes the instrumented boundaries, so the sweep above
  // cannot silently degenerate.
  std::unique_ptr<Rig> rig = MakeRig();
  FaultScheduler* scheduler = rig->platform->machine()->fault_scheduler();
  CrashPlan plan;
  plan.only_point = "tpm.counter.commit";
  plan.crash_at_hit = 1;
  scheduler->Arm(plan);
  bool crashed = false;
  {
    FaultInjectionScope scope(scheduler);
    try {
      (void)rig->manager->SnapshotTenant("alice");
    } catch (const PowerLossException&) {
      crashed = true;
    }
  }
  ASSERT_TRUE(crashed);
  rig->platform->machine()->PowerCut();

  scheduler->ClearHits();
  {
    FaultInjectionScope scope(scheduler);
    ASSERT_TRUE(rig->platform->tpm()->Startup(TpmStartupType::kClear).ok());
    rig->manager->OnPowerLoss();
    ASSERT_TRUE(rig->manager->RecoverAll().ok());
  }
  std::set<std::string> distinct(scheduler->hits().begin(), scheduler->hits().end());
  EXPECT_TRUE(distinct.count("tpm.journal.replay")) << "journal replay not instrumented";
  EXPECT_TRUE(distinct.count("seal.recover.promote")) << "roll-forward not instrumented";
  EXPECT_TRUE(distinct.count("vtpm.recover.restored")) << "manager recovery not instrumented";
}

// Writes this binary's crash-point census for the verify.sh coverage gate
// (this suite is the one that executes the recovery-path points).
class CensusEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { ASSERT_TRUE(WriteCrashPointCensus("vtpm_double_fault_test")); }
};
::testing::Environment* const census_env =
    ::testing::AddGlobalTestEnvironment(new CensusEnvironment);

}  // namespace
}  // namespace vtpm
}  // namespace flicker
