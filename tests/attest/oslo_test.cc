// OSLO-style dynamic-root-of-trust boot: the BIOS drops out of the TCB.

#include "src/attest/oslo.h"

#include <gtest/gtest.h>

#include "src/slb/slb_layout.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

class OsloTest : public ::testing::Test {
 protected:
  OsloTest() : machine_(MachineConfig{}), kernel_(&machine_) {
    machine_.Reboot();  // Boot-time scenario: dynamic PCRs at -1.
  }

  Machine machine_;
  OsKernel kernel_;
};

TEST_F(OsloTest, SecureBootProducesVerifiableChain) {
  Result<OsloBootReport> report = OsloBootLoader::SecureBoot(&machine_, kernel_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The chain is exactly loader-then-kernel, predictable by any verifier
  // from public values.
  EXPECT_EQ(report.value().loader_measurement, OsloBootLoader::LoaderMeasurement());
  EXPECT_EQ(report.value().kernel_measurement, kernel_.pristine_measurement());
  EXPECT_EQ(report.value().pcr17_after_boot,
            OsloBootLoader::ExpectedBootPcr17(kernel_.pristine_measurement()));

  // The machine is usable afterwards: OS running, interrupts on, DEV clear.
  EXPECT_FALSE(machine_.in_secure_session());
  EXPECT_TRUE(machine_.bsp()->interrupts_enabled);
  EXPECT_EQ(machine_.cpu(1)->state, CpuState::kRunning);
}

TEST_F(OsloTest, TamperedKernelChangesChain) {
  ASSERT_TRUE(kernel_.InstallSyscallHook(3).ok());
  Result<OsloBootReport> report = OsloBootLoader::SecureBoot(&machine_, kernel_);
  ASSERT_TRUE(report.ok());
  // The boot succeeds (OSLO measures, it does not judge), but the chain no
  // longer matches the known-good kernel - the verifier notices.
  EXPECT_NE(report.value().pcr17_after_boot,
            OsloBootLoader::ExpectedBootPcr17(kernel_.pristine_measurement()));
  EXPECT_EQ(report.value().pcr17_after_boot,
            OsloBootLoader::ExpectedBootPcr17(report.value().kernel_measurement));
}

TEST_F(OsloTest, BiosCannotForgeTheChain) {
  // A malicious BIOS runs before SKINIT and extends PCR 17 arbitrarily -
  // irrelevant, because SKINIT resets the dynamic PCRs. (On the -1 reboot
  // value, software extends cannot reach the chain either.)
  ASSERT_TRUE(machine_.tpm()->PcrExtend(kSkinitPcr, Bytes(kPcrSize, 0x66)).ok());
  Result<OsloBootReport> report = OsloBootLoader::SecureBoot(&machine_, kernel_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().pcr17_after_boot,
            OsloBootLoader::ExpectedBootPcr17(kernel_.pristine_measurement()));
}

TEST_F(OsloTest, BootTimingIsLoaderSizedSkinitPlusKernelHash) {
  Result<OsloBootReport> report = OsloBootLoader::SecureBoot(&machine_, kernel_);
  ASSERT_TRUE(report.ok());
  // 6 KB loader at ~2.76 ms/KB.
  EXPECT_NEAR(report.value().skinit_ms,
              machine_.timing().SkinitMillis(OsloBootLoader::kLoaderImageBytes), 0.01);
  // ~2.17 MB kernel at ~90.9 MB/s, plus the PCR extend.
  EXPECT_GT(report.value().kernel_hash_ms, 20.0);
  EXPECT_LT(report.value().kernel_hash_ms, 30.0);
}

TEST_F(OsloTest, FlickerSessionsStillWorkAfterSecureBoot) {
  // OSLO boot and Flicker sessions share PCR 17 across SKINITs: a session
  // after boot resets the register, so boot-time and run-time attestations
  // are independent - each rooted in its own SKINIT.
  Result<OsloBootReport> boot = OsloBootLoader::SecureBoot(&machine_, kernel_);
  ASSERT_TRUE(boot.ok());
  Bytes boot_pcr = boot.value().pcr17_after_boot;

  // Launch a trivial SLB as a Flicker session would.
  for (int cpu = 1; cpu < machine_.num_cpus(); ++cpu) {
    machine_.cpu(cpu)->state = CpuState::kIdle;
    ASSERT_TRUE(machine_.apic()->SendInitIpi(cpu).ok());
  }
  Bytes image(kSlbRegionSize, 0);
  image[0] = 0x00;
  image[1] = 0x10;
  ASSERT_TRUE(machine_.memory()->Write(kSlbFixedBase, image).ok());
  ASSERT_TRUE(machine_.Skinit(0, kSlbFixedBase).ok());
  EXPECT_NE(machine_.tpm()->PcrRead(kSkinitPcr).value(), boot_pcr);
  ASSERT_TRUE(machine_.ExitSecureMode(0, kernel_.cr3()).ok());
}

TEST(OsloLoaderTest, ImageIsDeterministicAndSized) {
  EXPECT_EQ(OsloBootLoader::LoaderImage(), OsloBootLoader::LoaderImage());
  EXPECT_EQ(OsloBootLoader::LoaderImage().size(), kSlbRegionSize);
  EXPECT_EQ(OsloBootLoader::LoaderMeasurement().size(), 20u);
  // OSLO is bigger than Flicker's SLB core but still tiny (§8).
  EXPECT_GT(OsloBootLoader::kLoaderLinesOfCode, 250);
  EXPECT_LT(OsloBootLoader::kLoaderLinesOfCode, 2000);
}

}  // namespace
}  // namespace flicker
