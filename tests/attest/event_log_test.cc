// The untrusted event log: serialization, expectation reconstruction, and
// end-to-end use against a real session quote.

#include "src/attest/event_log.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/attest/privacy_ca.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

TEST(EventLogTest, SerializationRoundTrip) {
  FlickerEventLog log;
  log.pal_name = "hello-world";
  log.claimed_measurement = Sha1::Digest(BytesOf("measurement"));
  log.inputs = BytesOf("in");
  log.outputs = BytesOf("out");
  log.nonce = BytesOf("nonce");
  log.pal_extends = {Sha1::Digest(BytesOf("e1")), Sha1::Digest(BytesOf("e2"))};

  Result<FlickerEventLog> back = FlickerEventLog::Deserialize(log.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().pal_name, log.pal_name);
  EXPECT_EQ(back.value().claimed_measurement, log.claimed_measurement);
  EXPECT_EQ(back.value().inputs, log.inputs);
  EXPECT_EQ(back.value().outputs, log.outputs);
  EXPECT_EQ(back.value().nonce, log.nonce);
  EXPECT_EQ(back.value().pal_extends, log.pal_extends);
}

TEST(EventLogTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(FlickerEventLog::Deserialize(Bytes(3, 1)).ok());
  EXPECT_FALSE(FlickerEventLog::Deserialize(BytesOf("nonsense data here")).ok());
}

TEST(EventLogTest, ExpectationRejectsWrongPalClaim) {
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>()).take();
  FlickerEventLog log;
  log.pal_name = "hello-world";
  log.claimed_measurement = Sha1::Digest(BytesOf("some other PAL"));
  Result<SessionExpectation> expectation = ExpectationFromLog(log, binary);
  ASSERT_FALSE(expectation.ok());
  EXPECT_EQ(expectation.status().code(), StatusCode::kIntegrityFailure);
}

TEST(EventLogTest, EndToEndVerificationFromLogOnly) {
  // The verifier receives nothing but the untrusted log and the quote; all
  // session facts flow through the log.
  FlickerPlatform platform;
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>()).take();
  Bytes nonce = Sha1::Digest(BytesOf("log-nonce"));

  SlbCoreOptions options;
  options.nonce = nonce;
  Result<FlickerSessionResult> session =
      platform.ExecuteSession(binary, BytesOf("some input"), options);
  ASSERT_TRUE(session.ok());

  // Challenged party assembles the log.
  FlickerEventLog log;
  log.pal_name = binary.pal->name();
  log.claimed_measurement = binary.identity();
  log.inputs = BytesOf("some input");
  log.outputs = session.value().outputs();
  log.nonce = nonce;
  Bytes wire = log.Serialize();

  Result<AttestationResponse> response =
      platform.tqd()->HandleChallenge(nonce, PcrSelection({kSkinitPcr}));
  ASSERT_TRUE(response.ok());
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "host");

  // Verifier side: parse the log, build the expectation, verify.
  Result<FlickerEventLog> received = FlickerEventLog::Deserialize(wire);
  ASSERT_TRUE(received.ok());
  Result<SessionExpectation> expectation = ExpectationFromLog(received.value(), binary);
  ASSERT_TRUE(expectation.ok());
  EXPECT_TRUE(
      VerifyAttestation(expectation.value(), response.value(), cert, ca.public_key(), nonce)
          .ok());

  // A lying log (doctored outputs) is caught by the quote.
  FlickerEventLog lying = received.value();
  lying.outputs = BytesOf("Hello, forgery");
  Result<SessionExpectation> lying_expectation = ExpectationFromLog(lying, binary);
  ASSERT_TRUE(lying_expectation.ok());
  EXPECT_FALSE(VerifyAttestation(lying_expectation.value(), response.value(), cert,
                                 ca.public_key(), nonce)
                   .ok());
}

}  // namespace
}  // namespace flicker
