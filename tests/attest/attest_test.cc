// Attestation: Privacy CA certificates and full quote verification,
// including the attacks the verifier must catch.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/attest/privacy_ca.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

TEST(PrivacyCaTest, CertifyAndVerify) {
  PrivacyCa ca;
  Drbg rng(1);
  RsaPrivateKey aik = RsaGenerateKey(1024, &rng);
  AikCertificate cert = ca.Certify(aik.pub, "hp-dc5750");
  EXPECT_TRUE(PrivacyCa::Verify(ca.public_key(), cert));
}

TEST(PrivacyCaTest, RejectsTamperedCertificate) {
  PrivacyCa ca;
  Drbg rng(1);
  RsaPrivateKey aik = RsaGenerateKey(1024, &rng);
  AikCertificate cert = ca.Certify(aik.pub, "hp-dc5750");

  AikCertificate bad_label = cert;
  bad_label.tpm_label = "evil-machine";
  EXPECT_FALSE(PrivacyCa::Verify(ca.public_key(), bad_label));

  AikCertificate bad_key = cert;
  RsaPrivateKey other = RsaGenerateKey(1024, &rng);
  bad_key.aik_public = other.pub.Serialize();
  EXPECT_FALSE(PrivacyCa::Verify(ca.public_key(), bad_key));

  PrivacyCa other_ca(0xbad);
  EXPECT_FALSE(PrivacyCa::Verify(other_ca.public_key(), cert));
}

class AttestationTest : public ::testing::Test {
 protected:
  AttestationTest() {
    binary_ = std::make_unique<PalBinary>(BuildPal(std::make_shared<HelloWorldPal>()).take());
    cert_ = ca_.Certify(platform_.tpm()->aik_public(), "test-host");
    nonce_ = Sha1::Digest(BytesOf("challenge nonce"));
  }

  // Runs a session and collects the attestation.
  void RunSession() {
    SlbCoreOptions options;
    options.nonce = nonce_;
    Result<FlickerSessionResult> session = platform_.ExecuteSession(*binary_, Bytes(), options);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value().ok());
    outputs_ = session.value().outputs();

    Result<AttestationResponse> response =
        platform_.tqd()->HandleChallenge(nonce_, PcrSelection({kSkinitPcr}));
    ASSERT_TRUE(response.ok());
    response_ = response.take();
  }

  SessionExpectation Expectation() {
    SessionExpectation expectation;
    expectation.binary = binary_.get();
    expectation.inputs = Bytes();
    expectation.outputs = outputs_;
    expectation.nonce = nonce_;
    return expectation;
  }

  FlickerPlatform platform_;
  PrivacyCa ca_;
  std::unique_ptr<PalBinary> binary_;
  AikCertificate cert_;
  Bytes nonce_;
  Bytes outputs_;
  AttestationResponse response_;
};

TEST_F(AttestationTest, ValidAttestationAccepted) {
  RunSession();
  EXPECT_TRUE(VerifyAttestation(Expectation(), response_, cert_, ca_.public_key(), nonce_).ok());
}

TEST_F(AttestationTest, WrongNonceRejected) {
  RunSession();
  Bytes other_nonce = Sha1::Digest(BytesOf("different"));
  Status st = VerifyAttestation(Expectation(), response_, cert_, ca_.public_key(), other_nonce);
  EXPECT_EQ(st.code(), StatusCode::kReplayDetected);
}

TEST_F(AttestationTest, ForgedOutputsRejected) {
  RunSession();
  SessionExpectation expectation = Expectation();
  expectation.outputs = BytesOf("Hello, forgery");
  Status st = VerifyAttestation(expectation, response_, cert_, ca_.public_key(), nonce_);
  EXPECT_EQ(st.code(), StatusCode::kIntegrityFailure);
}

TEST_F(AttestationTest, WrongPalRejected) {
  RunSession();
  class OtherPal : public HelloWorldPal {
   public:
    std::string code_version() const override { return "evil"; }
  };
  PalBinary other = BuildPal(std::make_shared<OtherPal>()).take();
  SessionExpectation expectation = Expectation();
  expectation.binary = &other;
  Status st = VerifyAttestation(expectation, response_, cert_, ca_.public_key(), nonce_);
  EXPECT_EQ(st.code(), StatusCode::kIntegrityFailure);
}

TEST_F(AttestationTest, TamperedSignatureRejected) {
  RunSession();
  response_.quote.signature[10] ^= 1;
  Status st = VerifyAttestation(Expectation(), response_, cert_, ca_.public_key(), nonce_);
  EXPECT_EQ(st.code(), StatusCode::kIntegrityFailure);
}

TEST_F(AttestationTest, SubstitutedAikRejected) {
  RunSession();
  // Attacker swaps in their own AIK (and even "certifies" it... with the
  // wrong CA).
  Drbg rng(3);
  RsaPrivateKey fake_aik = RsaGenerateKey(1024, &rng);
  response_.aik_public = fake_aik.pub.Serialize();
  Status st = VerifyAttestation(Expectation(), response_, cert_, ca_.public_key(), nonce_);
  EXPECT_EQ(st.code(), StatusCode::kIntegrityFailure);
}

TEST_F(AttestationTest, LiedAboutPcrValuesRejected) {
  RunSession();
  // The OS forges the reported PCR value; the signature no longer matches.
  response_.quote.pcr_values[0] = Bytes(kPcrSize, 0x42);
  Status st = VerifyAttestation(Expectation(), response_, cert_, ca_.public_key(), nonce_);
  EXPECT_EQ(st.code(), StatusCode::kIntegrityFailure);
}

TEST_F(AttestationTest, PostSessionExtendCannotImpersonatePal) {
  RunSession();
  // After the session the malicious OS extends PCR 17 with junk and
  // re-quotes: the chain no longer matches.
  ASSERT_TRUE(platform_.tpm()->PcrExtend(kSkinitPcr, Bytes(kPcrSize, 0x66)).ok());
  Result<AttestationResponse> re_quote =
      platform_.tqd()->HandleChallenge(nonce_, PcrSelection({kSkinitPcr}));
  ASSERT_TRUE(re_quote.ok());
  Status st =
      VerifyAttestation(Expectation(), re_quote.value(), cert_, ca_.public_key(), nonce_);
  EXPECT_EQ(st.code(), StatusCode::kIntegrityFailure);
}

TEST_F(AttestationTest, QuoteWithoutSkinitRejected) {
  // No session ever ran: PCR 17 is -1 (reboot value). The verifier's chain
  // can never match.
  Result<AttestationResponse> response =
      platform_.tqd()->HandleChallenge(nonce_, PcrSelection({kSkinitPcr}));
  ASSERT_TRUE(response.ok());
  outputs_ = BytesOf("Hello, world");
  Status st = VerifyAttestation(Expectation(), response.value(), cert_, ca_.public_key(), nonce_);
  EXPECT_EQ(st.code(), StatusCode::kIntegrityFailure);
}

TEST_F(AttestationTest, QuoteMissingPcr17Rejected) {
  RunSession();
  Result<AttestationResponse> response =
      platform_.tqd()->HandleChallenge(nonce_, PcrSelection({18}));
  ASSERT_TRUE(response.ok());
  Status st = VerifyAttestation(Expectation(), response.value(), cert_, ca_.public_key(), nonce_);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(AttestationTest, CorruptAikSerializationRejected) {
  RunSession();
  response_.aik_public = BytesOf("not a key");
  cert_.aik_public = response_.aik_public;
  // Re-sign the cert so the chain check passes and deserialization is what
  // fails: use a fresh CA to certify garbage.
  PrivacyCa ca2(0x77);
  AikCertificate cert2;
  cert2.aik_public = response_.aik_public;
  cert2.tpm_label = "x";
  cert2 = ca2.Certify(platform_.tpm()->aik_public(), "x");
  cert2.aik_public = response_.aik_public;
  // Signature now invalid -> integrity failure path also acceptable.
  Status st = VerifyAttestation(Expectation(), response_, cert2, ca2.public_key(), nonce_);
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace flicker
