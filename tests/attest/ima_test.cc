// The IMA-style trusted-boot baseline and its comparison properties against
// Flicker's fine-grained attestation.

#include "src/attest/ima.h"

#include <gtest/gtest.h>

#include "src/crypto/sha1.h"

namespace flicker {
namespace {

class ImaTest : public ::testing::Test {
 protected:
  ImaTest() : machine_(MachineConfig{}), ima_(&machine_) {}

  // Boots a stack and records the known-good database as it goes.
  void BootCleanStack() {
    for (const char* component :
         {"bios", "bootloader", "kernel-2.6.20", "libc-2.5", "sshd-4.3p2", "apache-2.2"}) {
      Bytes content = BytesOf(std::string("content-of-") + component);
      ASSERT_TRUE(ima_.MeasureEvent(component, content).ok());
      known_good_.insert(ToHex(Sha1::Digest(content)));
    }
  }

  Machine machine_;
  ImaSystem ima_;
  std::set<std::string> known_good_;
  Bytes nonce_ = Sha1::Digest(BytesOf("ima-nonce"));
};

TEST_F(ImaTest, CleanBootVerifies) {
  BootCleanStack();
  Result<ImaAttestation> attestation = ima_.Attest(nonce_);
  ASSERT_TRUE(attestation.ok());
  ImaVerdict verdict =
      VerifyImaAttestation(attestation.value(), machine_.tpm()->aik_public(), known_good_, nonce_);
  EXPECT_TRUE(verdict.quote_signature_valid);
  EXPECT_TRUE(verdict.log_matches_pcr);
  EXPECT_EQ(verdict.entries_unknown, 0u);
  EXPECT_TRUE(verdict.Trustworthy());
  EXPECT_EQ(verdict.entries_total, 6u);
}

TEST_F(ImaTest, SingleUnknownEntrySpoilsTheVerdict) {
  BootCleanStack();
  // The user updates one application the verifier has no digest for: the
  // whole attestation becomes unverifiable - Flicker's core criticism of
  // coarse attestation (§8).
  ASSERT_TRUE(ima_.MeasureEvent("firefox-2.0-nightly", BytesOf("new build")).ok());
  Result<ImaAttestation> attestation = ima_.Attest(nonce_);
  ASSERT_TRUE(attestation.ok());
  ImaVerdict verdict =
      VerifyImaAttestation(attestation.value(), machine_.tpm()->aik_public(), known_good_, nonce_);
  EXPECT_TRUE(verdict.quote_signature_valid);
  EXPECT_TRUE(verdict.log_matches_pcr);
  EXPECT_EQ(verdict.entries_unknown, 1u);
  EXPECT_FALSE(verdict.Trustworthy());
  EXPECT_EQ(verdict.unknown_entries, std::vector<std::string>{"firefox-2.0-nightly"});
}

TEST_F(ImaTest, TamperedLogDetected) {
  BootCleanStack();
  Result<ImaAttestation> attestation = ima_.Attest(nonce_);
  ASSERT_TRUE(attestation.ok());
  // The OS doctors the log to hide a measured rootkit module.
  ImaAttestation doctored = attestation.value();
  doctored.log.pop_back();
  ImaVerdict verdict =
      VerifyImaAttestation(doctored, machine_.tpm()->aik_public(), known_good_, nonce_);
  EXPECT_TRUE(verdict.quote_signature_valid);
  EXPECT_FALSE(verdict.log_matches_pcr);
  EXPECT_FALSE(verdict.Trustworthy());
}

TEST_F(ImaTest, CompromisedEarlyComponentTaintsEverything) {
  // A subverted bootloader: its own entry is unknown, and nothing measured
  // afterwards can be trusted even if it matches (the lack-of-isolation
  // critique: "a single compromised piece of code may compromise all
  // subsequent code").
  Bytes evil = BytesOf("evil bootloader");
  ASSERT_TRUE(ima_.MeasureEvent("bootloader", evil).ok());
  BootCleanStack();
  Result<ImaAttestation> attestation = ima_.Attest(nonce_);
  ASSERT_TRUE(attestation.ok());
  ImaVerdict verdict =
      VerifyImaAttestation(attestation.value(), machine_.tpm()->aik_public(), known_good_, nonce_);
  EXPECT_EQ(verdict.entries_unknown, 1u);
  EXPECT_FALSE(verdict.Trustworthy());
}

TEST_F(ImaTest, WrongNonceFailsClosed) {
  BootCleanStack();
  Result<ImaAttestation> attestation = ima_.Attest(nonce_);
  ASSERT_TRUE(attestation.ok());
  ImaVerdict verdict = VerifyImaAttestation(attestation.value(), machine_.tpm()->aik_public(),
                                            known_good_, Sha1::Digest(BytesOf("other")));
  EXPECT_FALSE(verdict.quote_signature_valid);
  EXPECT_FALSE(verdict.Trustworthy());
}

TEST_F(ImaTest, LogLeaksSoftwareInventory) {
  // The privacy half of the critique: the attestation necessarily reveals
  // the platform's full software list to any verifier.
  BootCleanStack();
  Result<ImaAttestation> attestation = ima_.Attest(nonce_);
  ASSERT_TRUE(attestation.ok());
  std::vector<std::string> revealed;
  for (const ImaEvent& event : attestation.value().log) {
    revealed.push_back(event.description);
  }
  EXPECT_NE(std::find(revealed.begin(), revealed.end(), "apache-2.2"), revealed.end());
  EXPECT_NE(std::find(revealed.begin(), revealed.end(), "sshd-4.3p2"), revealed.end());
}

TEST_F(ImaTest, StaticPcrSurvivesDynamicReset) {
  // SKINIT resets only PCRs 17-23; the IMA aggregate in PCR 10 is intact
  // afterwards, so trusted boot and Flicker coexist.
  BootCleanStack();
  Bytes before = machine_.tpm()->PcrRead(10).value();
  machine_.tpm()->hardware()->SkinitReset(Sha1::Digest(BytesOf("pal")));
  EXPECT_EQ(machine_.tpm()->PcrRead(10).value(), before);
}

}  // namespace
}  // namespace flicker
