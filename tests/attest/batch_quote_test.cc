// Merkle-aggregated batch quotes end to end: K challengers, one TPM quote,
// every challenger convinced by its own auth path - plus the attacks the
// verifier must catch (foreign slices, tampered paths, cross-batch replay).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/attest/privacy_ca.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/core/remote_attestation.h"
#include "src/crypto/merkle.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

class BatchQuoteTest : public ::testing::Test {
 protected:
  BatchQuoteTest() {
    binary_ = std::make_unique<PalBinary>(BuildPal(std::make_shared<HelloWorldPal>()).take());
    cert_ = ca_.Certify(platform_.tpm()->aik_public(), "test-host");
    session_nonce_ = Sha1::Digest(BytesOf("session nonce"));
  }

  // One Flicker session whose PCR 17 chain every challenger expects.
  void RunSession() {
    SlbCoreOptions options;
    options.nonce = session_nonce_;
    Result<FlickerSessionResult> session = platform_.ExecuteSession(*binary_, Bytes(), options);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value().ok());
    outputs_ = session.value().outputs();
  }

  // K distinct challenge nonces coalesced into one flushed batch.
  std::vector<BatchQuoteResponse> QuoteBatch(size_t challengers, const std::string& tag) {
    nonces_.clear();
    for (size_t i = 0; i < challengers; ++i) {
      nonces_.push_back(Sha1::Digest(BytesOf("challenge-" + tag + "-" + std::to_string(i))));
      EXPECT_TRUE(platform_.tqd()->SubmitBatched(nonces_.back(), PcrSelection({kSkinitPcr})).ok());
    }
    std::vector<BatchQuoteResponse> slices;
    EXPECT_TRUE(platform_.tqd()->FlushReadyBatches(&slices, /*force=*/true).ok());
    return slices;
  }

  SessionExpectation Expectation() {
    SessionExpectation expectation;
    expectation.binary = binary_.get();
    expectation.inputs = Bytes();
    expectation.outputs = outputs_;
    expectation.nonce = session_nonce_;
    return expectation;
  }

  FlickerPlatform platform_;
  PrivacyCa ca_;
  std::unique_ptr<PalBinary> binary_;
  AikCertificate cert_;
  Bytes session_nonce_;
  Bytes outputs_;
  std::vector<Bytes> nonces_;
};

TEST_F(BatchQuoteTest, OneQuoteConvincesEveryChallenger) {
  RunSession();
  std::vector<BatchQuoteResponse> slices = QuoteBatch(8, "a");
  ASSERT_EQ(slices.size(), 8u);
  EXPECT_EQ(platform_.tqd()->batch_quotes(), 1u);

  // All slices share the one signature, and each verifies for its own nonce.
  for (size_t i = 0; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].response.quote.signature, slices[0].response.quote.signature);
    EXPECT_EQ(slices[i].nonce, nonces_[i]);
    EXPECT_TRUE(
        VerifyBatchQuote(Expectation(), slices[i], cert_, ca_.public_key(), nonces_[i]).ok())
        << "challenger " << i;
  }

  // The quoted externalData is exactly the Merkle root over the batch.
  Bytes root = MerkleTree::Build(nonces_).value().root();
  EXPECT_EQ(slices[0].response.quote.nonce, root);
}

TEST_F(BatchQuoteTest, SingleChallengeDegenerateBatchVerifies) {
  RunSession();
  std::vector<BatchQuoteResponse> slices = QuoteBatch(1, "solo");
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_TRUE(slices[0].path.steps.empty());
  EXPECT_TRUE(VerifyBatchQuote(Expectation(), slices[0], cert_, ca_.public_key(), nonces_[0]).ok());
}

TEST_F(BatchQuoteTest, ForeignSliceRejected) {
  RunSession();
  std::vector<BatchQuoteResponse> slices = QuoteBatch(4, "a");
  ASSERT_EQ(slices.size(), 4u);
  // Challenger 0 is handed challenger 1's slice verbatim.
  Status st = VerifyBatchQuote(Expectation(), slices[1], cert_, ca_.public_key(), nonces_[0]);
  EXPECT_EQ(st.code(), StatusCode::kReplayDetected);
  // A slice relabelled with challenger 0's nonce but keeping challenger 1's
  // path folds to the wrong root.
  BatchQuoteResponse forged = slices[1];
  forged.nonce = nonces_[0];
  st = VerifyBatchQuote(Expectation(), forged, cert_, ca_.public_key(), nonces_[0]);
  EXPECT_EQ(st.code(), StatusCode::kReplayDetected);
}

TEST_F(BatchQuoteTest, TamperedPathRejected) {
  RunSession();
  std::vector<BatchQuoteResponse> slices = QuoteBatch(4, "a");
  ASSERT_EQ(slices.size(), 4u);
  BatchQuoteResponse tampered = slices[2];
  ASSERT_FALSE(tampered.path.steps.empty());
  tampered.path.steps[0].sibling[3] ^= 0x40;
  Status st = VerifyBatchQuote(Expectation(), tampered, cert_, ca_.public_key(), nonces_[2]);
  EXPECT_EQ(st.code(), StatusCode::kReplayDetected);
}

TEST_F(BatchQuoteTest, CrossBatchReplayRejected) {
  RunSession();
  std::vector<BatchQuoteResponse> first = QuoteBatch(3, "one");
  ASSERT_EQ(first.size(), 3u);
  Bytes old_nonce = nonces_[0];
  BatchQuoteResponse old_slice = first[0];

  // The same challenger issues a fresh nonce in a later batch; replaying the
  // old (genuine, once-valid) slice must fail.
  std::vector<BatchQuoteResponse> second = QuoteBatch(3, "two");
  ASSERT_EQ(second.size(), 3u);
  Bytes new_nonce = nonces_[0];
  Status st = VerifyBatchQuote(Expectation(), old_slice, cert_, ca_.public_key(), new_nonce);
  EXPECT_EQ(st.code(), StatusCode::kReplayDetected);

  // Grafting the old quote onto the new batch's path fails too: the path
  // folds to the new root, but the old quote signs the old root.
  BatchQuoteResponse grafted = second[0];
  grafted.response = old_slice.response;
  st = VerifyBatchQuote(Expectation(), grafted, cert_, ca_.public_key(), new_nonce);
  EXPECT_EQ(st.code(), StatusCode::kReplayDetected);

  // The old slice still verifies against its own old nonce - the replay
  // defence is nonce freshness, exactly as for single quotes.
  EXPECT_TRUE(VerifyBatchQuote(Expectation(), old_slice, cert_, ca_.public_key(), old_nonce).ok());
}

TEST_F(BatchQuoteTest, WireRoundTripAndCorruptionRejected) {
  RunSession();
  std::vector<BatchQuoteResponse> slices = QuoteBatch(5, "wire");
  ASSERT_EQ(slices.size(), 5u);

  Bytes wire = SerializeBatchQuoteResponse(slices[3]);
  Result<BatchQuoteResponse> round = DeserializeBatchQuoteResponse(wire);
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(
      VerifyBatchQuote(Expectation(), round.value(), cert_, ca_.public_key(), nonces_[3]).ok());

  Bytes truncated(wire.begin(), wire.end() - 3);
  EXPECT_FALSE(DeserializeBatchQuoteResponse(truncated).ok());

  Bytes oversized(kMaxReplyWireBytes + 1, 0);
  EXPECT_FALSE(DeserializeBatchQuoteResponse(oversized).ok());
}

TEST_F(BatchQuoteTest, BatchedVerificationSharesOneRsaCheck) {
  RunSession();
  std::vector<BatchQuoteResponse> slices = QuoteBatch(6, "rsa");
  ASSERT_EQ(slices.size(), 6u);

  // The amortization claim behind VerifyBatchQuote: all six slices carry the
  // same TPM_QUOTE_INFO message, so one RsaVerifySha1Batch lane settles them
  // all. Build the signed messages and check the batch verifier agrees.
  Result<RsaPublicKey> aik = RsaPublicKey::Deserialize(slices[0].response.aik_public);
  ASSERT_TRUE(aik.ok());
  std::vector<Bytes> messages;
  std::vector<Bytes> signatures;
  for (const BatchQuoteResponse& slice : slices) {
    Bytes composite = RecomputeQuoteComposite(slice.response.quote);
    Bytes info = BytesOf("QUOT");
    info.insert(info.end(), composite.begin(), composite.end());
    info.insert(info.end(), slice.response.quote.nonce.begin(),
                slice.response.quote.nonce.end());
    messages.push_back(info);
    signatures.push_back(slice.response.quote.signature);
  }
  std::vector<bool> verdicts = RsaVerifySha1Batch(aik.value(), messages, signatures);
  for (size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_TRUE(verdicts[i]) << "slice " << i;
  }
}

}  // namespace
}  // namespace flicker
