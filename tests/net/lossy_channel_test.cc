#include "src/net/lossy_channel.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/bytes.h"

namespace flicker {
namespace {

Bytes Msg(const char* s) { return BytesOf(s); }

TEST(LossyChannelTest, TransportsBytesIntact) {
  SimClock clock;
  LossyChannel channel(&clock);
  channel.Send(NetEndpoint::kClient, Msg("hello server"));
  Bytes got;
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &got));
  EXPECT_EQ(got, Msg("hello server"));
  EXPECT_GT(clock.NowMillis(), 0.0);
  // Nothing for the client; nothing left for the server.
  EXPECT_FALSE(channel.Receive(NetEndpoint::kClient, &got));
  EXPECT_FALSE(channel.Receive(NetEndpoint::kServer, &got));
}

TEST(LossyChannelTest, DisabledScheduleMatchesChannelLatencies) {
  // A fault-free LossyChannel must charge byte-identical latencies to the
  // same-seeded Channel it replaces: one sample per message, no extras.
  SimClock plain_clock;
  Channel plain(&plain_clock, LatencyProfile(), 17);
  SimClock lossy_clock;
  LossyChannel lossy(&lossy_clock, LatencyProfile(), 17);
  for (int i = 0; i < 20; ++i) {
    plain.Deliver();
    lossy.Send(NetEndpoint::kClient, Msg("x"));
    Bytes got;
    ASSERT_TRUE(lossy.Receive(NetEndpoint::kServer, &got));
  }
  EXPECT_DOUBLE_EQ(plain_clock.NowMillis(), lossy_clock.NowMillis());
  EXPECT_EQ(lossy.messages_delivered(), 20u);
  EXPECT_EQ(lossy.faults_injected(), 0u);
}

TEST(LossyChannelTest, DropSwallowsDatagram) {
  SimClock clock;
  LossyChannel channel(&clock);
  NetFaultMix all_drop;
  all_drop.drop_bp = 10000;
  channel.set_fault_schedule(NetFaultSchedule(7, all_drop));
  channel.Send(NetEndpoint::kClient, Msg("lost"));
  Bytes got;
  EXPECT_FALSE(channel.Receive(NetEndpoint::kServer, &got));
  EXPECT_EQ(channel.faults_injected(), 1u);
}

TEST(LossyChannelTest, DuplicateDeliversTwice) {
  SimClock clock;
  LossyChannel channel(&clock);
  NetFaultMix all_dup;
  all_dup.duplicate_bp = 10000;
  channel.set_fault_schedule(NetFaultSchedule(7, all_dup));
  channel.Send(NetEndpoint::kClient, Msg("twice"));
  Bytes first;
  Bytes second;
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &first));
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &second));
  EXPECT_EQ(first, Msg("twice"));
  EXPECT_EQ(second, Msg("twice"));
  EXPECT_EQ(channel.messages_sent(), 1u);
  EXPECT_EQ(channel.messages_delivered(), 2u);
}

TEST(LossyChannelTest, CorruptGarblesWithoutResizing) {
  SimClock clock;
  LossyChannel channel(&clock);
  NetFaultMix all_corrupt;
  all_corrupt.corrupt_bp = 10000;
  channel.set_fault_schedule(NetFaultSchedule(7, all_corrupt));
  Bytes original = Msg("payload-to-garble");
  channel.Send(NetEndpoint::kClient, original);
  Bytes got;
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &got));
  EXPECT_EQ(got.size(), original.size());
  EXPECT_NE(got, original);
}

TEST(LossyChannelTest, DelayAddsConfiguredLatency) {
  SimClock fast_clock;
  LossyChannel fast(&fast_clock, LatencyProfile(), 17);
  SimClock slow_clock;
  LossyChannel slow(&slow_clock, LatencyProfile(), 17);
  NetFaultMix all_delay;
  all_delay.delay_bp = 10000;
  all_delay.delay_ms = 40.0;
  slow.set_fault_schedule(NetFaultSchedule(7, all_delay));

  Bytes got;
  fast.Send(NetEndpoint::kClient, Msg("x"));
  ASSERT_TRUE(fast.Receive(NetEndpoint::kServer, &got));
  slow.Send(NetEndpoint::kClient, Msg("x"));
  ASSERT_TRUE(slow.Receive(NetEndpoint::kServer, &got));
  EXPECT_NEAR(slow_clock.NowMillis() - fast_clock.NowMillis(), 40.0, 1e-9);
}

TEST(LossyChannelTest, ReorderLetsLaterMessageOvertake) {
  SimClock clock;
  LossyChannel channel(&clock);
  // Reorder exactly message #1; message #2 sails through.
  NetFaultMix all_reorder;
  all_reorder.reorder_bp = 10000;
  all_reorder.reorder_ms = 50.0;
  channel.set_fault_schedule(NetFaultSchedule(7, all_reorder));
  channel.Send(NetEndpoint::kClient, Msg("first"));
  channel.set_fault_schedule(NetFaultSchedule());  // Second send clean.
  channel.Send(NetEndpoint::kClient, Msg("second"));
  Bytes got;
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &got));
  EXPECT_EQ(got, Msg("second"));
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &got));
  EXPECT_EQ(got, Msg("first"));
}

TEST(LossyChannelTest, PartitionWindowCutsTheWire) {
  SimClock clock;
  LossyChannel channel(&clock);
  // Messages 1 and 2 fall inside the partition; message 3 crosses.
  channel.set_fault_schedule(NetFaultSchedule(7, NetFaultMix{}, {{1, 3}}));
  channel.Send(NetEndpoint::kClient, Msg("one"));
  channel.Send(NetEndpoint::kServer, Msg("two"));
  channel.Send(NetEndpoint::kClient, Msg("three"));
  Bytes got;
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &got));
  EXPECT_EQ(got, Msg("three"));
  EXPECT_FALSE(channel.Receive(NetEndpoint::kServer, &got));
  EXPECT_FALSE(channel.Receive(NetEndpoint::kClient, &got));
  EXPECT_EQ(channel.faults_injected(), 2u);
}

TEST(LossyChannelTest, ClassifyIsDeterministicPerSeed) {
  NetFaultMix mix;
  mix.drop_bp = 1000;
  mix.duplicate_bp = 500;
  mix.corrupt_bp = 500;
  NetFaultSchedule a(42, mix);
  NetFaultSchedule b(42, mix);
  NetFaultSchedule c(43, mix);
  bool differs = false;
  for (uint64_t i = 1; i <= 500; ++i) {
    EXPECT_EQ(a.Classify(i), b.Classify(i));
    if (a.Classify(i) != c.Classify(i)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(LossyChannelTest, MixRatesApproximateBasisPoints) {
  NetFaultMix mix;
  mix.drop_bp = 2000;  // 20%.
  NetFaultSchedule schedule(99, mix);
  int drops = 0;
  const int kTrials = 5000;
  for (uint64_t i = 1; i <= kTrials; ++i) {
    if (schedule.Classify(i) == NetFault::kDrop) {
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / kTrials, 0.20, 0.02);
}

TEST(LossyChannelTest, ReceiveUntilBurnsWaitOnTimeout) {
  SimClock clock;
  LossyChannel channel(&clock);
  Bytes got;
  EXPECT_FALSE(channel.ReceiveUntil(NetEndpoint::kClient, 25.0, &got));
  EXPECT_NEAR(clock.NowMillis(), 25.0, 1e-6);
}

TEST(LossyChannelTest, ReceiveUntilLeavesLateDatagramInFlight) {
  SimClock clock;
  LossyChannel channel(&clock);
  NetFaultMix all_delay;
  all_delay.delay_bp = 10000;
  all_delay.delay_ms = 100.0;
  channel.set_fault_schedule(NetFaultSchedule(7, all_delay));
  channel.Send(NetEndpoint::kClient, Msg("late"));
  Bytes got;
  EXPECT_FALSE(channel.ReceiveUntil(NetEndpoint::kServer, 10.0, &got));
  // Still in flight: an uncapped receive eventually gets it.
  ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &got));
  EXPECT_EQ(got, Msg("late"));
}

TEST(LossyChannelTest, TraceRecordsVerdictPerMessage) {
  SimClock clock;
  LossyChannel channel(&clock);
  NetFaultMix all_drop;
  all_drop.drop_bp = 10000;
  channel.set_fault_schedule(NetFaultSchedule(7, all_drop));
  channel.Send(NetEndpoint::kClient, Msg("gone"));
  channel.set_fault_schedule(NetFaultSchedule());
  channel.Send(NetEndpoint::kClient, Msg("fine"));
  std::vector<NetTraceEntry> trace = channel.TraceSnapshot(NetEndpoint::kServer);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].seq, 1u);
  EXPECT_EQ(trace[0].fault, NetFault::kDrop);
  EXPECT_EQ(trace[1].seq, 2u);
  EXPECT_EQ(trace[1].fault, NetFault::kNone);
  std::ostringstream os;
  channel.DumpTrace(os);
  EXPECT_NE(os.str().find("drop"), std::string::npos);
}

TEST(LossyChannelTest, TraceRingBoundsMemory) {
  SimClock clock;
  LossyChannel channel(&clock);
  Bytes got;
  for (int i = 0; i < 600; ++i) {
    channel.Send(NetEndpoint::kClient, Msg("m"));
    ASSERT_TRUE(channel.Receive(NetEndpoint::kServer, &got));
  }
  std::vector<NetTraceEntry> trace = channel.TraceSnapshot(NetEndpoint::kServer);
  ASSERT_EQ(trace.size(), LossyChannel::kTraceCapacity);
  // Oldest-first: the ring holds the most recent 256 sends.
  EXPECT_EQ(trace.front().seq, 600u - LossyChannel::kTraceCapacity + 1);
  EXPECT_EQ(trace.back().seq, 600u);
}

}  // namespace
}  // namespace flicker
