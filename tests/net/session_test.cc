#include "src/net/session.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/serde.h"

namespace flicker {
namespace {

// An echo handler that counts real invocations (duplicates served from the
// reply cache must not re-invoke it).
struct EchoHandler {
  int invocations = 0;
  SessionServer::Handler Fn() {
    return [this](const Bytes& request) -> Result<Bytes> {
      ++invocations;
      return request;
    };
  }
};

struct Rig {
  SimClock clock;
  LossyChannel channel{&clock};
  SessionClient client{&channel, NetEndpoint::kClient};
  SessionServer server{&channel, NetEndpoint::kServer};
  EchoHandler echo;

  SessionClient::PeerPump Pump() {
    return [this](double deadline_ms) { server.ServePending(deadline_ms, echo.Fn()); };
  }
};

TEST(SessionFrameTest, RoundTrips) {
  SessionFrame frame;
  frame.type = SessionFrame::kResponse;
  frame.seq = 42;
  frame.status_code = static_cast<uint8_t>(StatusCode::kPermissionDenied);
  frame.status_message = "no";
  frame.payload = BytesOf("data");
  Result<SessionFrame> parsed = SessionFrame::Deserialize(frame.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().type, SessionFrame::kResponse);
  EXPECT_EQ(parsed.value().seq, 42u);
  EXPECT_EQ(parsed.value().status_message, "no");
  EXPECT_EQ(parsed.value().payload, BytesOf("data"));
}

TEST(SessionFrameTest, RejectsHostileInput) {
  SessionFrame frame;
  frame.payload = BytesOf("x");
  Bytes good = frame.Serialize();

  // Truncations at every length must fail typed, never crash.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes truncated(good.begin(), good.begin() + static_cast<long>(cut));
    EXPECT_FALSE(SessionFrame::Deserialize(truncated).ok()) << "cut=" << cut;
  }
  // Bad magic.
  Bytes bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(SessionFrame::Deserialize(bad_magic).ok());
  // Unknown type.
  Bytes bad_type = good;
  bad_type[4] = 9;
  EXPECT_FALSE(SessionFrame::Deserialize(bad_type).ok());
  // Unknown status code.
  Bytes bad_status = good;
  bad_status[13] = 0xEE;
  EXPECT_FALSE(SessionFrame::Deserialize(bad_status).ok());
  // Trailing garbage.
  Bytes padded = good;
  padded.push_back(0);
  EXPECT_FALSE(SessionFrame::Deserialize(padded).ok());
  // Oversized.
  Bytes huge(kMaxSessionFrameBytes + 1, 0);
  EXPECT_FALSE(SessionFrame::Deserialize(huge).ok());
}

TEST(SessionFrameTest, EveryBitFlipIsDetected) {
  // The frame checksum must catch corruption anywhere - including inside the
  // payload, where magic/type/length checks are blind. A garbled frame is a
  // retransmit, never garbled bytes handed to the application.
  SessionFrame frame;
  frame.type = SessionFrame::kResponse;
  frame.seq = 7;
  frame.payload = BytesOf("verdict");
  Bytes good = frame.Serialize();
  for (size_t pos = 0; pos < good.size(); ++pos) {
    Bytes flipped = good;
    flipped[pos] ^= 0x5A;  // The LossyChannel corrupt fault's XOR pattern.
    EXPECT_FALSE(SessionFrame::Deserialize(flipped).ok()) << "pos=" << pos;
  }
}

TEST(SessionTest, EchoOverCleanWire) {
  Rig rig;
  Result<Bytes> reply = rig.client.Call(BytesOf("ping"), rig.Pump());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), BytesOf("ping"));
  EXPECT_EQ(rig.echo.invocations, 1);
  EXPECT_EQ(rig.client.retransmits(), 0u);
  // A clean exchange costs about one RTT, not a whole timeout window.
  EXPECT_LT(rig.clock.NowMillis(), 12.0);
}

TEST(SessionTest, ServerStatusArrivesTyped) {
  Rig rig;
  auto deny = [](const Bytes&) -> Result<Bytes> {
    return PermissionDeniedError("policy says no");
  };
  SessionClient::PeerPump pump = [&](double deadline_ms) {
    rig.server.ServePending(deadline_ms, deny);
  };
  Result<Bytes> reply = rig.client.Call(BytesOf("req"), pump);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(reply.status().message().find("policy says no"), std::string::npos);
}

TEST(SessionTest, RetransmitRecoversFromLostRequest) {
  Rig rig;
  // Partition swallows exactly the first datagram (the initial request).
  rig.channel.set_fault_schedule(NetFaultSchedule(3, NetFaultMix{}, {{1, 2}}));
  Result<Bytes> reply = rig.client.Call(BytesOf("ping"), rig.Pump());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), BytesOf("ping"));
  EXPECT_EQ(rig.client.retransmits(), 1u);
  EXPECT_EQ(rig.echo.invocations, 1);
}

TEST(SessionTest, DuplicatedRequestExecutesAtMostOnce) {
  Rig rig;
  NetFaultMix all_dup;
  all_dup.duplicate_bp = 10000;
  rig.channel.set_fault_schedule(NetFaultSchedule(3, all_dup));
  Result<Bytes> reply = rig.client.Call(BytesOf("once"), rig.Pump());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), BytesOf("once"));
  // The wire duplicated the request, but the handler ran exactly once; the
  // twin was answered from the reply cache.
  EXPECT_EQ(rig.echo.invocations, 1);
  EXPECT_GE(rig.server.duplicates_served(), 1u);
}

TEST(SessionTest, FailsClosedWithinTotalDeadline) {
  Rig rig;
  NetFaultMix all_drop;
  all_drop.drop_bp = 10000;
  rig.channel.set_fault_schedule(NetFaultSchedule(3, all_drop));
  Result<Bytes> reply = rig.client.Call(BytesOf("void"), rig.Pump());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  SessionConfig defaults;
  EXPECT_LE(rig.clock.NowMillis(), defaults.total_deadline_ms + 1e-6);
  EXPECT_EQ(rig.echo.invocations, 0);
}

TEST(SessionTest, ZeroTotalDeadlineFailsClosedWithoutWaiting) {
  // The degenerate budget: a call that may take no time at all. It must
  // fail closed immediately - no receive window, no retransmits, no clock
  // movement - not underflow into a huge wait or spin.
  SessionConfig config;
  config.total_deadline_ms = 0.0;
  Rig rig;
  SessionClient client(&rig.channel, NetEndpoint::kClient, config);
  Result<Bytes> reply = client.Call(BytesOf("now-or-never"), rig.Pump());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.retransmits(), 0u);
  EXPECT_EQ(rig.echo.invocations, 0);
  EXPECT_DOUBLE_EQ(rig.clock.NowMillis(), 0.0);
}

TEST(SessionTest, RetransmitLandingExactlyOnDeadlineIsNotSent) {
  // The boundary case in the retransmit gate: when the coming backoff wait
  // would land exactly ON the total deadline, the call fails closed instead
  // of buying a retransmit it could never collect an answer for.
  SessionConfig config;
  config.attempt_timeout_ms = 30.0;
  config.backoff.jitter_fraction = 0;  // Pinned 5 ms first delay.
  config.total_deadline_ms = 35.0;     // = first window + first delay, exactly.
  Rig rig;
  NetFaultMix all_drop;
  all_drop.drop_bp = 10000;
  rig.channel.set_fault_schedule(NetFaultSchedule(3, all_drop));
  SessionClient client(&rig.channel, NetEndpoint::kClient, config);
  Result<Bytes> reply = client.Call(BytesOf("boundary"), rig.Pump());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.retransmits(), 0u);
  // The clock stopped at the end of the first receive window; the 5 ms
  // backoff wait was never taken.
  EXPECT_DOUBLE_EQ(rig.clock.NowMillis(), 30.0);
}

TEST(SessionTest, TotalDeadlineClampsTheAttemptWindow) {
  // A total deadline shorter than one attempt window: the receive wait must
  // stop at the deadline, not run the full attempt_timeout past it.
  SessionConfig config;
  config.attempt_timeout_ms = 30.0;
  config.total_deadline_ms = 10.0;
  Rig rig;
  NetFaultMix all_drop;
  all_drop.drop_bp = 10000;
  rig.channel.set_fault_schedule(NetFaultSchedule(3, all_drop));
  SessionClient client(&rig.channel, NetEndpoint::kClient, config);
  Result<Bytes> reply = client.Call(BytesOf("short-leash"), rig.Pump());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ(rig.clock.NowMillis(), 10.0);
}

TEST(SessionTest, GarbledFramesNeverSurface) {
  Rig rig;
  NetFaultMix all_corrupt;
  all_corrupt.corrupt_bp = 10000;
  rig.channel.set_fault_schedule(NetFaultSchedule(3, all_corrupt));
  Result<Bytes> reply = rig.client.Call(BytesOf("garble-me"), rig.Pump());
  // Every frame in both directions is garbled: the call must fail closed,
  // and both ends must have counted (not crashed on) the hostile bytes.
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(rig.server.rejected_frames(), 1u);
}

TEST(SessionTest, StaleResponseIsIgnored) {
  Rig rig;
  // Forge a response for a sequence number this client never issued and
  // park it on the wire ahead of the real exchange.
  SessionFrame forged;
  forged.type = SessionFrame::kResponse;
  forged.seq = 999;
  forged.payload = BytesOf("ghost");
  rig.channel.Send(NetEndpoint::kServer, forged.Serialize());
  Result<Bytes> reply = rig.client.Call(BytesOf("real"), rig.Pump());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), BytesOf("real"));  // Never the ghost payload.
  EXPECT_GE(rig.client.stale_frames(), 1u);
}

TEST(SessionTest, SequenceNumbersPairCallsAcrossRetries) {
  Rig rig;
  // Drop ~20% with a seed that exercises retransmits across several calls;
  // every call must still return its own payload.
  NetFaultMix mix;
  mix.drop_bp = 2000;
  rig.channel.set_fault_schedule(NetFaultSchedule(11, mix));
  for (int i = 0; i < 10; ++i) {
    Writer w;
    w.U32(static_cast<uint32_t>(i));
    Bytes payload = w.Take();
    Result<Bytes> reply = rig.client.Call(payload, rig.Pump());
    if (reply.ok()) {
      EXPECT_EQ(reply.value(), payload) << "call " << i;
    } else {
      EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
    }
  }
  EXPECT_EQ(rig.client.calls(), 10u);
}

TEST(SessionTest, ReplyCacheEvictsFifoButStaysCorrect) {
  SimClock clock;
  LossyChannel channel(&clock);
  SessionClient client(&channel, NetEndpoint::kClient);
  SessionServer server(&channel, NetEndpoint::kServer, /*reply_cache_capacity=*/2);
  EchoHandler echo;
  SessionClient::PeerPump pump = [&](double deadline_ms) {
    server.ServePending(deadline_ms, echo.Fn());
  };
  for (int i = 0; i < 6; ++i) {
    Result<Bytes> reply = client.Call(BytesOf("m"), pump);
    ASSERT_TRUE(reply.ok());
  }
  EXPECT_EQ(server.requests_handled(), 6u);
  EXPECT_EQ(echo.invocations, 6);
}

}  // namespace
}  // namespace flicker
