#include "src/net/channel.h"

#include <gtest/gtest.h>

namespace flicker {
namespace {

TEST(ChannelTest, DeliveryAdvancesClock) {
  SimClock clock;
  Channel channel(&clock);
  channel.Deliver();
  EXPECT_GT(clock.NowMillis(), 0.0);
  EXPECT_EQ(channel.messages_delivered(), 1u);
}

TEST(ChannelTest, LatencyWithinProfileBounds) {
  SimClock clock;
  Channel channel(&clock);
  for (int i = 0; i < 200; ++i) {
    double one_way = channel.SampleOneWayMs();
    EXPECT_GE(one_way, channel.profile().min_rtt_ms / 2.0 - 1e-9);
    EXPECT_LE(one_way, channel.profile().max_rtt_ms / 2.0 + 1e-9);
  }
}

TEST(ChannelTest, AverageNearProfileAvg) {
  SimClock clock;
  Channel channel(&clock);
  double total = 0;
  const int kTrials = 500;
  for (int i = 0; i < kTrials; ++i) {
    total += channel.SampleOneWayMs();
  }
  double avg_rtt = 2.0 * total / kTrials;
  EXPECT_NEAR(avg_rtt, channel.profile().avg_rtt_ms, 0.25);
}

TEST(ChannelTest, SamplingAloneIsNotADelivery) {
  // Regression: SampleOneWayMs() used to bump messages_delivered, so code
  // that merely inspected latencies inflated the delivery count.
  SimClock clock;
  Channel channel(&clock);
  channel.SampleOneWayMs();
  channel.SampleOneWayMs();
  EXPECT_EQ(channel.messages_delivered(), 0u);
  channel.Deliver();
  EXPECT_EQ(channel.messages_delivered(), 1u);
}

TEST(ChannelTest, RoundTripIsTwoMessages) {
  SimClock clock;
  Channel channel(&clock);
  channel.RoundTrip();
  EXPECT_EQ(channel.messages_delivered(), 2u);
  // A 9.45 ms avg RTT: round trip should land in [9.33, 10.10].
  EXPECT_GE(clock.NowMillis(), 9.0);
  EXPECT_LE(clock.NowMillis(), 10.2);
}

TEST(ChannelTest, CustomProfile) {
  SimClock clock;
  LatencyProfile lan{0.2, 0.3, 0.5, 1};
  Channel channel(&clock, lan);
  double one_way = channel.SampleOneWayMs();
  EXPECT_GE(one_way, 0.1 - 1e-9);
  EXPECT_LE(one_way, 0.25 + 1e-9);
}

TEST(ChannelTest, DeterministicGivenSeed) {
  SimClock c1;
  SimClock c2;
  Channel a(&c1, LatencyProfile(), 42);
  Channel b(&c2, LatencyProfile(), 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.SampleOneWayMs(), b.SampleOneWayMs());
  }
}

}  // namespace
}  // namespace flicker
