// Classic/concurrent mode parity: every existing PAL workload must be
// byte-identical between the paper's suspend-the-world lifecycle and the
// hypervisor-hosted concurrent mode under the same seed. Two
// deterministic stacks are built per workload, differing ONLY in
// `config.mode`; outputs,
// PCR 17 chains, quotes, sealed key material and protocol verdicts must
// all match. This is the contract that lets an operator flip a fleet to
// --hv without re-whitelisting a single PAL measurement.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/apps/ca.h"
#include "src/apps/hello.h"
#include "src/apps/rootkit_detector.h"
#include "src/apps/ssh.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

FlickerPlatformConfig ModeConfig(SessionMode mode) {
  FlickerPlatformConfig config;
  config.mode = mode;
  return config;
}

// The inputs-reversing PAL from the core suite, so parity also covers a
// PAL whose outputs depend on its inputs.
class EchoPal : public Pal {
 public:
  std::string name() const override { return "echo"; }
  std::vector<std::string> required_modules() const override { return {}; }
  std::vector<std::string> required_symbols() const override { return {"PAL_OUT"}; }
  size_t app_code_bytes() const override { return 128; }
  int app_lines_of_code() const override { return 10; }

  Status Execute(PalContext* context) override {
    Bytes reversed(context->inputs().rbegin(), context->inputs().rend());
    return context->SetOutputs(reversed);
  }
};

class HvParityTest : public ::testing::Test {
 protected:
  HvParityTest()
      : classic_(ModeConfig(SessionMode::kClassic)),
        concurrent_(ModeConfig(SessionMode::kConcurrent)) {}

  // Runs the same session on both platforms and checks the full record is
  // byte-identical, including the hardware PCR 17 each mode leaves behind.
  void ExpectSessionParity(const PalBinary& binary, const Bytes& inputs,
                           const SlbCoreOptions& options = SlbCoreOptions()) {
    Result<FlickerSessionResult> a = classic_.ExecuteSession(binary, inputs, options);
    Result<FlickerSessionResult> b = concurrent_.ExecuteSession(binary, inputs, options);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a.value().record.pal_status.ok(), b.value().record.pal_status.ok());
    EXPECT_EQ(a.value().record.outputs, b.value().record.outputs);
    EXPECT_EQ(a.value().record.pcr17_during_execution, b.value().record.pcr17_during_execution);
    EXPECT_EQ(a.value().record.pcr17_final, b.value().record.pcr17_final);
    EXPECT_EQ(a.value().launch.measurement, b.value().launch.measurement);
    EXPECT_EQ(classic_.tpm()->PcrRead(kSkinitPcr).value(),
              concurrent_.tpm()->PcrRead(kSkinitPcr).value());
  }

  FlickerPlatform classic_;
  FlickerPlatform concurrent_;
};

TEST_F(HvParityTest, HelloWorldSessionsAreByteIdentical) {
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>()).take();
  for (int i = 0; i < 3; ++i) {
    ExpectSessionParity(binary, BytesOf("hello-round-" + std::to_string(i)));
  }
}

TEST_F(HvParityTest, EchoPalWithAttestationNonceMatches) {
  PalBinary binary = BuildPal(std::make_shared<EchoPal>()).take();
  SlbCoreOptions options;
  options.nonce = Sha1::Digest(BytesOf("parity-nonce"));
  ExpectSessionParity(binary, BytesOf("payload-to-reverse"), options);
}

// The full §6.3.1 SSH protocol: keygen + seal in session 1, unseal +
// decrypt + md5crypt in session 2, with the client verifying the quote.
// Everything the protocol emits must match across modes.
TEST_F(HvParityTest, SshProtocolIsByteIdenticalAcrossModes) {
  PalBuildOptions build;
  build.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<SshPal>(), build).take();

  struct Stack {
    Stack(FlickerPlatform* platform, const PalBinary* binary)
        : server(platform, binary),
          cert(ca.Certify(platform->tpm()->aik_public(), "parity-host")),
          client(binary, ca.public_key(), cert) {}
    PrivacyCa ca;
    SshServer server;
    AikCertificate cert;
    SshClient client;
  };
  Stack classic(&classic_, &binary);
  Stack concurrent(&concurrent_, &binary);

  for (Stack* stack : {&classic, &concurrent}) {
    ASSERT_TRUE(stack->server.AddUser("alice", "correct horse", "a1b2c3d4").ok());
  }

  const Bytes nonce = classic.client.MakeNonce();
  ASSERT_EQ(nonce, concurrent.client.MakeNonce()) << "client nonce streams diverged";

  Result<SshServer::SetupResult> setup_a = classic.server.Setup(nonce);
  Result<SshServer::SetupResult> setup_b = concurrent.server.Setup(nonce);
  ASSERT_TRUE(setup_a.ok()) << setup_a.status().ToString();
  ASSERT_TRUE(setup_b.ok()) << setup_b.status().ToString();

  // Key material, raw PAL outputs and the quote itself are byte-identical:
  // the mirrored hardware PCR 17 makes the attestation indistinguishable.
  EXPECT_EQ(setup_a.value().public_key, setup_b.value().public_key);
  EXPECT_EQ(setup_a.value().setup_outputs, setup_b.value().setup_outputs);
  EXPECT_EQ(setup_a.value().attestation.quote.pcr_values,
            setup_b.value().attestation.quote.pcr_values);
  EXPECT_EQ(setup_a.value().attestation.quote.signature,
            setup_b.value().attestation.quote.signature);
  EXPECT_EQ(classic.server.key_material(), concurrent.server.key_material());

  ASSERT_TRUE(classic.client.VerifyServerSetup(setup_a.value(), nonce).ok());
  ASSERT_TRUE(concurrent.client.VerifyServerSetup(setup_b.value(), nonce).ok());

  for (Stack* stack : {&classic, &concurrent}) {
    const Bytes login_nonce = Sha1::Digest(BytesOf("login-nonce"));
    Result<Bytes> encrypted = stack->client.EncryptPassword("correct horse", login_nonce);
    ASSERT_TRUE(encrypted.ok());
    Result<SshServer::LoginResult> login =
        stack->server.HandleLogin("alice", encrypted.value(), login_nonce);
    ASSERT_TRUE(login.ok()) << login.status().ToString();
    EXPECT_TRUE(login.value().authenticated);
  }
  EXPECT_EQ(classic_.tpm()->PcrRead(kSkinitPcr).value(),
            concurrent_.tpm()->PcrRead(kSkinitPcr).value());
}

// The §6.3.2 CA: keygen + sealed database, then a signing session whose
// certificate - and resealed, counter-versioned state - must match.
TEST_F(HvParityTest, CertificateAuthorityStateAndSignaturesMatch) {
  PalBuildOptions build;
  build.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<CaPal>(), build).take();
  const Bytes owner_auth = Sha1::Digest(BytesOf("owner"));
  ASSERT_TRUE(classic_.tpm()->TakeOwnership(owner_auth).ok());
  ASSERT_TRUE(concurrent_.tpm()->TakeOwnership(owner_auth).ok());

  CertificateAuthorityHost host_a(&classic_, &binary, "Parity CA");
  CertificateAuthorityHost host_b(&concurrent_, &binary, "Parity CA");
  Result<Bytes> pub_a = host_a.Initialize(owner_auth);
  Result<Bytes> pub_b = host_b.Initialize(owner_auth);
  ASSERT_TRUE(pub_a.ok()) << pub_a.status().ToString();
  ASSERT_TRUE(pub_b.ok()) << pub_b.status().ToString();
  EXPECT_EQ(pub_a.value(), pub_b.value());
  EXPECT_EQ(host_a.sealed_state(), host_b.sealed_state());

  CertificateSigningRequest csr;
  csr.subject = "www.corp.example.com";
  Drbg rng(BytesOf("parity-subject-key"));
  csr.subject_public_key = RsaGenerateKey(512, &rng).pub.Serialize();
  CaPolicy policy;
  policy.allowed_suffixes = {".corp.example.com"};

  CertificateAuthorityHost::SignReport report_a = host_a.SignCertificate(csr, policy);
  CertificateAuthorityHost::SignReport report_b = host_b.SignCertificate(csr, policy);
  ASSERT_TRUE(report_a.status.ok()) << report_a.status.ToString();
  ASSERT_TRUE(report_b.status.ok()) << report_b.status.ToString();
  EXPECT_EQ(report_a.certificate.Serialize(), report_b.certificate.Serialize());
  EXPECT_EQ(host_a.sealed_state(), host_b.sealed_state());
  EXPECT_TRUE(CertificateAuthorityHost::VerifyCertificate(pub_b.value(), report_b.certificate));
}

// The §6.1 rootkit detector, end to end over the network: challenge,
// session, quote, verification. The monitor's verdict and the reported
// kernel measurement must match across modes.
TEST_F(HvParityTest, RootkitDetectorQueriesMatch) {
  PalBinary binary = BuildPal(std::make_shared<RootkitDetectorPal>()).take();

  struct Stack {
    Stack(FlickerPlatform* platform, const PalBinary* binary)
        : cert(ca.Certify(platform->tpm()->aik_public(), "parity-laptop")),
          monitor(binary, platform->kernel()->pristine_measurement(), ca.public_key(), cert),
          channel(platform->clock()) {}
    PrivacyCa ca;
    AikCertificate cert;
    RootkitMonitor monitor;
    Channel channel;
  };
  Stack classic(&classic_, &binary);
  Stack concurrent(&concurrent_, &binary);

  RootkitMonitor::QueryReport report_a = classic.monitor.Query(&classic_, &classic.channel);
  RootkitMonitor::QueryReport report_b = concurrent.monitor.Query(&concurrent_, &concurrent.channel);
  ASSERT_TRUE(report_a.status.ok()) << report_a.status.ToString();
  ASSERT_TRUE(report_b.status.ok()) << report_b.status.ToString();
  EXPECT_TRUE(report_a.kernel_clean);
  EXPECT_TRUE(report_b.kernel_clean);
  EXPECT_EQ(report_a.reported_measurement, report_b.reported_measurement);

  // A hooked kernel is caught identically in both modes.
  ASSERT_TRUE(classic_.kernel()->InstallSyscallHook(11).ok());
  ASSERT_TRUE(concurrent_.kernel()->InstallSyscallHook(11).ok());
  report_a = classic.monitor.Query(&classic_, &classic.channel);
  report_b = concurrent.monitor.Query(&concurrent_, &concurrent.channel);
  ASSERT_TRUE(report_a.status.ok());
  ASSERT_TRUE(report_b.status.ok());
  EXPECT_FALSE(report_a.kernel_clean);
  EXPECT_FALSE(report_b.kernel_clean);
  EXPECT_EQ(report_a.reported_measurement, report_b.reported_measurement);
}

}  // namespace
}  // namespace flicker
