// The minimal SVM hypervisor (§9 concurrent execution): late launch and
// residency, the typed denial taxonomy, nested-page + DEV protections, the
// mirrored/non-mirrored PCR 17 contract, slot lifecycle, and eviction by
// every reset flavour.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/core/flicker_platform.h"
#include "src/hv/hypervisor.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

FlickerPlatformConfig ConcurrentConfig() {
  FlickerPlatformConfig config;
  config.mode = SessionMode::kConcurrent;
  return config;
}

// A concurrent platform with two PAL slots and enough cores to dedicate
// one per slot (the default 64 MB map leaves 0x150000 clear: it sits right
// above the hypervisor's 64 KB SKINIT region at 0x140000).
FlickerPlatformConfig DualSlotConfig(bool mirror) {
  FlickerPlatformConfig config;
  config.mode = SessionMode::kConcurrent;
  config.machine.num_cpus = 4;
  config.hv.pal_slot_bases = {kSlbFixedBase, 0x150000};
  config.hv.mirror_hardware_pcr = mirror;
  return config;
}

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest() : binary_(BuildPal(std::make_shared<HelloWorldPal>()).take()) {}

  // Stages the hello PAL at `slot` through the untrusted module interface,
  // exactly as the concurrent platform path does.
  Status Stage(FlickerPlatform* platform, uint64_t slot) {
    FLICKER_RETURN_IF_ERROR(platform->flicker_module()->WriteSlb(binary_.image));
    FLICKER_RETURN_IF_ERROR(platform->flicker_module()->WriteInputs(BytesOf("hv-test-input")));
    return platform->flicker_module()->StageForHypervisorAt(slot);
  }

  // Runs `attack` and requires it to fail with exactly the expected typed
  // denial (the denial counter for that kind must bump).
  template <typename Fn>
  void ExpectDenied(hv::Hypervisor* hv, hv::HvDenial expect, Fn attack) {
    const uint64_t before = hv->denied(expect);
    auto result = attack();
    EXPECT_FALSE(result.ok()) << "attack was accepted";
    EXPECT_EQ(hv->denied(expect), before + 1)
        << "denied, but not as " << hv::HvDenialName(expect);
  }

  PalBinary binary_;
};

TEST_F(HypervisorTest, LateLaunchMeasuresTheLoaderIntoPcr17) {
  FlickerPlatform platform(ConcurrentConfig());
  hv::Hypervisor* hv = platform.hypervisor();
  EXPECT_FALSE(hv->resident());

  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  EXPECT_TRUE(hv->resident());
  EXPECT_EQ(hv->measurement().size(), 20u);
  // PCR 17 attests the hypervisor exactly as it would an SLB:
  // SHA1(0^20 || H(HLB)).
  EXPECT_EQ(hv->launch_pcr17(), ExpectedPcr17AfterSkinit(hv->measurement()));
  EXPECT_EQ(platform.tpm()->PcrRead(kSkinitPcr).value(), hv->launch_pcr17());

  // The HLB is synthetic and deterministic: a verifier can whitelist one
  // measurement for the whole fleet.
  FlickerPlatform other(ConcurrentConfig());
  ASSERT_TRUE(other.EnsureHypervisorResident().ok());
  EXPECT_EQ(other.hypervisor()->measurement(), hv->measurement());
}

TEST_F(HypervisorTest, RelaunchWhileResidentIsDenied) {
  FlickerPlatform platform(ConcurrentConfig());
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  ExpectDenied(platform.hypervisor(), hv::HvDenial::kAlreadyLaunched,
               [&] { return platform.hypervisor()->LateLaunch(); });
  // The idempotent platform entry point is still fine: it sees residency.
  EXPECT_TRUE(platform.EnsureHypervisorResident().ok());
}

TEST_F(HypervisorTest, HypercallsBeforeLaunchAreDenied) {
  FlickerPlatform platform(ConcurrentConfig());
  hv::Hypervisor* hv = platform.hypervisor();
  ExpectDenied(hv, hv::HvDenial::kNotLaunched, [&] { return hv->HcStartSession(kSlbFixedBase); });
  ExpectDenied(hv, hv::HvDenial::kNotLaunched,
               [&] { return hv->RunSession(1, binary_, SlbCoreOptions()); });
  ExpectDenied(hv, hv::HvDenial::kNotLaunched, [&] { return hv->HcCollectOutputs(1); });
}

TEST_F(HypervisorTest, MalformedHypercallsDieWithTypedDenials) {
  FlickerPlatform platform(ConcurrentConfig());
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  hv::Hypervisor* hv = platform.hypervisor();

  // A base that is not a configured session slot.
  ExpectDenied(hv, hv::HvDenial::kBadRegion, [&] { return hv->HcStartSession(0x1000); });
  // A staged region whose header fails the SKINIT validation rules
  // (entry_point >= length).
  ASSERT_TRUE(platform.machine()->memory()->Write(kSlbFixedBase, Bytes{2, 0, 9, 9}).ok());
  ExpectDenied(hv, hv::HvDenial::kBadHeader, [&] { return hv->HcStartSession(kSlbFixedBase); });
  // Bogus session ids.
  ExpectDenied(hv, hv::HvDenial::kSessionNotFound,
               [&] { return hv->RunSession(0xdead, binary_, SlbCoreOptions()); });
  ExpectDenied(hv, hv::HvDenial::kBadHypercallParam, [&] { return hv->HcCollectOutputs(0); });
  ExpectDenied(hv, hv::HvDenial::kSessionNotFound, [&] { return hv->HcCollectOutputs(0xdead); });
}

TEST_F(HypervisorTest, CoreRequestsAreValidated) {
  FlickerPlatform platform(DualSlotConfig(/*mirror=*/false));
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  hv::Hypervisor* hv = platform.hypervisor();

  // Cores 2 and 3 are PAL-dedicated (two slots); 0 and 1 belong to the OS.
  EXPECT_FALSE(platform.machine()->cpu(0)->pal_dedicated);
  EXPECT_TRUE(platform.machine()->cpu(2)->pal_dedicated);
  EXPECT_TRUE(platform.machine()->cpu(3)->pal_dedicated);

  ASSERT_TRUE(Stage(&platform, kSlbFixedBase).ok());
  ExpectDenied(hv, hv::HvDenial::kBadCore,
               [&] { return hv->HcStartSession(kSlbFixedBase, /*requested_core=*/0); });
  ExpectDenied(hv, hv::HvDenial::kBadCore,
               [&] { return hv->HcStartSession(kSlbFixedBase, /*requested_core=*/99); });

  // Auto-pick pins the top dedicated core; asking for that busy core by
  // name for the second slot is refused.
  Result<uint64_t> first = hv->HcStartSession(kSlbFixedBase);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(hv->FindSession(first.value())->core, 3);
  ASSERT_TRUE(Stage(&platform, 0x150000).ok());
  ExpectDenied(hv, hv::HvDenial::kNoFreeCore,
               [&] { return hv->HcStartSession(0x150000, /*requested_core=*/3); });
}

TEST_F(HypervisorTest, MirroredSessionsAreExclusive) {
  FlickerPlatform platform(DualSlotConfig(/*mirror=*/true));
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  hv::Hypervisor* hv = platform.hypervisor();

  ASSERT_TRUE(Stage(&platform, kSlbFixedBase).ok());
  Result<uint64_t> first = hv->HcStartSession(kSlbFixedBase);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // The hardware TPM has one PCR 17: a second mirrored session must wait.
  ASSERT_TRUE(Stage(&platform, 0x150000).ok());
  ExpectDenied(hv, hv::HvDenial::kTpmBusy, [&] { return hv->HcStartSession(0x150000); });

  // Once the first session completes and is collected, the slot opens up.
  ASSERT_TRUE(hv->RunSession(first.value(), binary_, SlbCoreOptions()).ok());
  ASSERT_TRUE(hv->HcCollectOutputs(first.value()).ok());
  EXPECT_TRUE(hv->HcStartSession(0x150000).ok());
}

TEST_F(HypervisorTest, NonMirroredSessionsOverlapAndLeaveTheHardwarePcrAlone) {
  FlickerPlatform platform(DualSlotConfig(/*mirror=*/false));
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  hv::Hypervisor* hv = platform.hypervisor();
  const Bytes pcr_after_launch = platform.tpm()->PcrRead(kSkinitPcr).value();

  ASSERT_TRUE(Stage(&platform, kSlbFixedBase).ok());
  Result<uint64_t> a = hv->HcStartSession(kSlbFixedBase);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(Stage(&platform, 0x150000).ok());
  Result<uint64_t> b = hv->HcStartSession(0x150000);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(hv->active_sessions(), 2);

  Result<SessionRecord> ra = hv->RunSession(a.value(), binary_, SlbCoreOptions());
  Result<SessionRecord> rb = hv->RunSession(b.value(), binary_, SlbCoreOptions());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().outputs, BytesOf("Hello, world"));
  EXPECT_EQ(rb.value().outputs, BytesOf("Hello, world"));
  // Each slot patches the image for its own base, so the two µPCR chains
  // differ from each other - and the hardware register never moved.
  EXPECT_NE(ra.value().pcr17_final, rb.value().pcr17_final);
  EXPECT_EQ(platform.tpm()->PcrRead(kSkinitPcr).value(), pcr_after_launch);
}

TEST_F(HypervisorTest, DevBlocksDmaIntoProtectedFrames) {
  FlickerPlatform platform(ConcurrentConfig());
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  Machine* machine = platform.machine();
  const uint64_t hv_base = platform.hypervisor()->config().hv_base;

  const Bytes before = machine->memory()->Read(hv_base, 16).value();
  uint64_t blocked = machine->dma_blocked_count();
  EXPECT_FALSE(machine->DmaWrite(hv_base + 4, BytesOf("dma-overwrite")).ok());
  EXPECT_EQ(machine->dma_blocked_count(), blocked + 1);
  EXPECT_EQ(machine->memory()->Read(hv_base, 16).value(), before);

  // An active session's slot is DEV-covered too, for reads and writes.
  ASSERT_TRUE(Stage(&platform, kSlbFixedBase).ok());
  ASSERT_TRUE(platform.hypervisor()->HcStartSession(kSlbFixedBase).ok());
  blocked = machine->dma_blocked_count();
  EXPECT_FALSE(machine->DmaWrite(kSlbFixedBase + kSlbCodeOffset, BytesOf("patch")).ok());
  EXPECT_FALSE(machine->DmaRead(kSlbFixedBase, 32).ok());
  EXPECT_EQ(machine->dma_blocked_count(), blocked + 2);

  // DMA elsewhere still works: the protections are surgical, not a blanket.
  EXPECT_TRUE(machine->DmaWrite(0x300000, BytesOf("bulk-io")).ok());
}

TEST_F(HypervisorTest, NestedPagingFaultsGuestProbesIntoProtectedFrames) {
  FlickerPlatform platform(ConcurrentConfig());
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  Machine* machine = platform.machine();
  hv::Hypervisor* hv = platform.hypervisor();
  const uint64_t hv_base = hv->config().hv_base;

  ASSERT_TRUE(Stage(&platform, kSlbFixedBase).ok());
  ASSERT_TRUE(hv->HcStartSession(kSlbFixedBase).ok());

  const uint64_t npt_before = machine->npt_blocked_count();
  const uint64_t denials_before = hv->denied(hv::HvDenial::kNptViolation);
  EXPECT_FALSE(machine->GuestWrite(0, hv_base + 8, BytesOf("hijack")).ok());
  EXPECT_FALSE(machine->GuestRead(0, kSlbFixedBase + kSlbInputsOffset, 16).ok());
  EXPECT_EQ(machine->npt_blocked_count(), npt_before + 2);
  EXPECT_EQ(hv->denied(hv::HvDenial::kNptViolation), denials_before + 2);

  // Guest traffic to its own memory sails through the nested page tables.
  EXPECT_TRUE(machine->GuestWrite(0, 0x300000, BytesOf("os-data")).ok());
  EXPECT_TRUE(machine->GuestRead(0, 0x300000, 7).ok());
}

TEST_F(HypervisorTest, EveryResetFlavourEvictsTheHypervisor) {
  FlickerPlatform platform(ConcurrentConfig());
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());

  platform.machine()->WarmReset();
  EXPECT_FALSE(platform.hypervisor()->resident());
  ASSERT_TRUE(platform.tpm()->Startup(TpmStartupType::kClear).ok());
  ExpectDenied(platform.hypervisor(), hv::HvDenial::kNotLaunched,
               [&] { return platform.hypervisor()->HcStartSession(kSlbFixedBase); });
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  EXPECT_TRUE(platform.hypervisor()->resident());

  platform.machine()->PowerCut();
  EXPECT_FALSE(platform.hypervisor()->resident());
  ASSERT_TRUE(platform.tpm()->Startup(TpmStartupType::kClear).ok());
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  EXPECT_TRUE(platform.hypervisor()->resident());
}

TEST_F(HypervisorTest, SlotLifecycleFreesOnCollect) {
  FlickerPlatform platform(ConcurrentConfig());
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());
  hv::Hypervisor* hv = platform.hypervisor();

  EXPECT_EQ(hv->FreeSlotBase(), kSlbFixedBase);
  ASSERT_TRUE(Stage(&platform, kSlbFixedBase).ok());
  Result<uint64_t> id = hv->HcStartSession(kSlbFixedBase);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(hv->FreeSlotBase(), 0u) << "single slot should be consumed";

  ASSERT_TRUE(hv->RunSession(id.value(), binary_, SlbCoreOptions()).ok());
  Result<Bytes> outputs = hv->HcCollectOutputs(id.value());
  ASSERT_TRUE(outputs.ok());
  EXPECT_EQ(hv->FreeSlotBase(), kSlbFixedBase);
  // Collection is destructive: the id is gone.
  ExpectDenied(hv, hv::HvDenial::kSessionNotFound, [&] { return hv->HcCollectOutputs(id.value()); });
}

TEST_F(HypervisorTest, ConcurrentSessionNeverSuspendsTheOs) {
  FlickerPlatform platform(ConcurrentConfig());
  ASSERT_TRUE(platform.EnsureHypervisorResident().ok());

  Result<FlickerSessionResult> result =
      platform.ExecuteSession(binary_, BytesOf("concurrent-input"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok());
  EXPECT_EQ(result.value().outputs(), BytesOf("Hello, world"));
  // No per-session SKINIT, no suspend, and the OS pause is only the
  // hypercall/world-switch slivers - a strict subset of the session.
  EXPECT_EQ(result.value().skinit_ms, 0);
  EXPECT_EQ(result.value().suspend_ms, 0);
  EXPECT_GT(result.value().os_pause_ms, 0);
  EXPECT_LT(result.value().os_pause_ms, result.value().session_total_ms / 5);
  // The OS core stayed a live hypervisor guest throughout.
  EXPECT_TRUE(platform.machine()->cpu(0)->guest_mode);
  EXPECT_TRUE(platform.machine()->cpu(0)->interrupts_enabled);
}

}  // namespace
}  // namespace flicker
