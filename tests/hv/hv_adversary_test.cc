// The cross-core adversary, in unit form: an OS core attacks a protected
// PAL session from the concurrency window the classic mode never exposes -
// after HcStartSession measured and protected the slot, before the PAL
// runs. Every attack must die with its exact typed denial, no protected
// byte may change, and the attacked session must still complete
// byte-identical to an unattacked reference. The fleet-scale version of
// this battery is src/hv/hv_campaign; this suite pins each attack's
// behavior individually.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/core/flicker_platform.h"
#include "src/hv/hypervisor.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

constexpr uint64_t kSecondSlot = 0x150000;

class HvAdversaryTest : public ::testing::Test {
 protected:
  HvAdversaryTest() : binary_(BuildPal(std::make_shared<HelloWorldPal>()).take()) {
    FlickerPlatformConfig config;
    config.mode = SessionMode::kConcurrent;
    config.machine.num_cpus = 4;
    config.hv.pal_slot_bases = {kSlbFixedBase, kSecondSlot};
    // TPM-free PAL, so sessions may overlap and attacks can probe both
    // slots; the mirrored seal/quote path is covered by hv_parity_test.
    config.hv.mirror_hardware_pcr = false;
    platform_ = std::make_unique<FlickerPlatform>(config);
    EXPECT_TRUE(platform_->EnsureHypervisorResident().ok());

    // The unattacked reference: one full session, recorded for comparison.
    Result<FlickerSessionResult> reference =
        platform_->ExecuteSession(binary_, BytesOf("adversary-input"));
    EXPECT_TRUE(reference.ok());
    reference_ = reference.value().record;
  }

  hv::Hypervisor* hv() { return platform_->hypervisor(); }
  Machine* machine() { return platform_->machine(); }

  // Stages the PAL and opens the protection window: returns the session id
  // with the region measured + protected but the PAL not yet run.
  uint64_t OpenProtectedSession(uint64_t slot) {
    EXPECT_TRUE(platform_->flicker_module()->WriteSlb(binary_.image).ok());
    EXPECT_TRUE(platform_->flicker_module()->WriteInputs(BytesOf("adversary-input")).ok());
    EXPECT_TRUE(platform_->flicker_module()->StageForHypervisorAt(slot).ok());
    Result<uint64_t> id = hv()->HcStartSession(slot);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ok() ? id.value() : 0;
  }

  template <typename Fn>
  void ExpectDenied(hv::HvDenial expect, Fn attack) {
    const uint64_t before = hv()->denied(expect);
    auto result = attack();
    EXPECT_FALSE(result.ok()) << "attack accepted";
    EXPECT_EQ(hv()->denied(expect), before + 1)
        << "denied, but not as " << hv::HvDenialName(expect);
  }

  // A DMA attack must be refused by DEV and must not move a single byte.
  void ExpectDmaBlocked(uint64_t addr) {
    const Bytes before = machine()->memory()->Read(addr, 16).value();
    const uint64_t blocked = machine()->dma_blocked_count();
    EXPECT_FALSE(machine()->DmaWrite(addr, BytesOf("dma-corruption!!")).ok());
    EXPECT_EQ(machine()->dma_blocked_count(), blocked + 1);
    EXPECT_EQ(machine()->memory()->Read(addr, 16).value(), before);
  }

  std::unique_ptr<FlickerPlatform> platform_;
  PalBinary binary_;
  SessionRecord reference_;
};

TEST_F(HvAdversaryTest, MidSessionBatteryIsFullyDeniedAndTheSessionSurvives) {
  const uint64_t id = OpenProtectedSession(kSlbFixedBase);
  ASSERT_NE(id, 0u);
  const uint64_t hv_base = hv()->config().hv_base;
  const Bytes slot_before =
      machine()->memory()->Read(kSlbFixedBase, kSlbAllocationSize).value();

  // DMA from an OS-driven device into the PAL's code, its inputs, and the
  // hypervisor itself.
  ExpectDmaBlocked(kSlbFixedBase + kSlbCodeOffset);
  ExpectDmaBlocked(kSlbFixedBase + kSlbInputsOffset);
  ExpectDmaBlocked(hv_base);
  EXPECT_FALSE(machine()->DmaRead(kSlbFixedBase, 64).ok()) << "DEV must block reads too";

  // Guest-mode loads/stores from OS core 0 probing the protected frames.
  const uint64_t npt_before = machine()->npt_blocked_count();
  EXPECT_FALSE(machine()->GuestWrite(0, kSlbFixedBase + kSlbCodeOffset, BytesOf("hook")).ok());
  EXPECT_FALSE(machine()->GuestRead(0, kSlbFixedBase + kSlbInputsOffset, 32).ok());
  EXPECT_FALSE(machine()->GuestWrite(0, hv_base + 16, BytesOf("vmcb-patch")).ok());
  EXPECT_EQ(machine()->npt_blocked_count(), npt_before + 3);

  // Malicious hypercalls against the live session.
  ExpectDenied(hv::HvDenial::kRegionOverlap, [&] { return hv()->HcStartSession(kSlbFixedBase); });
  ExpectDenied(hv::HvDenial::kSessionNotRunning, [&] { return hv()->HcCollectOutputs(id); });

  // Nothing moved: the protected region is bit-for-bit what was measured.
  EXPECT_EQ(machine()->memory()->Read(kSlbFixedBase, kSlbAllocationSize).value(), slot_before);

  // And the besieged session still completes byte-identical to the
  // unattacked reference.
  Result<SessionRecord> record = hv()->RunSession(id, binary_, SlbCoreOptions());
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record.value().outputs, reference_.outputs);
  EXPECT_EQ(record.value().pcr17_during_execution, reference_.pcr17_during_execution);
  EXPECT_EQ(record.value().pcr17_final, reference_.pcr17_final);
  EXPECT_TRUE(hv()->HcCollectOutputs(id).ok());
}

TEST_F(HvAdversaryTest, DualSlotSessionsAreMutuallyProtected) {
  const uint64_t first = OpenProtectedSession(kSlbFixedBase);
  const uint64_t second = OpenProtectedSession(kSecondSlot);
  ASSERT_NE(first, 0u);
  ASSERT_NE(second, 0u);

  // Both regions are off-limits to DMA and guest probes at once.
  ExpectDmaBlocked(kSlbFixedBase + kSlbCodeOffset);
  ExpectDmaBlocked(kSecondSlot + kSlbCodeOffset);
  EXPECT_FALSE(machine()->GuestRead(1, kSlbFixedBase, 16).ok());
  EXPECT_FALSE(machine()->GuestRead(1, kSecondSlot, 16).ok());

  Result<SessionRecord> ra = hv()->RunSession(first, binary_, SlbCoreOptions());
  Result<SessionRecord> rb = hv()->RunSession(second, binary_, SlbCoreOptions());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().outputs, reference_.outputs);
  EXPECT_EQ(rb.value().outputs, reference_.outputs);
  // Slot 0 is the classic fixed base, so its chain equals the reference;
  // the second slot's patched image measures differently by construction.
  EXPECT_EQ(ra.value().pcr17_final, reference_.pcr17_final);
  EXPECT_NE(rb.value().pcr17_final, reference_.pcr17_final);
  EXPECT_TRUE(hv()->HcCollectOutputs(first).ok());
  EXPECT_TRUE(hv()->HcCollectOutputs(second).ok());
}

TEST_F(HvAdversaryTest, AmbientHypercallBatteryIsFullyTyped) {
  // Between rounds (no live session), every malformed hypercall still dies
  // with its own denial - the exact list the fleet campaign draws from.
  ExpectDenied(hv::HvDenial::kBadRegion, [&] { return hv()->HcStartSession(0x1000); });
  ExpectDenied(hv::HvDenial::kSessionNotFound,
               [&] { return hv()->RunSession(0xdead, binary_, SlbCoreOptions()); });
  ExpectDenied(hv::HvDenial::kBadHypercallParam, [&] { return hv()->HcCollectOutputs(0); });
  ExpectDenied(hv::HvDenial::kSessionNotFound, [&] { return hv()->HcCollectOutputs(0xdead); });
  ExpectDenied(hv::HvDenial::kAlreadyLaunched, [&] { return hv()->LateLaunch(); });

  // A validly staged image started on a core the OS owns (the header check
  // passes, the core hijack is what gets refused).
  ASSERT_TRUE(platform_->flicker_module()->WriteSlb(binary_.image).ok());
  ASSERT_TRUE(platform_->flicker_module()->WriteInputs(BytesOf("adversary-input")).ok());
  ASSERT_TRUE(platform_->flicker_module()->StageForHypervisorAt(kSlbFixedBase).ok());
  ExpectDenied(hv::HvDenial::kBadCore,
               [&] { return hv()->HcStartSession(kSlbFixedBase, /*requested_core=*/0); });

  ASSERT_TRUE(machine()->memory()->Write(kSlbFixedBase, Bytes{2, 0, 9, 9}).ok());
  ExpectDenied(hv::HvDenial::kBadHeader, [&] { return hv()->HcStartSession(kSlbFixedBase); });

  // The hypervisor's own frames stay sealed while idle.
  EXPECT_FALSE(machine()->GuestWrite(0, hv()->config().hv_base + 8, BytesOf("x")).ok());
  ExpectDmaBlocked(hv()->config().hv_base + 64);
}

TEST_F(HvAdversaryTest, CompletedSlotsReopenToTheOs) {
  // After a session completes and its outputs are collected, the slot
  // returns to the OS: DMA and guest traffic flow again. Protection is a
  // session property, not a permanent land grab.
  const uint64_t id = OpenProtectedSession(kSlbFixedBase);
  ASSERT_TRUE(hv()->RunSession(id, binary_, SlbCoreOptions()).ok());
  ASSERT_TRUE(hv()->HcCollectOutputs(id).ok());

  EXPECT_TRUE(machine()->DmaWrite(kSlbFixedBase + kSlbCodeOffset, BytesOf("recycled")).ok());
  EXPECT_TRUE(machine()->GuestRead(0, kSlbFixedBase, 16).ok());
}

}  // namespace
}  // namespace flicker
