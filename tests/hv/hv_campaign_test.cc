// The fleet-scale cross-core campaign: seed determinism (byte-identical
// JSON, pinned event order), a clean adversary ledger (accepted_wrong and
// attacks_mistyped at zero), and the concurrent mode's pause advantage
// holding up under continuous attack.

#include <gtest/gtest.h>

#include "src/hv/hv_campaign.h"

namespace flicker {
namespace hv {
namespace {

HvCampaignConfig CiConfig(uint64_t seed = 1) {
  HvCampaignConfig config;
  config.seed = seed;
  config.num_machines = 2;
  config.duration_ms = 5000.0;
  return config;
}

TEST(HvCampaignTest, SameSeedIsByteIdentical) {
  Result<HvCampaignStats> a = RunHvCampaign(CiConfig());
  Result<HvCampaignStats> b = RunHvCampaign(CiConfig());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a.value().order_digest, b.value().order_digest);
  EXPECT_EQ(a.value().events_processed, b.value().events_processed);
  EXPECT_EQ(a.value().ToJson(CiConfig()), b.value().ToJson(CiConfig()));
}

TEST(HvCampaignTest, DifferentSeedsDiverge) {
  Result<HvCampaignStats> a = RunHvCampaign(CiConfig(1));
  Result<HvCampaignStats> b = RunHvCampaign(CiConfig(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().order_digest, b.value().order_digest);
}

TEST(HvCampaignTest, AdversaryLedgerIsClean) {
  Result<HvCampaignStats> run = RunHvCampaign(CiConfig());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const HvCampaignStats& stats = run.value();

  // Work actually happened: rounds, overlapping sessions, attacked rounds.
  EXPECT_GT(stats.rounds_injected, 0u);
  EXPECT_EQ(stats.rounds_completed, stats.rounds_injected);
  EXPECT_EQ(stats.rounds_failed, 0u);
  EXPECT_GT(stats.dual_rounds, 0u);
  EXPECT_GT(stats.attacked_rounds, 0u);
  EXPECT_GT(stats.sessions_completed, stats.rounds_injected);
  EXPECT_EQ(stats.hv_launches, 2u);  // One late launch per machine, ever.

  // The whole point: every attack launched was denied, every denial was
  // the right type, and nothing wrong was ever accepted.
  EXPECT_GT(stats.attacks_launched, 0u);
  EXPECT_EQ(stats.attacks_denied, stats.attacks_launched);
  EXPECT_EQ(stats.attacks_mistyped, 0u);
  EXPECT_EQ(stats.accepted_wrong, 0u);

  // The battery exercised the hardware protections, not just hypercalls.
  EXPECT_GT(stats.dma_blocked, 0u);
  EXPECT_GT(stats.npt_blocked, 0u);
  EXPECT_GT(stats.denials[static_cast<size_t>(HvDenial::kNptViolation)], 0u);
  EXPECT_GT(stats.denials[static_cast<size_t>(HvDenial::kRegionOverlap)], 0u);
  EXPECT_GT(stats.denials[static_cast<size_t>(HvDenial::kSessionNotRunning)], 0u);

  // Under continuous attack the OS still pauses well under what a classic
  // suspend-per-session fleet would have. The CI horizon is short, so the
  // two one-time launch SKINITs dominate the pause ledger; the flagship
  // bench (micro_hv, 30 s horizon) enforces the real >= 5x floor.
  EXPECT_GT(stats.PauseReduction(), 3.0);
  EXPECT_GT(stats.SessionsPerSecond(), 0.0);
  EXPECT_GE(stats.LatencyPercentileMs(0.99), stats.LatencyPercentileMs(0.50));
}

TEST(HvCampaignTest, ConfigIsValidated) {
  HvCampaignConfig too_few_cores = CiConfig();
  too_few_cores.num_cpus = 2;
  EXPECT_FALSE(RunHvCampaign(too_few_cores).ok());

  HvCampaignConfig no_machines = CiConfig();
  no_machines.num_machines = 0;
  EXPECT_FALSE(RunHvCampaign(no_machines).ok());
}

}  // namespace
}  // namespace hv
}  // namespace flicker
