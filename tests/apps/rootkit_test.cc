// The rootkit-detector application (§6.1): clean-kernel acceptance, rootkit
// detection, and resistance to a lying OS.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/rootkit_detector.h"

namespace flicker {
namespace {

class RootkitTest : public ::testing::Test {
 protected:
  RootkitTest()
      : binary_(BuildPal(std::make_shared<RootkitDetectorPal>()).take()),
        cert_(ca_.Certify(platform_.tpm()->aik_public(), "employee-laptop")),
        monitor_(&binary_, platform_.kernel()->pristine_measurement(), ca_.public_key(), cert_),
        channel_(platform_.clock()) {}

  FlickerPlatform platform_;
  PalBinary binary_;
  PrivacyCa ca_;
  AikCertificate cert_;
  RootkitMonitor monitor_;
  Channel channel_;
};

TEST_F(RootkitTest, CleanKernelPasses) {
  RootkitMonitor::QueryReport report = monitor_.Query(&platform_, &channel_);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_TRUE(report.kernel_clean);
  EXPECT_EQ(report.reported_measurement, platform_.kernel()->pristine_measurement());
}

TEST_F(RootkitTest, SyscallHookDetected) {
  ASSERT_TRUE(platform_.kernel()->InstallSyscallHook(11).ok());
  RootkitMonitor::QueryReport report = monitor_.Query(&platform_, &channel_);
  ASSERT_TRUE(report.status.ok());  // Attestation itself is fine...
  EXPECT_FALSE(report.kernel_clean);  // ...but the hash exposes the hook.
}

TEST_F(RootkitTest, TextPatchDetected) {
  ASSERT_TRUE(platform_.kernel()->PatchText(0x2000, BytesOf("\x90\x90\xeb\xfe")).ok());
  RootkitMonitor::QueryReport report = monitor_.Query(&platform_, &channel_);
  ASSERT_TRUE(report.status.ok());
  EXPECT_FALSE(report.kernel_clean);
}

TEST_F(RootkitTest, CleanAfterRestore) {
  ASSERT_TRUE(platform_.kernel()->InstallSyscallHook(11).ok());
  ASSERT_TRUE(platform_.kernel()->RestorePristine().ok());
  RootkitMonitor::QueryReport report = monitor_.Query(&platform_, &channel_);
  EXPECT_TRUE(report.kernel_clean);
}

TEST_F(RootkitTest, MaliciousModuleTamperingCaughtByAttestation) {
  // The OS corrupts the detector before launch (to run a doctored scanner
  // that would report "clean" over a rootkitted kernel). The measurement in
  // PCR 17 changes, so verification fails.
  ASSERT_TRUE(platform_.kernel()->InstallSyscallHook(11).ok());
  platform_.flicker_module()->set_corrupt_slb_before_launch(true);
  RootkitMonitor::QueryReport report = monitor_.Query(&platform_, &channel_);
  EXPECT_FALSE(report.status.ok());
  EXPECT_FALSE(report.kernel_clean);
}

TEST_F(RootkitTest, QueryLatencyMatchesTable1) {
  RootkitMonitor::QueryReport report = monitor_.Query(&platform_, &channel_);
  ASSERT_TRUE(report.status.ok());
  // Table 1: total query latency 1022.7 ms (SKINIT 15.4 + extend 1.2 +
  // kernel hash 22.0 + quote 972.7 + network). Allow ~3%.
  EXPECT_NEAR(report.total_latency_ms, 1022.7, 30.0);
  EXPECT_NEAR(report.quote_ms, 972.7, 1.0);
  EXPECT_NEAR(report.skinit_ms, 15.4, 1.5);
}

TEST_F(RootkitTest, RepeatedQueriesStayConsistent) {
  for (int i = 0; i < 3; ++i) {
    RootkitMonitor::QueryReport report = monitor_.Query(&platform_, &channel_);
    ASSERT_TRUE(report.status.ok()) << "iteration " << i;
    EXPECT_TRUE(report.kernel_clean);
  }
}

TEST(RootkitPalTest, RejectsGarbageRegionList) {
  FlickerPlatform platform;
  PalBinary binary = BuildPal(std::make_shared<RootkitDetectorPal>()).take();
  Result<FlickerSessionResult> result =
      platform.ExecuteSession(binary, BytesOf("not a region list"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
}

TEST(RootkitPalTest, TcbIsDetectorPlusLibraries) {
  PalBinary binary = BuildPal(std::make_shared<RootkitDetectorPal>()).take();
  // SLB Core 94 + TPM Driver 216 + detector app 220 (SHA-1 inlined).
  EXPECT_EQ(binary.tcb.total_lines, 94 + 216 + 220);
}

}  // namespace
}  // namespace flicker
