// The certificate-authority application (§6.3.2): key protection, policy
// enforcement, database continuity and rollback detection.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/ca.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

class CaTest : public ::testing::Test {
 protected:
  CaTest()
      : binary_(MakeBinary()), host_(&platform_, &binary_, "Flicker Test CA") {
    owner_auth_ = Sha1::Digest(BytesOf("owner"));
    EXPECT_TRUE(platform_.tpm()->TakeOwnership(owner_auth_).ok());
  }

  static PalBinary MakeBinary() {
    PalBuildOptions options;
    options.measurement_stub = true;
    return BuildPal(std::make_shared<CaPal>(), options).take();
  }

  CertificateSigningRequest MakeCsr(const std::string& subject) {
    CertificateSigningRequest csr;
    csr.subject = subject;
    Drbg rng(BytesOf("subject-key:" + subject));
    csr.subject_public_key = RsaGenerateKey(512, &rng).pub.Serialize();
    return csr;
  }

  CaPolicy CorpPolicy() {
    CaPolicy policy;
    policy.allowed_suffixes = {".corp.example.com", ".example.org"};
    return policy;
  }

  FlickerPlatform platform_;
  PalBinary binary_;
  CertificateAuthorityHost host_;
  Bytes owner_auth_;
};

TEST_F(CaTest, InitializeProducesPublicKey) {
  Result<Bytes> pub = host_.Initialize(owner_auth_);
  ASSERT_TRUE(pub.ok()) << pub.status().ToString();
  EXPECT_TRUE(RsaPublicKey::Deserialize(pub.value()).ok());
  EXPECT_FALSE(host_.sealed_state().empty());
}

TEST_F(CaTest, SignsApprovedCsr) {
  ASSERT_TRUE(host_.Initialize(owner_auth_).ok());
  CertificateAuthorityHost::SignReport report =
      host_.SignCertificate(MakeCsr("www.corp.example.com"), CorpPolicy());
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.certificate.serial, 1u);
  EXPECT_EQ(report.certificate.subject, "www.corp.example.com");
  EXPECT_EQ(report.certificate.issuer, "Flicker Test CA");
  EXPECT_TRUE(
      CertificateAuthorityHost::VerifyCertificate(host_.ca_public_key(), report.certificate));
}

TEST_F(CaTest, PolicyRejectsOutOfScopeSubject) {
  ASSERT_TRUE(host_.Initialize(owner_auth_).ok());
  CertificateAuthorityHost::SignReport report =
      host_.SignCertificate(MakeCsr("www.evil.com"), CorpPolicy());
  ASSERT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kPermissionDenied);
}

TEST_F(CaTest, SerialNumbersAdvanceAcrossSessions) {
  ASSERT_TRUE(host_.Initialize(owner_auth_).ok());
  for (uint64_t i = 1; i <= 3; ++i) {
    CertificateAuthorityHost::SignReport report = host_.SignCertificate(
        MakeCsr("host" + std::to_string(i) + ".corp.example.com"), CorpPolicy());
    ASSERT_TRUE(report.status.ok());
    EXPECT_EQ(report.certificate.serial, i);
  }
}

TEST_F(CaTest, RollbackOfCertDatabaseDetected) {
  ASSERT_TRUE(host_.Initialize(owner_auth_).ok());
  Bytes old_state = host_.sealed_state();
  ASSERT_TRUE(host_.SignCertificate(MakeCsr("a.corp.example.com"), CorpPolicy()).status.ok());

  // Malicious OS rolls the database back to before the first signature
  // (e.g. to reuse a serial or erase an issued cert from the log).
  host_.set_sealed_state(old_state);
  CertificateAuthorityHost::SignReport report =
      host_.SignCertificate(MakeCsr("b.corp.example.com"), CorpPolicy());
  ASSERT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kReplayDetected);
}

TEST_F(CaTest, SignatureBindsAllFields) {
  ASSERT_TRUE(host_.Initialize(owner_auth_).ok());
  CertificateAuthorityHost::SignReport report =
      host_.SignCertificate(MakeCsr("www.corp.example.com"), CorpPolicy());
  ASSERT_TRUE(report.status.ok());

  Certificate tampered = report.certificate;
  tampered.subject = "www.evil.com";
  EXPECT_FALSE(CertificateAuthorityHost::VerifyCertificate(host_.ca_public_key(), tampered));

  tampered = report.certificate;
  tampered.serial = 999;
  EXPECT_FALSE(CertificateAuthorityHost::VerifyCertificate(host_.ca_public_key(), tampered));

  tampered = report.certificate;
  tampered.issuer = "Another CA";
  EXPECT_FALSE(CertificateAuthorityHost::VerifyCertificate(host_.ca_public_key(), tampered));
}

TEST_F(CaTest, SignBeforeInitializeRejected) {
  CertificateAuthorityHost::SignReport report =
      host_.SignCertificate(MakeCsr("x.corp.example.com"), CorpPolicy());
  EXPECT_EQ(report.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(CaTest, SigningLatencyMatchesSection742) {
  ASSERT_TRUE(host_.Initialize(owner_auth_).ok());
  CertificateAuthorityHost::SignReport report =
      host_.SignCertificate(MakeCsr("www.corp.example.com"), CorpPolicy());
  ASSERT_TRUE(report.status.ok());
  // §7.4.2: 906.2 ms average (unseal-dominated). Allow 10%.
  EXPECT_NEAR(report.session_ms, 906.2, 91.0);
}

TEST(CaPolicyTest, SuffixMatching) {
  CaPolicy policy;
  policy.allowed_suffixes = {".corp.example.com"};
  EXPECT_TRUE(policy.Approves("www.corp.example.com"));
  EXPECT_TRUE(policy.Approves("a.b.corp.example.com"));
  EXPECT_FALSE(policy.Approves("corp.example.com.evil.com"));
  EXPECT_FALSE(policy.Approves("example.com"));
  EXPECT_FALSE(policy.Approves(""));
  EXPECT_FALSE(CaPolicy{}.Approves("anything"));
}

TEST(CaPolicyTest, SerializationRoundTrip) {
  CaPolicy policy;
  policy.allowed_suffixes = {".a.com", ".b.org"};
  Result<CaPolicy> back = CaPolicy::Deserialize(policy.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().allowed_suffixes, policy.allowed_suffixes);
  EXPECT_FALSE(CaPolicy::Deserialize(Bytes(2, 9)).ok());
}

TEST(CertificateTest, SerializationRoundTrip) {
  Certificate cert;
  cert.serial = 42;
  cert.subject = "host.example.org";
  cert.subject_public_key = BytesOf("keybytes");
  cert.issuer = "Issuer";
  cert.signature = BytesOf("sig");
  Result<Certificate> back = Certificate::Deserialize(cert.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().serial, 42u);
  EXPECT_EQ(back.value().subject, cert.subject);
  EXPECT_EQ(back.value().signature, cert.signature);
  EXPECT_FALSE(Certificate::Deserialize(BytesOf("x")).ok());
}

TEST(CsrTest, SerializationRoundTrip) {
  CertificateSigningRequest csr;
  csr.subject = "www.example.org";
  csr.subject_public_key = BytesOf("pk");
  Result<CertificateSigningRequest> back =
      CertificateSigningRequest::Deserialize(csr.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().subject, csr.subject);
  EXPECT_FALSE(CertificateSigningRequest::Deserialize(Bytes(1, 0)).ok());
}

}  // namespace
}  // namespace flicker
