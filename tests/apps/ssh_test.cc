// The SSH password-authentication application (§6.3.1, Fig. 7).

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/ssh.h"
#include "src/crypto/md5crypt.h"

namespace flicker {
namespace {

class SshTest : public ::testing::Test {
 protected:
  SshTest()
      : binary_(MakeBinary()),
        server_(&platform_, &binary_),
        cert_(ca_.Certify(platform_.tpm()->aik_public(), "ssh-server")),
        client_(&binary_, ca_.public_key(), cert_) {
    EXPECT_TRUE(server_.AddUser("alice", "correct horse", "a1b2c3d4").ok());
  }

  static PalBinary MakeBinary() {
    PalBuildOptions options;
    options.measurement_stub = true;
    return BuildPal(std::make_shared<SshPal>(), options).take();
  }

  // Runs the full Fig. 7 protocol; returns the login outcome.
  Result<SshServer::LoginResult> FullLogin(const std::string& user,
                                           const std::string& password) {
    Bytes setup_nonce = client_.MakeNonce();
    Result<SshServer::SetupResult> setup = server_.Setup(setup_nonce);
    if (!setup.ok()) {
      return setup.status();
    }
    FLICKER_RETURN_IF_ERROR(client_.VerifyServerSetup(setup.value(), setup_nonce));

    Bytes login_nonce = client_.MakeNonce();
    Result<Bytes> ciphertext = client_.EncryptPassword(password, login_nonce);
    if (!ciphertext.ok()) {
      return ciphertext.status();
    }
    return server_.HandleLogin(user, ciphertext.value(), login_nonce);
  }

  FlickerPlatform platform_;
  PalBinary binary_;
  SshServer server_;
  PrivacyCa ca_;
  AikCertificate cert_;
  SshClient client_;
};

TEST_F(SshTest, CorrectPasswordAuthenticates) {
  Result<SshServer::LoginResult> login = FullLogin("alice", "correct horse");
  ASSERT_TRUE(login.ok()) << login.status().ToString();
  EXPECT_TRUE(login.value().authenticated);
}

TEST_F(SshTest, WrongPasswordRejected) {
  Result<SshServer::LoginResult> login = FullLogin("alice", "wrong horse");
  ASSERT_TRUE(login.ok());
  EXPECT_FALSE(login.value().authenticated);
}

TEST_F(SshTest, UnknownUserRejected) {
  Result<SshServer::LoginResult> login = FullLogin("mallory", "whatever");
  ASSERT_FALSE(login.ok());
  EXPECT_EQ(login.status().code(), StatusCode::kNotFound);
}

TEST_F(SshTest, ReplayedCiphertextRejected) {
  Bytes setup_nonce = client_.MakeNonce();
  Result<SshServer::SetupResult> setup = server_.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(client_.VerifyServerSetup(setup.value(), setup_nonce).ok());

  Bytes nonce1 = client_.MakeNonce();
  Result<Bytes> ciphertext = client_.EncryptPassword("correct horse", nonce1);
  ASSERT_TRUE(ciphertext.ok());
  Result<SshServer::LoginResult> first = server_.HandleLogin("alice", ciphertext.value(), nonce1);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().authenticated);

  // Replay the captured ciphertext against a fresh server nonce: the PAL's
  // nonce check fires (Fig. 7: "if (nonce' != nonce) then abort").
  Bytes nonce2 = client_.MakeNonce();
  Result<SshServer::LoginResult> replay = server_.HandleLogin("alice", ciphertext.value(), nonce2);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kReplayDetected);
}

TEST_F(SshTest, ClientRejectsCorruptedSetup) {
  Bytes setup_nonce = client_.MakeNonce();
  platform_.flicker_module()->set_corrupt_slb_before_launch(true);
  Result<SshServer::SetupResult> setup = server_.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());  // The session runs...
  Status verdict = client_.VerifyServerSetup(setup.value(), setup_nonce);
  EXPECT_FALSE(verdict.ok());  // ...but the client sees a different PAL.
  EXPECT_TRUE(client_.pinned_public_key().empty());
}

TEST_F(SshTest, ClientRejectsSwappedPublicKey) {
  Bytes setup_nonce = client_.MakeNonce();
  Result<SshServer::SetupResult> setup = server_.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());

  // Man-in-the-middle OS substitutes its own public key in the outputs.
  SshServer::SetupResult forged = setup.value();
  Drbg rng(0xbad);
  RsaPrivateKey mitm_key = RsaGenerateKey(1024, &rng);
  SecureChannelKeyMaterial forged_material =
      SecureChannelKeyMaterial::Deserialize(forged.setup_outputs).take();
  forged_material.public_key = mitm_key.pub.Serialize();
  forged.setup_outputs = forged_material.Serialize();
  forged.public_key = forged_material.public_key;

  Status verdict = client_.VerifyServerSetup(forged, setup_nonce);
  EXPECT_FALSE(verdict.ok());  // Outputs are covered by PCR 17.
}

TEST_F(SshTest, EncryptBeforeVerifyRejected) {
  Result<Bytes> ciphertext = client_.EncryptPassword("pw", client_.MakeNonce());
  ASSERT_FALSE(ciphertext.ok());
  EXPECT_EQ(ciphertext.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SshTest, PasswordNeverVisibleToServerInCleartext) {
  // The server only ever handles the PKCS#1 ciphertext and the md5crypt
  // hash; check the ciphertext does not contain the password bytes.
  Bytes setup_nonce = client_.MakeNonce();
  Result<SshServer::SetupResult> setup = server_.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(client_.VerifyServerSetup(setup.value(), setup_nonce).ok());
  Bytes login_nonce = client_.MakeNonce();
  Result<Bytes> ciphertext = client_.EncryptPassword("correct horse", login_nonce);
  ASSERT_TRUE(ciphertext.ok());

  std::string ct(ciphertext.value().begin(), ciphertext.value().end());
  EXPECT_EQ(ct.find("correct horse"), std::string::npos);
}

TEST_F(SshTest, Fig9TimingShape) {
  Bytes setup_nonce = client_.MakeNonce();
  Result<SshServer::SetupResult> setup = server_.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());
  // PAL 1 (Fig. 9a): SKINIT 14.3 + KeyGen 185.7 + Seal 10.2 ~ 217 ms.
  EXPECT_NEAR(setup.value().skinit_ms, 14.3, 1.5);
  EXPECT_NEAR(setup.value().pal1_total_ms, 217.1, 30.0);

  ASSERT_TRUE(client_.VerifyServerSetup(setup.value(), setup_nonce).ok());
  Bytes login_nonce = client_.MakeNonce();
  Result<Bytes> ciphertext = client_.EncryptPassword("correct horse", login_nonce);
  ASSERT_TRUE(ciphertext.ok());
  Result<SshServer::LoginResult> login =
      server_.HandleLogin("alice", ciphertext.value(), login_nonce);
  ASSERT_TRUE(login.ok());
  // PAL 2 (Fig. 9b): SKINIT 14.3 + Unseal ~900 + Decrypt 4.6 ~ 937 ms.
  EXPECT_NEAR(login.value().pal2_total_ms, 937.6, 40.0);
}

TEST_F(SshTest, ReturningClientSkipsSetupSession) {
  // First connection: full setup + verification.
  Bytes setup_nonce = client_.MakeNonce();
  Result<SshServer::SetupResult> setup = server_.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(client_.VerifyServerSetup(setup.value(), setup_nonce).ok());
  ASSERT_TRUE(server_.HasKeyMaterial());

  // Reconnect: the client already pinned K_PAL; it logs in directly with no
  // new PAL 1 session (the §6.3.1 key-reuse optimization).
  double t0 = platform_.clock()->NowMillis();
  Bytes login_nonce = client_.MakeNonce();
  Result<Bytes> ciphertext = client_.EncryptPassword("correct horse", login_nonce);
  ASSERT_TRUE(ciphertext.ok());
  Result<SshServer::LoginResult> login =
      server_.HandleLogin("alice", ciphertext.value(), login_nonce);
  double reconnect_ms = platform_.clock()->NowMillis() - t0;
  ASSERT_TRUE(login.ok());
  EXPECT_TRUE(login.value().authenticated);
  // Reconnect cost is one login PAL, not keygen + quote (~2.2 s first time).
  EXPECT_LT(reconnect_ms, 1000.0);
}

TEST_F(SshTest, MultipleUsersShareThePalKey) {
  ASSERT_TRUE(server_.AddUser("bob", "bobs password", "bbbbbbbb").ok());
  Bytes setup_nonce = client_.MakeNonce();
  Result<SshServer::SetupResult> setup = server_.Setup(setup_nonce);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(client_.VerifyServerSetup(setup.value(), setup_nonce).ok());

  for (const auto& [user, password] :
       std::vector<std::pair<std::string, std::string>>{{"alice", "correct horse"},
                                                        {"bob", "bobs password"}}) {
    Bytes nonce = client_.MakeNonce();
    Result<Bytes> ciphertext = client_.EncryptPassword(password, nonce);
    ASSERT_TRUE(ciphertext.ok());
    Result<SshServer::LoginResult> login = server_.HandleLogin(user, ciphertext.value(), nonce);
    ASSERT_TRUE(login.ok()) << user;
    EXPECT_TRUE(login.value().authenticated) << user;
  }
  // Cross-user: alice's password does not open bob's account.
  Bytes nonce = client_.MakeNonce();
  Result<Bytes> wrong = client_.EncryptPassword("correct horse", nonce);
  Result<SshServer::LoginResult> login = server_.HandleLogin("bob", wrong.value(), nonce);
  ASSERT_TRUE(login.ok());
  EXPECT_FALSE(login.value().authenticated);
}

TEST(SshPalTest, GarbageModeRejected) {
  FlickerPlatform platform;
  PalBinary binary = BuildPal(std::make_shared<SshPal>()).take();
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary, BytesOf("\x09"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
}

}  // namespace
}  // namespace flicker
