// The distributed-computing application (§6.2): correct factoring across
// many sessions, MAC-protected state, tamper detection, overhead accounting.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/distributed.h"
#include "src/common/serde.h"

namespace flicker {
namespace {

class DistributedTest : public ::testing::Test {
 protected:
  DistributedTest() : binary_(MakeBinary()), client_(&platform_, &binary_) {}

  static PalBinary MakeBinary() {
    PalBuildOptions options;
    options.measurement_stub = true;  // The paper's optimized configuration.
    return BuildPal(std::make_shared<DistributedPal>(), options).take();
  }

  FlickerPlatform platform_;
  PalBinary binary_;
  BoincClient client_;
};

TEST_F(DistributedTest, InitializeSealsKey) {
  ASSERT_TRUE(client_.Initialize().ok());
  EXPECT_FALSE(client_.sealed_key().empty());
}

TEST_F(DistributedTest, FactorsSmallCompositeAcrossSessions) {
  ASSERT_TRUE(client_.Initialize().ok());
  FactorWorkUnit unit;
  unit.composite = 2ULL * 3 * 5 * 7 * 11 * 13;  // 30030.
  unit.search_limit = 40000;
  BoincClient::RunStats stats = client_.Process(unit, /*slice_ms=*/50);
  ASSERT_TRUE(stats.status.ok()) << stats.status.ToString();
  EXPECT_GT(stats.sessions, 1);  // 40000 candidates at 181/ms needs >1 50 ms slice.
  EXPECT_EQ(stats.divisors, BoincServer::ReferenceFactors(unit));
}

TEST_F(DistributedTest, SingleSessionWhenSliceLargeEnough) {
  ASSERT_TRUE(client_.Initialize().ok());
  FactorWorkUnit unit;
  unit.composite = 91;  // 7 * 13.
  unit.search_limit = 1000;
  BoincClient::RunStats stats = client_.Process(unit, /*slice_ms=*/100);
  ASSERT_TRUE(stats.status.ok());
  EXPECT_EQ(stats.sessions, 1);
  EXPECT_EQ(stats.divisors, (std::vector<uint64_t>{7, 13, 91}));
}

TEST_F(DistributedTest, PrimeHasNoSmallDivisors) {
  ASSERT_TRUE(client_.Initialize().ok());
  FactorWorkUnit unit;
  unit.composite = 1000003;  // Prime.
  unit.search_limit = 1000;  // Search below it: nothing to find.
  BoincClient::RunStats stats = client_.Process(unit, 100);
  ASSERT_TRUE(stats.status.ok());
  EXPECT_TRUE(stats.divisors.empty());
}

TEST_F(DistributedTest, OverheadDominatedByUnseal) {
  ASSERT_TRUE(client_.Initialize().ok());
  FactorWorkUnit unit;
  unit.composite = 12345677;
  unit.search_limit = 200000;  // ~1.1 s of work at 181/ms.
  double clock_before = platform_.clock()->NowMillis();
  BoincClient::RunStats stats = client_.Process(unit, /*slice_ms=*/2000);
  ASSERT_TRUE(stats.status.ok());
  double elapsed = platform_.clock()->NowMillis() - clock_before;
  // One session: ~14 ms SKINIT (stub) + ~905 ms unseal + ~1100 ms work.
  EXPECT_EQ(stats.sessions, 1);
  EXPECT_NEAR(elapsed, 14.3 + 905 + 1105, 60.0);
  EXPECT_GT(stats.overhead_ms, 900.0);
  EXPECT_LT(stats.overhead_ms, 1000.0);
}

TEST_F(DistributedTest, TamperedStateDetected) {
  ASSERT_TRUE(client_.Initialize().ok());

  // Run one slice manually, corrupt the MACed state, feed it back.
  Writer in;
  in.U8(kDistributedModeWork);
  in.Blob(client_.sealed_key());
  in.Blob(Bytes());
  in.Blob(Bytes());
  in.U64(30030);
  in.U64(100000);
  in.U64(1000);
  Result<FlickerSessionResult> first = platform_.ExecuteSession(binary_, in.Take());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().ok());
  Reader out(first.value().outputs());
  ASSERT_EQ(out.U8(), 0);  // Not done.
  Bytes state = out.Blob();
  Bytes mac = out.Blob();

  // The malicious OS edits the checkpoint (e.g., skips work / fakes found
  // divisors).
  state[0] ^= 0x01;
  Writer in2;
  in2.U8(kDistributedModeWork);
  in2.Blob(client_.sealed_key());
  in2.Blob(state);
  in2.Blob(mac);
  in2.U64(30030);
  in2.U64(100000);
  in2.U64(1000);
  Result<FlickerSessionResult> second = platform_.ExecuteSession(binary_, in2.Take());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().ok());
  EXPECT_EQ(second.value().record.pal_status.code(), StatusCode::kIntegrityFailure);
}

TEST_F(DistributedTest, ForgedMacDetected) {
  ASSERT_TRUE(client_.Initialize().ok());
  FactorState fake_state;
  fake_state.next_divisor = 99999;  // Claim the work is nearly done.
  Bytes state = fake_state.Serialize();
  Bytes forged_mac(20, 0xab);  // The OS does not know the sealed HMAC key.

  Writer in;
  in.U8(kDistributedModeWork);
  in.Blob(client_.sealed_key());
  in.Blob(state);
  in.Blob(forged_mac);
  in.U64(30030);
  in.U64(100000);
  in.U64(1000);
  Result<FlickerSessionResult> result = platform_.ExecuteSession(binary_, in.Take());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  EXPECT_EQ(result.value().record.pal_status.code(), StatusCode::kIntegrityFailure);
}

TEST_F(DistributedTest, UninitializedClientRejected) {
  FactorWorkUnit unit;
  unit.composite = 6;
  unit.search_limit = 10;
  BoincClient::RunStats stats = client_.Process(unit, 100);
  EXPECT_EQ(stats.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(DistributedTest, GarbageInputsRejected) {
  Result<FlickerSessionResult> result = platform_.ExecuteSession(binary_, BytesOf("\x07"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  EXPECT_EQ(result.value().record.pal_status.code(), StatusCode::kInvalidArgument);
}

TEST_F(DistributedTest, ServerVerifiesAttestedResult) {
  ASSERT_TRUE(client_.Initialize().ok());
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform_.tpm()->aik_public(), "volunteer");
  BoincServer server;

  FactorWorkUnit unit;
  unit.composite = 30030;
  unit.search_limit = 20000;
  Bytes nonce = platform_.tpm()->GetRandom(20);
  BoincClient::RunStats stats = client_.Process(unit, 200, nonce);
  ASSERT_TRUE(stats.status.ok());

  Result<BoincClient::ResultSubmission> submission = client_.SubmitResult(nonce);
  ASSERT_TRUE(submission.ok()) << submission.status().ToString();

  Result<std::vector<uint64_t>> verified =
      server.VerifyResult(binary_, submission.value(), cert, ca.public_key(), nonce);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(verified.value(), BoincServer::ReferenceFactors(unit));
}

TEST_F(DistributedTest, ServerRejectsForgedResult) {
  ASSERT_TRUE(client_.Initialize().ok());
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform_.tpm()->aik_public(), "volunteer");
  BoincServer server;

  FactorWorkUnit unit;
  unit.composite = 30030;
  unit.search_limit = 20000;
  Bytes nonce = platform_.tpm()->GetRandom(20);
  ASSERT_TRUE(client_.Process(unit, 200, nonce).status.ok());
  Result<BoincClient::ResultSubmission> submission = client_.SubmitResult(nonce);
  ASSERT_TRUE(submission.ok());

  // A cheating client edits the result (claims extra divisors) after the
  // session: the attestation no longer matches.
  BoincClient::ResultSubmission forged = submission.value();
  FactorState fake;
  fake.next_divisor = unit.search_limit;
  fake.found = {2, 3, 5, 7, 11, 13, 17};  // 17 is not a divisor of 30030.
  Writer out;
  out.U8(1);
  out.Blob(fake.Serialize());
  forged.final_outputs = out.Take();
  Result<std::vector<uint64_t>> verified =
      server.VerifyResult(binary_, forged, cert, ca.public_key(), nonce);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kIntegrityFailure);
}

TEST_F(DistributedTest, SubmitWithoutCompletionRejected) {
  ASSERT_TRUE(client_.Initialize().ok());
  Result<BoincClient::ResultSubmission> submission =
      client_.SubmitResult(platform_.tpm()->GetRandom(20));
  ASSERT_FALSE(submission.ok());
  EXPECT_EQ(submission.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BoincFleetTest, ServerAcceptsResultsFromMultipleVolunteers) {
  // Three volunteer machines (distinct TPMs/AIKs) process units for one
  // server; every submission verifies under its own certificate chain.
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<DistributedPal>(), options).take();
  PrivacyCa ca;
  BoincServer server;

  for (uint64_t volunteer = 0; volunteer < 3; ++volunteer) {
    FlickerPlatformConfig config;
    config.machine.tpm.manufacture_seed = 0x1000 + volunteer;  // Distinct TPM.
    FlickerPlatform platform(config);
    AikCertificate cert = ca.Certify(platform.tpm()->aik_public(),
                                     "volunteer-" + std::to_string(volunteer));

    BoincClient client(&platform, &binary);
    ASSERT_TRUE(client.Initialize().ok()) << volunteer;

    FactorWorkUnit unit;
    unit.composite = 6006 + volunteer * 30030;
    unit.search_limit = 10000;
    Bytes nonce = platform.tpm()->GetRandom(20);
    ASSERT_TRUE(client.Process(unit, 100, nonce).status.ok()) << volunteer;
    Result<BoincClient::ResultSubmission> submission = client.SubmitResult(nonce);
    ASSERT_TRUE(submission.ok()) << volunteer;

    Result<std::vector<uint64_t>> verified =
        server.VerifyResult(binary, submission.value(), cert, ca.public_key(), nonce);
    ASSERT_TRUE(verified.ok()) << volunteer << ": " << verified.status().ToString();
    EXPECT_EQ(verified.value(), BoincServer::ReferenceFactors(unit)) << volunteer;
  }
}

TEST(BoincFleetTest, CrossVolunteerQuoteRejected) {
  // A submission quoted by machine A cannot be passed off under machine B's
  // certificate.
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<DistributedPal>(), options).take();
  PrivacyCa ca;
  BoincServer server;

  FlickerPlatformConfig config_a;
  config_a.machine.tpm.manufacture_seed = 0xa;
  FlickerPlatform machine_a(config_a);
  FlickerPlatformConfig config_b;
  config_b.machine.tpm.manufacture_seed = 0xb;
  FlickerPlatform machine_b(config_b);
  AikCertificate cert_b = ca.Certify(machine_b.tpm()->aik_public(), "machine-b");

  BoincClient client(&machine_a, &binary);
  ASSERT_TRUE(client.Initialize().ok());
  FactorWorkUnit unit;
  unit.composite = 30030;
  unit.search_limit = 10000;
  Bytes nonce = machine_a.tpm()->GetRandom(20);
  ASSERT_TRUE(client.Process(unit, 100, nonce).status.ok());
  Result<BoincClient::ResultSubmission> submission = client.SubmitResult(nonce);
  ASSERT_TRUE(submission.ok());

  Result<std::vector<uint64_t>> verified =
      server.VerifyResult(binary, submission.value(), cert_b, ca.public_key(), nonce);
  ASSERT_FALSE(verified.ok());
}

TEST(FactorStateTest, SerializationRoundTrip) {
  FactorState state;
  state.next_divisor = 424242;
  state.found = {2, 3, 5, 424241};
  Result<FactorState> back = FactorState::Deserialize(state.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().next_divisor, state.next_divisor);
  EXPECT_EQ(back.value().found, state.found);
  EXPECT_FALSE(FactorState::Deserialize(Bytes(5, 0)).ok());
}

TEST(BoincServerTest, ReferenceFactorsCorrect) {
  BoincServer server;
  FactorWorkUnit unit = server.CreateWorkUnit(100);
  unit.search_limit = 101;
  EXPECT_EQ(BoincServer::ReferenceFactors(unit), (std::vector<uint64_t>{2, 4, 5, 10, 20, 25, 50, 100}));
}

}  // namespace
}  // namespace flicker
