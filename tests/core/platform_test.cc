// End-to-end Flicker sessions on the full platform: the Fig. 2 lifecycle,
// PCR 17 extend chain, OS protection, sealed state and replay protection,
// and the secure-channel module.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/core/sealed_state.h"
#include "src/core/secure_channel.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

// A PAL that echoes its inputs reversed - exercises the I/O path.
class EchoPal : public Pal {
 public:
  std::string name() const override { return "echo"; }
  std::vector<std::string> required_modules() const override { return {}; }
  size_t app_code_bytes() const override { return 128; }
  Status Execute(PalContext* context) override {
    Bytes out(context->inputs().rbegin(), context->inputs().rend());
    return context->SetOutputs(out);
  }
};

// A PAL that tries to read kernel memory - legal without OS protection,
// faults with it.
class SnoopPal : public Pal {
 public:
  explicit SnoopPal(uint64_t target) : target_(target) {}
  std::string name() const override { return "snoop"; }
  std::vector<std::string> required_modules() const override { return {}; }
  size_t app_code_bytes() const override { return 128; }
  Status Execute(PalContext* context) override {
    Result<Bytes> data = context->ReadMemory(target_, 64);
    if (!data.ok()) {
      return data.status();
    }
    return context->SetOutputs(data.value());
  }

 private:
  uint64_t target_;
};

// A PAL that fails.
class FailingPal : public Pal {
 public:
  std::string name() const override { return "failing"; }
  std::vector<std::string> required_modules() const override { return {}; }
  size_t app_code_bytes() const override { return 64; }
  Status Execute(PalContext*) override { return InternalError("PAL exploded"); }
};

// A PAL that writes a secret into SLB memory; the cleanup phase must erase
// it before the OS resumes.
class SecretWriterPal : public Pal {
 public:
  std::string name() const override { return "secret-writer"; }
  std::vector<std::string> required_modules() const override { return {}; }
  size_t app_code_bytes() const override { return 64; }
  Status Execute(PalContext* context) override {
    // Scribble a secret into the SLB stack region.
    return context->WriteMemory(context->slb_base() + kSlbStackOffset, BytesOf("TOPSECRET"));
  }
};

TEST(PlatformTest, HelloWorldEndToEnd) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());

  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok());
  EXPECT_EQ(result.value().outputs(), BytesOf("Hello, world"));

  // Outputs also surface through the sysfs entry.
  EXPECT_EQ(platform.flicker_module()->ReadOutputs().value(), BytesOf("Hello, world"));

  // The OS is back: interrupts on, paging on, APs running, DEV clear.
  EXPECT_FALSE(platform.machine()->in_secure_session());
  EXPECT_TRUE(platform.machine()->bsp()->interrupts_enabled);
  EXPECT_TRUE(platform.machine()->bsp()->paging_enabled);
  EXPECT_EQ(platform.machine()->bsp()->cr3, platform.kernel()->cr3());
  EXPECT_EQ(platform.machine()->cpu(1)->state, CpuState::kRunning);
}

TEST(PlatformTest, SessionsStartedCountsEveryStartAndNamesTheLatestId) {
  // Pins the accessor's contract: sessions_started() is the count of
  // sessions ever started - successful or not - and, because ids are
  // 1-based and assigned in start order, also the id of the latest one.
  FlickerPlatform platform;
  EXPECT_EQ(platform.sessions_started(), 0u);

  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> first = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().session_id, 1u);
  EXPECT_EQ(platform.sessions_started(), 1u);

  // A session that starts but fails inside the PAL still counts.
  Result<PalBinary> failing = BuildPal(std::make_shared<FailingPal>());
  ASSERT_TRUE(failing.ok());
  Result<FlickerSessionResult> failed = platform.ExecuteSession(failing.value(), Bytes());
  ASSERT_TRUE(failed.ok());
  EXPECT_FALSE(failed.value().ok());
  EXPECT_EQ(failed.value().session_id, 2u);
  EXPECT_EQ(platform.sessions_started(), 2u);

  Result<FlickerSessionResult> third = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().session_id, platform.sessions_started());
  EXPECT_EQ(platform.sessions_started(), 3u);
}

TEST(PlatformTest, EchoRoundTrip) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<EchoPal>());
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), BytesOf("abc"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().outputs(), BytesOf("cba"));
}

TEST(PlatformTest, Pcr17MatchesVerifierChain) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<EchoPal>());
  ASSERT_TRUE(binary.ok());

  Bytes inputs = BytesOf("attested input");
  Bytes nonce = Sha1::Digest(BytesOf("nonce"));
  SlbCoreOptions options;
  options.nonce = nonce;
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), inputs, options);
  ASSERT_TRUE(result.ok());

  // During execution PCR 17 held the execution value.
  EXPECT_EQ(result.value().record.pcr17_during_execution,
            ComputeExecutionPcr17(binary.value()));

  // After the closing extends it matches the verifier's full chain.
  SessionExpectation expectation;
  expectation.binary = &binary.value();
  expectation.inputs = inputs;
  expectation.outputs = result.value().outputs();
  expectation.nonce = nonce;
  EXPECT_EQ(result.value().record.pcr17_final, ComputeExpectedPcr17(expectation));
  EXPECT_EQ(platform.tpm()->PcrRead(kSkinitPcr).value(), result.value().record.pcr17_final);
}

TEST(PlatformTest, MeasurementStubChainVerifies) {
  FlickerPlatform platform;
  PalBuildOptions build;
  build.measurement_stub = true;
  Result<PalBinary> binary = BuildPal(std::make_shared<EchoPal>(), build);
  ASSERT_TRUE(binary.ok());

  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), BytesOf("x"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().outputs(), BytesOf("x"));

  // SKINIT only streamed the stub: cheap.
  EXPECT_LT(result.value().skinit_ms, 15.0);
  EXPECT_GT(result.value().record.stub_hash_ms, 0.0);

  SessionExpectation expectation;
  expectation.binary = &binary.value();
  expectation.inputs = BytesOf("x");
  expectation.outputs = BytesOf("x");
  EXPECT_EQ(result.value().record.pcr17_final, ComputeExpectedPcr17(expectation));
}

TEST(PlatformTest, SnoopWithoutProtectionReadsKernel) {
  FlickerPlatform platform;
  uint64_t kernel_text = platform.kernel()->MeasuredRegions()[0].base;
  Result<PalBinary> binary = BuildPal(std::make_shared<SnoopPal>(kernel_text));
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  // Without the OS Protection module a PAL can read all physical memory.
  EXPECT_TRUE(result.value().ok());
  EXPECT_EQ(result.value().outputs().size(), 64u);
}

TEST(PlatformTest, SnoopWithProtectionFaults) {
  FlickerPlatform platform;
  uint64_t kernel_text = platform.kernel()->MeasuredRegions()[0].base;
  PalBuildOptions build;
  build.os_protection = true;
  Result<PalBinary> binary = BuildPal(std::make_shared<SnoopPal>(kernel_text), build);
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  // The session completed but the PAL's access faulted in ring 3.
  EXPECT_FALSE(result.value().ok());
  EXPECT_EQ(result.value().record.pal_status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(result.value().record.pal_fault_count, 1u);
  // The OS resumed fine regardless.
  EXPECT_FALSE(platform.machine()->in_secure_session());
}

TEST(PlatformTest, ProtectedPalCanStillUseItsOwnRegion) {
  FlickerPlatform platform;
  PalBuildOptions build;
  build.os_protection = true;
  // Snoop its own SLB base: inside the allocated segment, allowed.
  Result<PalBinary> binary = BuildPal(std::make_shared<SnoopPal>(kSlbFixedBase), build);
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
}

TEST(PlatformTest, FailingPalStillCleansUpAndResumes) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<FailingPal>());
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  EXPECT_EQ(result.value().record.pal_status.code(), StatusCode::kInternal);
  EXPECT_FALSE(platform.machine()->in_secure_session());
  EXPECT_TRUE(platform.machine()->bsp()->interrupts_enabled);
  // The termination constant was still extended: secrets are revoked.
  EXPECT_EQ(platform.tpm()->PcrRead(kSkinitPcr).value(), result.value().record.pcr17_final);
}

TEST(PlatformTest, CleanupErasesSlbMemory) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<SecretWriterPal>());
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok());

  // After the session, the whole 64 KB SLB region (including the scribbled
  // stack) is zero.
  Bytes region = platform.machine()->memory()->Read(kSlbFixedBase, kSlbRegionSize).value();
  for (size_t i = 0; i < region.size(); ++i) {
    ASSERT_EQ(region[i], 0) << "residue at offset " << i;
  }
  // And the inputs page is erased too.
  Bytes inputs_page =
      platform.machine()->memory()->Read(kSlbFixedBase + kSlbInputsOffset, kSlbIoPageSize).value();
  for (uint8_t b : inputs_page) {
    ASSERT_EQ(b, 0);
  }
}

TEST(PlatformTest, SessionsAreSerializable) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<EchoPal>());
  ASSERT_TRUE(binary.ok());
  // Multiple sequential sessions work; PCR 17 resets each time.
  Bytes first_pcr;
  for (int i = 0; i < 3; ++i) {
    Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), BytesOf("x"));
    ASSERT_TRUE(result.ok());
    if (i == 0) {
      first_pcr = result.value().record.pcr17_final;
    } else {
      EXPECT_EQ(result.value().record.pcr17_final, first_pcr);
    }
  }
}

TEST(PlatformTest, TimingBreakdownIsPlausible) {
  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  const FlickerSessionResult& r = result.value();
  // Hello world's SLB is small (~0.5 KB measured): SKINIT ~ 1-3 ms.
  EXPECT_GT(r.skinit_ms, 0.9);
  EXPECT_LT(r.skinit_ms, 5.0);
  // Closing extends: 3 extends at 1.2 ms (inputs, outputs, constant).
  EXPECT_NEAR(r.record.extend_ms, 3.6, 0.2);
  EXPECT_GE(r.session_total_ms, r.skinit_ms + r.record.extend_ms);
}

// ---- Sealed state & replay protection ----

class SealedStateTest : public ::testing::Test {
 protected:
  SealedStateTest() {
    owner_auth_ = Sha1::Digest(BytesOf("owner"));
    EXPECT_TRUE(platform_.tpm()->TakeOwnership(owner_auth_).ok());
  }

  FlickerPlatform platform_;
  Bytes owner_auth_;
};

TEST_F(SealedStateTest, SealForPalRoundTripViaSkinitChain) {
  TpmClient* tpm = platform_.tpm();
  Result<PalBinary> binary = BuildPal(std::make_shared<EchoPal>());
  ASSERT_TRUE(binary.ok());
  Bytes execution_pcr = ComputeExecutionPcr17(binary.value());
  Bytes auth = Sha1::Digest(BytesOf("blob"));

  // Seal from "outside" (PCR 17 currently -1) to the PAL's execution value.
  Result<SealedBlob> blob = SealForPal(tpm, BytesOf("cross-session secret"), execution_pcr, auth);
  ASSERT_TRUE(blob.ok());
  EXPECT_FALSE(UnsealInPal(tpm, blob.value(), auth).ok());  // Not in the PAL.

  // Launch the PAL: inside the session PCR 17 holds the bound value.
  class UnsealPal : public Pal {
   public:
    UnsealPal(SealedBlob blob, Bytes auth) : blob_(std::move(blob)), auth_(std::move(auth)) {}
    std::string name() const override { return "echo"; }  // Same identity as EchoPal!
    std::vector<std::string> required_modules() const override { return {}; }
    size_t app_code_bytes() const override { return 128; }
    Status Execute(PalContext* context) override {
      Result<Bytes> secret = UnsealInPal(context->tpm(), blob_, auth_);
      if (!secret.ok()) {
        return secret.status();
      }
      return context->SetOutputs(secret.value());
    }

   private:
    SealedBlob blob_;
    Bytes auth_;
  };
  Result<PalBinary> unseal_binary =
      BuildPal(std::make_shared<UnsealPal>(blob.value(), auth));
  ASSERT_TRUE(unseal_binary.ok());
  ASSERT_EQ(unseal_binary.value().skinit_measurement, binary.value().skinit_measurement);

  Result<FlickerSessionResult> result = platform_.ExecuteSession(unseal_binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok()) << result.value().record.pal_status.ToString();
  EXPECT_EQ(result.value().outputs(), BytesOf("cross-session secret"));

  // After the session the termination constant revoked access again.
  EXPECT_FALSE(UnsealInPal(tpm, blob.value(), auth).ok());
}

TEST_F(SealedStateTest, ReplayProtectionDetectsStaleBlob) {
  TpmClient* tpm = platform_.tpm();
  Bytes counter_auth = Sha1::Digest(BytesOf("ctr"));
  Result<ReplayProtectedStorage> storage =
      ReplayProtectedStorage::Create(tpm, counter_auth, owner_auth_);
  ASSERT_TRUE(storage.ok());

  Bytes auth = Sha1::Digest(BytesOf("blob"));
  Bytes current_pcr = tpm->PcrRead(kSkinitPcr).value();

  Result<SealedBlob> v1 = storage.value().Seal(BytesOf("password-db-v1"), current_pcr, auth);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(storage.value().Unseal(v1.value(), auth).value(), BytesOf("password-db-v1"));

  Result<SealedBlob> v2 = storage.value().Seal(BytesOf("password-db-v2"), current_pcr, auth);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(storage.value().Unseal(v2.value(), auth).value(), BytesOf("password-db-v2"));

  // The malicious OS replays v1: the counter has moved on.
  Result<Bytes> replay = storage.value().Unseal(v1.value(), auth);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kReplayDetected);
}

TEST_F(SealedStateTest, NvReplayProtectionInsidePal) {
  // The §4.3.2 variant end to end: the counter lives in a PAL-gated NV
  // space. Provision against the PAL's execution PCR, then run two seal
  // generations inside PAL sessions and replay the first.
  Result<PalBinary> shape = BuildPal(std::make_shared<EchoPal>());
  ASSERT_TRUE(shape.ok());
  Bytes pal_pcr = ComputeExecutionPcr17(shape.value());
  static constexpr uint32_t kNvIndex = 42;
  Result<NvReplayProtectedStorage> provisioned = NvReplayProtectedStorage::Provision(
      platform_.tpm(), kNvIndex, pal_pcr, owner_auth_);
  ASSERT_TRUE(provisioned.ok()) << provisioned.status().ToString();

  // The OS cannot touch the counter outside the PAL.
  EXPECT_EQ(platform_.tpm()->NvRead(kNvIndex).status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(platform_.tpm()->NvWrite(kNvIndex, Bytes(8, 0)).code(),
            StatusCode::kPermissionDenied);

  // A PAL (same identity as EchoPal) that seals v1 and v2, then tries to
  // unseal both: v2 succeeds, the replayed v1 is detected.
  class NvPal : public Pal {
   public:
    std::string name() const override { return "echo"; }
    std::vector<std::string> required_modules() const override { return {}; }
    size_t app_code_bytes() const override { return 128; }
    Status Execute(PalContext* context) override {
      NvReplayProtectedStorage storage(context->tpm(), kNvIndex);
      Bytes pcr = context->tpm()->PcrRead(kSkinitPcr).value();
      Bytes auth = Sha1::Digest(BytesOf("nv-auth"));

      Result<SealedBlob> v1 = storage.Seal(BytesOf("db-v1"), pcr, auth);
      FLICKER_RETURN_IF_ERROR(v1.ok() ? Status::Ok() : v1.status());
      Result<SealedBlob> v2 = storage.Seal(BytesOf("db-v2"), pcr, auth);
      FLICKER_RETURN_IF_ERROR(v2.ok() ? Status::Ok() : v2.status());

      Result<Bytes> current = storage.Unseal(v2.value(), auth);
      FLICKER_RETURN_IF_ERROR(current.ok() ? Status::Ok() : current.status());
      if (current.value() != BytesOf("db-v2")) {
        return InternalError("wrong payload");
      }
      Result<Bytes> replayed = storage.Unseal(v1.value(), auth);
      if (replayed.ok()) {
        return InternalError("replay NOT detected");
      }
      if (replayed.status().code() != StatusCode::kReplayDetected) {
        return replayed.status();
      }
      return context->SetOutputs(BytesOf("replay detected as expected"));
    }
  };
  Result<PalBinary> binary = BuildPal(std::make_shared<NvPal>());
  ASSERT_TRUE(binary.ok());
  ASSERT_EQ(binary.value().skinit_measurement, shape.value().skinit_measurement);
  Result<FlickerSessionResult> result = platform_.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok()) << result.value().record.pal_status.ToString();
  EXPECT_EQ(result.value().outputs(), BytesOf("replay detected as expected"));

  // After the session, the counter is again untouchable.
  EXPECT_EQ(platform_.tpm()->NvRead(kNvIndex).status().code(), StatusCode::kPermissionDenied);
}

TEST_F(SealedStateTest, NvSpaceGatedOnPalIdentity) {
  // §4.3.2: an NV space whose PCR requirements match a PAL's execution
  // value is only readable inside that PAL's session.
  TpmClient* tpm = platform_.tpm();
  Result<PalBinary> binary = BuildPal(std::make_shared<EchoPal>());
  ASSERT_TRUE(binary.ok());
  Bytes execution_pcr = ComputeExecutionPcr17(binary.value());

  ASSERT_TRUE(TpmDefineNvSpace(tpm, 7, 32, PcrSelection({kSkinitPcr}),
                               {{kSkinitPcr, execution_pcr}}, PcrSelection({kSkinitPcr}),
                               {{kSkinitPcr, execution_pcr}}, owner_auth_)
                  .ok());
  // Outside the PAL: denied.
  EXPECT_EQ(tpm->NvWrite(7, BytesOf("c")).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(tpm->NvRead(7).status().code(), StatusCode::kPermissionDenied);

  class NvPal : public Pal {
   public:
    std::string name() const override { return "echo"; }
    std::vector<std::string> required_modules() const override { return {}; }
    size_t app_code_bytes() const override { return 128; }
    Status Execute(PalContext* context) override {
      FLICKER_RETURN_IF_ERROR(context->tpm()->NvWrite(7, BytesOf("counter=1")));
      Result<Bytes> back = context->tpm()->NvRead(7);
      if (!back.ok()) {
        return back.status();
      }
      return context->SetOutputs(back.value());
    }
  };
  Result<PalBinary> nv_binary = BuildPal(std::make_shared<NvPal>());
  ASSERT_TRUE(nv_binary.ok());
  Result<FlickerSessionResult> result = platform_.ExecuteSession(nv_binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok()) << result.value().record.pal_status.ToString();
  EXPECT_EQ(result.value().outputs(), BytesOf("counter=1"));
}

// ---- Secure channel ----

TEST(SecureChannelTest, KeyMaterialSerializationRoundTrip) {
  SecureChannelKeyMaterial material;
  material.public_key = BytesOf("pubkey bytes");
  material.sealed_private_key = BytesOf("sealed bytes");
  Result<SecureChannelKeyMaterial> back =
      SecureChannelKeyMaterial::Deserialize(material.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().public_key, material.public_key);
  EXPECT_EQ(back.value().sealed_private_key, material.sealed_private_key);
  EXPECT_FALSE(SecureChannelKeyMaterial::Deserialize(Bytes(3, 0)).ok());
  EXPECT_FALSE(SecureChannelKeyMaterial::Deserialize(BytesOf("junkjunkjunk")).ok());
}

TEST(SecureChannelTest, EndToEndAcrossSessions) {
  FlickerPlatform platform;
  Bytes blob_auth = Sha1::Digest(BytesOf("chan"));

  // Session 1: generate + seal.
  class KeygenPal : public Pal {
   public:
    explicit KeygenPal(Bytes auth) : auth_(std::move(auth)) {}
    std::string name() const override { return "channel"; }
    std::vector<std::string> required_modules() const override {
      return {kModuleTpmDriver, kModuleTpmUtilities, kModuleCrypto, kModuleSecureChannel};
    }
    size_t app_code_bytes() const override { return 256; }
    Status Execute(PalContext* context) override {
      Result<SecureChannelKeyMaterial> material =
          SecureChannelModule::GenerateAndSeal(context, auth_);
      if (!material.ok()) {
        return material.status();
      }
      return context->SetOutputs(material.value().Serialize());
    }

   private:
    Bytes auth_;
  };

  Result<PalBinary> keygen = BuildPal(std::make_shared<KeygenPal>(blob_auth));
  ASSERT_TRUE(keygen.ok());
  Result<FlickerSessionResult> session1 = platform.ExecuteSession(keygen.value(), Bytes());
  ASSERT_TRUE(session1.ok());
  ASSERT_TRUE(session1.value().ok()) << session1.value().record.pal_status.ToString();

  Result<SecureChannelKeyMaterial> material =
      SecureChannelKeyMaterial::Deserialize(session1.value().outputs());
  ASSERT_TRUE(material.ok());

  // Remote party encrypts under K_PAL.
  Drbg remote_rng(0x1e07);
  Result<Bytes> ciphertext =
      SecureChannelEncrypt(material.value().public_key, BytesOf("remote secret"), &remote_rng);
  ASSERT_TRUE(ciphertext.ok());

  // Session 2: same PAL identity decrypts.
  class DecryptPal : public Pal {
   public:
    DecryptPal(Bytes sealed, Bytes auth, Bytes ciphertext)
        : sealed_(std::move(sealed)), auth_(std::move(auth)), ct_(std::move(ciphertext)) {}
    std::string name() const override { return "channel"; }
    std::vector<std::string> required_modules() const override {
      return {kModuleTpmDriver, kModuleTpmUtilities, kModuleCrypto, kModuleSecureChannel};
    }
    size_t app_code_bytes() const override { return 256; }
    Status Execute(PalContext* context) override {
      Result<RsaPrivateKey> key =
          SecureChannelModule::UnsealPrivateKey(context, sealed_, auth_);
      if (!key.ok()) {
        return key.status();
      }
      Result<Bytes> plaintext = SecureChannelModule::Decrypt(context, key.value(), ct_);
      if (!plaintext.ok()) {
        return plaintext.status();
      }
      return context->SetOutputs(plaintext.value());
    }

   private:
    Bytes sealed_;
    Bytes auth_;
    Bytes ct_;
  };

  Result<PalBinary> decrypt = BuildPal(std::make_shared<DecryptPal>(
      material.value().sealed_private_key, blob_auth, ciphertext.value()));
  ASSERT_TRUE(decrypt.ok());
  ASSERT_EQ(decrypt.value().skinit_measurement, keygen.value().skinit_measurement);
  Result<FlickerSessionResult> session2 = platform.ExecuteSession(decrypt.value(), Bytes());
  ASSERT_TRUE(session2.ok());
  ASSERT_TRUE(session2.value().ok()) << session2.value().record.pal_status.ToString();
  EXPECT_EQ(session2.value().outputs(), BytesOf("remote secret"));

  // A *different* PAL cannot unseal the private key.
  class ThiefPal : public DecryptPal {
   public:
    using DecryptPal::DecryptPal;
    std::string name() const { return "thief"; }  // Different identity.
  };
  class ThiefPal2 : public Pal {
   public:
    ThiefPal2(Bytes sealed, Bytes auth) : sealed_(std::move(sealed)), auth_(std::move(auth)) {}
    std::string name() const override { return "thief"; }
    std::vector<std::string> required_modules() const override {
      return {kModuleTpmUtilities, kModuleSecureChannel, kModuleCrypto, kModuleTpmDriver};
    }
    size_t app_code_bytes() const override { return 256; }
    Status Execute(PalContext* context) override {
      Result<RsaPrivateKey> key =
          SecureChannelModule::UnsealPrivateKey(context, sealed_, auth_);
      return key.ok() ? Status::Ok() : key.status();
    }

   private:
    Bytes sealed_;
    Bytes auth_;
  };
  Result<PalBinary> thief =
      BuildPal(std::make_shared<ThiefPal2>(material.value().sealed_private_key, blob_auth));
  ASSERT_TRUE(thief.ok());
  Result<FlickerSessionResult> steal = platform.ExecuteSession(thief.value(), Bytes());
  ASSERT_TRUE(steal.ok());
  EXPECT_FALSE(steal.value().ok());
  EXPECT_EQ(steal.value().record.pal_status.code(), StatusCode::kIntegrityFailure);
}

}  // namespace
}  // namespace flicker
