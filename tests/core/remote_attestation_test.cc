// The wire-level challenge/response protocol: serialization, end-to-end
// verification over a Channel, and wire-tampering attacks.

#include "src/core/remote_attestation.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

class RemoteAttestationTest : public ::testing::Test {
 protected:
  RemoteAttestationTest()
      : binary_(BuildPal(std::make_shared<HelloWorldPal>()).take()),
        cert_(ca_.Certify(platform_.tpm()->aik_public(), "remote-host")),
        service_(&platform_, cert_),
        verifier_(&binary_, ca_.public_key()),
        channel_(platform_.clock()) {}

  FlickerPlatform platform_;
  PalBinary binary_;
  PrivacyCa ca_;
  AikCertificate cert_;
  AttestationService service_;
  AttestationVerifier verifier_;
  Channel channel_;
};

TEST_F(RemoteAttestationTest, EndToEndOverTheWire) {
  Bytes challenge = verifier_.MakeChallenge();
  channel_.Deliver();
  Result<Bytes> reply = service_.HandleChallenge(challenge, binary_, BytesOf("input"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  channel_.Deliver();

  AttestationVerifier::Outcome outcome = verifier_.CheckReply(reply.value());
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.log.outputs, BytesOf("Hello, world"));
  EXPECT_EQ(outcome.log.inputs, BytesOf("input"));
  EXPECT_EQ(outcome.log.pal_name, "hello-world");
}

TEST_F(RemoteAttestationTest, NonceIsSingleUse) {
  Bytes challenge = verifier_.MakeChallenge();
  Result<Bytes> reply = service_.HandleChallenge(challenge, binary_, Bytes());
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(verifier_.CheckReply(reply.value()).status.ok());
  // Replaying the same reply fails: the nonce was consumed.
  EXPECT_EQ(verifier_.CheckReply(reply.value()).status.code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RemoteAttestationTest, StaleReplyRejected) {
  // Capture a reply for challenge 1, deliver it against challenge 2.
  Bytes challenge1 = verifier_.MakeChallenge();
  Result<Bytes> reply1 = service_.HandleChallenge(challenge1, binary_, Bytes());
  ASSERT_TRUE(reply1.ok());
  Bytes challenge2 = verifier_.MakeChallenge();  // Supersedes challenge 1.
  AttestationVerifier::Outcome outcome = verifier_.CheckReply(reply1.value());
  EXPECT_EQ(outcome.status.code(), StatusCode::kReplayDetected);
}

TEST_F(RemoteAttestationTest, TamperedWireRejected) {
  Bytes challenge = verifier_.MakeChallenge();
  Result<Bytes> reply = service_.HandleChallenge(challenge, binary_, Bytes());
  ASSERT_TRUE(reply.ok());
  Bytes tampered = reply.value();
  // Flip a byte deep in the payload (somewhere in the quote signature).
  tampered[tampered.size() - 10] ^= 0x80;
  AttestationVerifier::Outcome outcome = verifier_.CheckReply(tampered);
  EXPECT_FALSE(outcome.status.ok());
}

TEST_F(RemoteAttestationTest, OutputForgeryInLogRejected) {
  Bytes challenge = verifier_.MakeChallenge();
  Result<Bytes> reply_wire = service_.HandleChallenge(challenge, binary_, Bytes());
  ASSERT_TRUE(reply_wire.ok());
  Result<AttestationReply> reply = AttestationReply::Deserialize(reply_wire.value());
  ASSERT_TRUE(reply.ok());
  AttestationReply forged = reply.take();
  forged.log.outputs = BytesOf("Hello, forgery");
  AttestationVerifier::Outcome outcome = verifier_.CheckReply(forged.Serialize());
  EXPECT_EQ(outcome.status.code(), StatusCode::kIntegrityFailure);
}

TEST_F(RemoteAttestationTest, MalformedChallengeRejectedByService) {
  Result<Bytes> reply = service_.HandleChallenge(BytesOf("junk"), binary_, Bytes());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST(RemoteAttestationWireTest, QuoteSerializationRoundTrip) {
  TpmQuote quote;
  quote.selection.Select(17);
  quote.selection.Select(18);
  quote.pcr_values = {Bytes(20, 1), Bytes(20, 2)};
  quote.nonce = Bytes(20, 3);
  quote.signature = Bytes(128, 4);

  Result<TpmQuote> back = DeserializeQuote(SerializeQuote(quote));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().selection.mask(), quote.selection.mask());
  EXPECT_EQ(back.value().pcr_values, quote.pcr_values);
  EXPECT_EQ(back.value().nonce, quote.nonce);
  EXPECT_EQ(back.value().signature, quote.signature);
  EXPECT_FALSE(DeserializeQuote(Bytes(5, 9)).ok());
}

TEST(RemoteAttestationWireTest, CertificateSerializationRoundTrip) {
  AikCertificate certificate;
  certificate.aik_public = BytesOf("aik bytes");
  certificate.tpm_label = "host-7";
  certificate.signature = BytesOf("ca sig");
  Result<AikCertificate> back =
      DeserializeAikCertificate(SerializeAikCertificate(certificate));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().aik_public, certificate.aik_public);
  EXPECT_EQ(back.value().tpm_label, certificate.tpm_label);
  EXPECT_EQ(back.value().signature, certificate.signature);
  EXPECT_FALSE(DeserializeAikCertificate(Bytes(2, 1)).ok());
}

TEST(RemoteAttestationWireTest, ChallengeSerializationRoundTrip) {
  AttestationChallenge challenge;
  challenge.nonce = Bytes(20, 0x5e);
  challenge.selection.Select(17);
  Result<AttestationChallenge> back =
      AttestationChallenge::Deserialize(challenge.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().nonce, challenge.nonce);
  EXPECT_TRUE(back.value().selection.IsSelected(17));
  EXPECT_FALSE(AttestationChallenge::Deserialize(Bytes(1, 1)).ok());
}

}  // namespace
}  // namespace flicker
