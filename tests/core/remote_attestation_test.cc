// The wire-level challenge/response protocol: serialization, end-to-end
// verification over a Channel, and wire-tampering attacks.

#include "src/core/remote_attestation.h"

#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

class RemoteAttestationTest : public ::testing::Test {
 protected:
  RemoteAttestationTest()
      : binary_(BuildPal(std::make_shared<HelloWorldPal>()).take()),
        cert_(ca_.Certify(platform_.tpm()->aik_public(), "remote-host")),
        service_(&platform_, cert_),
        verifier_(&binary_, ca_.public_key()),
        channel_(platform_.clock()) {}

  FlickerPlatform platform_;
  PalBinary binary_;
  PrivacyCa ca_;
  AikCertificate cert_;
  AttestationService service_;
  AttestationVerifier verifier_;
  Channel channel_;
};

TEST_F(RemoteAttestationTest, EndToEndOverTheWire) {
  Bytes challenge = verifier_.MakeChallenge();
  channel_.Deliver();
  Result<Bytes> reply = service_.HandleChallenge(challenge, binary_, BytesOf("input"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  channel_.Deliver();

  AttestationVerifier::Outcome outcome = verifier_.CheckReply(reply.value());
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.log.outputs, BytesOf("Hello, world"));
  EXPECT_EQ(outcome.log.inputs, BytesOf("input"));
  EXPECT_EQ(outcome.log.pal_name, "hello-world");
}

TEST_F(RemoteAttestationTest, NonceIsSingleUse) {
  Bytes challenge = verifier_.MakeChallenge();
  Result<Bytes> reply = service_.HandleChallenge(challenge, binary_, Bytes());
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(verifier_.CheckReply(reply.value()).status.ok());
  // Replaying the same reply fails: the nonce was consumed.
  EXPECT_EQ(verifier_.CheckReply(reply.value()).status.code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RemoteAttestationTest, StaleReplyRejected) {
  // Capture a reply for challenge 1, deliver it against challenge 2.
  Bytes challenge1 = verifier_.MakeChallenge();
  Result<Bytes> reply1 = service_.HandleChallenge(challenge1, binary_, Bytes());
  ASSERT_TRUE(reply1.ok());
  Bytes challenge2 = verifier_.MakeChallenge();  // Supersedes challenge 1.
  AttestationVerifier::Outcome outcome = verifier_.CheckReply(reply1.value());
  EXPECT_EQ(outcome.status.code(), StatusCode::kReplayDetected);
}

TEST_F(RemoteAttestationTest, TamperedWireRejected) {
  Bytes challenge = verifier_.MakeChallenge();
  Result<Bytes> reply = service_.HandleChallenge(challenge, binary_, Bytes());
  ASSERT_TRUE(reply.ok());
  Bytes tampered = reply.value();
  // Flip a byte deep in the payload (somewhere in the quote signature).
  tampered[tampered.size() - 10] ^= 0x80;
  AttestationVerifier::Outcome outcome = verifier_.CheckReply(tampered);
  EXPECT_FALSE(outcome.status.ok());
}

TEST_F(RemoteAttestationTest, OutputForgeryInLogRejected) {
  Bytes challenge = verifier_.MakeChallenge();
  Result<Bytes> reply_wire = service_.HandleChallenge(challenge, binary_, Bytes());
  ASSERT_TRUE(reply_wire.ok());
  Result<AttestationReply> reply = AttestationReply::Deserialize(reply_wire.value());
  ASSERT_TRUE(reply.ok());
  AttestationReply forged = reply.take();
  forged.log.outputs = BytesOf("Hello, forgery");
  AttestationVerifier::Outcome outcome = verifier_.CheckReply(forged.Serialize());
  EXPECT_EQ(outcome.status.code(), StatusCode::kIntegrityFailure);
}

TEST_F(RemoteAttestationTest, MalformedChallengeRejectedByService) {
  Result<Bytes> reply = service_.HandleChallenge(BytesOf("junk"), binary_, Bytes());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST(RemoteAttestationWireTest, QuoteSerializationRoundTrip) {
  TpmQuote quote;
  quote.selection.Select(17);
  quote.selection.Select(18);
  quote.pcr_values = {Bytes(20, 1), Bytes(20, 2)};
  quote.nonce = Bytes(20, 3);
  quote.signature = Bytes(128, 4);

  Result<TpmQuote> back = DeserializeQuote(SerializeQuote(quote));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().selection.mask(), quote.selection.mask());
  EXPECT_EQ(back.value().pcr_values, quote.pcr_values);
  EXPECT_EQ(back.value().nonce, quote.nonce);
  EXPECT_EQ(back.value().signature, quote.signature);
  EXPECT_FALSE(DeserializeQuote(Bytes(5, 9)).ok());
}

TEST(RemoteAttestationWireTest, CertificateSerializationRoundTrip) {
  AikCertificate certificate;
  certificate.aik_public = BytesOf("aik bytes");
  certificate.tpm_label = "host-7";
  certificate.signature = BytesOf("ca sig");
  Result<AikCertificate> back =
      DeserializeAikCertificate(SerializeAikCertificate(certificate));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().aik_public, certificate.aik_public);
  EXPECT_EQ(back.value().tpm_label, certificate.tpm_label);
  EXPECT_EQ(back.value().signature, certificate.signature);
  EXPECT_FALSE(DeserializeAikCertificate(Bytes(2, 1)).ok());
}

TEST_F(RemoteAttestationTest, DuplicatedChallengeFrameRejectedExactlyOnce) {
  // A wire-duplicated (or attacker-replayed) challenge frame must not buy a
  // second PAL session: the service's nonce cache answers the twin with
  // kReplayDetected.
  Bytes challenge = verifier_.MakeChallenge();
  Result<Bytes> first = service_.HandleChallenge(challenge, binary_, Bytes());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(service_.replays_rejected(), 0u);

  Result<Bytes> duplicate = service_.HandleChallenge(challenge, binary_, Bytes());
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kReplayDetected);
  EXPECT_EQ(service_.replays_rejected(), 1u);
}

TEST_F(RemoteAttestationTest, RecordedReplyReplayedForFreshChallengeRejected) {
  // Attacker records a genuine reply, then re-sends it when the verifier
  // issues a fresh challenge: the nonce mismatch must reject it, exactly
  // once (the verifier's pending nonce survives for the real reply).
  Bytes challenge1 = verifier_.MakeChallenge();
  Result<Bytes> recorded = service_.HandleChallenge(challenge1, binary_, Bytes());
  ASSERT_TRUE(recorded.ok());
  ASSERT_TRUE(verifier_.CheckReply(recorded.value()).status.ok());

  Bytes challenge2 = verifier_.MakeChallenge();
  AttestationVerifier::Outcome replayed = verifier_.CheckReply(recorded.value());
  EXPECT_EQ(replayed.status.code(), StatusCode::kReplayDetected);

  // The genuine answer to challenge 2 fails too: CheckReply consumed the
  // pending nonce on the replay attempt (single-use, fail closed).
  Result<Bytes> genuine = service_.HandleChallenge(challenge2, binary_, Bytes());
  ASSERT_TRUE(genuine.ok());
  EXPECT_EQ(verifier_.CheckReply(genuine.value()).status.code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RemoteAttestationTest, ReplayProtectionCanBeDisabledForStudy) {
  AttestationService naive(&platform_, cert_, AttestationServiceOptions{false, 0});
  Bytes challenge = verifier_.MakeChallenge();
  ASSERT_TRUE(naive.HandleChallenge(challenge, binary_, Bytes()).ok());
  // Without the cache the duplicate burns a second PAL session.
  EXPECT_TRUE(naive.HandleChallenge(challenge, binary_, Bytes()).ok());
  EXPECT_EQ(naive.replays_rejected(), 0u);
}

TEST_F(RemoteAttestationTest, TrustWireNonceModeAcceptsStaleReply) {
  // The deliberately vulnerable verifier mode: trusting the nonce the reply
  // itself claims makes a recorded genuine reply verify against any fresh
  // challenge. This is the accepted-but-wrong failure the hardened path
  // (and the chaos matrix) must catch.
  Bytes challenge1 = verifier_.MakeChallenge();
  Result<Bytes> recorded = service_.HandleChallenge(challenge1, binary_, Bytes());
  ASSERT_TRUE(recorded.ok());
  ASSERT_TRUE(verifier_.CheckReply(recorded.value()).status.ok());

  verifier_.MakeChallenge();  // Fresh outstanding challenge.
  verifier_.set_trust_wire_nonce_for_testing(true);
  AttestationVerifier::Outcome replayed = verifier_.CheckReply(recorded.value());
  EXPECT_TRUE(replayed.status.ok()) << "vulnerable mode should accept the replay";
}

TEST_F(RemoteAttestationTest, OversizedChallengeRejectedBeforeParsing) {
  Result<Bytes> reply =
      service_.HandleChallenge(Bytes(kMaxChallengeWireBytes + 1, 0x41), binary_, Bytes());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RemoteAttestationTest, OutOfBoundsNonceRejected) {
  AttestationChallenge oversized;
  oversized.nonce = Bytes(kMaxNonceBytes + 1, 0x42);
  oversized.selection.Select(kSkinitPcr);
  Result<Bytes> reply = service_.HandleChallenge(oversized.Serialize(), binary_, Bytes());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);

  AttestationChallenge empty_nonce;
  empty_nonce.selection.Select(kSkinitPcr);
  reply = service_.HandleChallenge(empty_nonce.Serialize(), binary_, Bytes());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

// Table-driven hostile-input battery: every wire deserializer in this module
// must return a Status (never crash) on truncated, garbled, oversized and
// zero-length input.
TEST_F(RemoteAttestationTest, EveryDeserializerSurvivesHostileBytes) {
  Bytes challenge_wire = verifier_.MakeChallenge();
  Result<Bytes> reply_wire = service_.HandleChallenge(challenge_wire, binary_, BytesOf("in"));
  ASSERT_TRUE(reply_wire.ok());
  Result<AttestationReply> reply = AttestationReply::Deserialize(reply_wire.value());
  ASSERT_TRUE(reply.ok());
  AttestationResponse response;
  response.quote = reply.value().quote;
  response.aik_public = reply.value().aik_public;

  struct Case {
    const char* name;
    Bytes valid;
    std::function<Status(const Bytes&)> parse;
  };
  const std::vector<Case> cases = {
      {"quote", SerializeQuote(reply.value().quote),
       [](const Bytes& b) { return DeserializeQuote(b).status(); }},
      {"aik_certificate", SerializeAikCertificate(reply.value().aik_certificate),
       [](const Bytes& b) { return DeserializeAikCertificate(b).status(); }},
      {"attestation_response", SerializeAttestationResponse(response),
       [](const Bytes& b) { return DeserializeAttestationResponse(b).status(); }},
      {"challenge", challenge_wire,
       [](const Bytes& b) { return AttestationChallenge::Deserialize(b).status(); }},
      {"reply", reply_wire.value(),
       [](const Bytes& b) { return AttestationReply::Deserialize(b).status(); }},
  };

  for (const Case& c : cases) {
    // Sanity: the untouched wire parses.
    EXPECT_TRUE(c.parse(c.valid).ok()) << c.name;
    // Zero-length.
    EXPECT_FALSE(c.parse(Bytes()).ok()) << c.name << " empty";
    // Truncated at every prefix length (capped for the large reply wire).
    size_t step = c.valid.size() > 256 ? 17 : 1;
    for (size_t cut = 0; cut < c.valid.size(); cut += step) {
      Bytes truncated(c.valid.begin(), c.valid.begin() + static_cast<long>(cut));
      Status verdict = c.parse(truncated);
      EXPECT_FALSE(verdict.ok()) << c.name << " cut=" << cut;
    }
    // Garbled: flip a byte at several positions; either a parse error or a
    // changed-but-parsed value is fine, crashing is not.
    for (size_t pos = 0; pos < c.valid.size(); pos += (c.valid.size() / 16) + 1) {
      Bytes garbled = c.valid;
      garbled[pos] ^= 0xA5;
      (void)c.parse(garbled);
    }
    // Oversized frame of zeros.
    EXPECT_FALSE(c.parse(Bytes(kMaxReplyWireBytes + 1, 0)).ok()) << c.name << " oversized";
  }
}

TEST(RemoteAttestationWireTest, QuoteRefusesAbsurdPcrCount) {
  // A quote claiming more PCR values than PCRs exist is hostile: the count
  // is bounded before the allocation loop runs.
  Bytes wire;
  auto put_u32 = [&wire](uint32_t v) {
    wire.push_back(static_cast<uint8_t>(v >> 24));
    wire.push_back(static_cast<uint8_t>(v >> 16));
    wire.push_back(static_cast<uint8_t>(v >> 8));
    wire.push_back(static_cast<uint8_t>(v));
  };
  put_u32(0);           // Empty selection mask.
  put_u32(0xFFFFFFFF);  // Claimed PCR value count.
  EXPECT_FALSE(DeserializeQuote(wire).ok());
}

TEST(RemoteAttestationWireTest, ChallengeSerializationRoundTrip) {
  AttestationChallenge challenge;
  challenge.nonce = Bytes(20, 0x5e);
  challenge.selection.Select(17);
  Result<AttestationChallenge> back =
      AttestationChallenge::Deserialize(challenge.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().nonce, challenge.nonce);
  EXPECT_TRUE(back.value().selection.IsSelected(17));
  EXPECT_FALSE(AttestationChallenge::Deserialize(Bytes(1, 1)).ok());
}

}  // namespace
}  // namespace flicker
