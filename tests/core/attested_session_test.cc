// Quote amortization: one verified quote buys an HMAC session, and every
// later exchange rides AuthedFrames with no TPM in the loop. The cache must
// fail CLOSED on tampering/replay/reflection within a live session, and fail
// SOFT (kNotFound miss, re-attest) when a session expires, exhausts its use
// budget, or is evicted.

#include <gtest/gtest.h>

#include "src/core/secure_channel.h"
#include "src/crypto/drbg.h"
#include "src/hw/clock.h"

namespace flicker {
namespace {

// Both ends of an amortized attestation session: the challenger (initiator)
// and the attesting platform (responder) sharing one key.
struct SessionPair {
  SessionPair(SimClock* clock, AttestedSessionConfig config = AttestedSessionConfig())
      : challenger(clock, config), platform(clock, config) {
    Drbg rng(BytesOf("session key exchange"));
    Bytes key = rng.Generate(32);
    challenger_id = challenger.Establish(key, /*is_initiator=*/true);
    platform_id = platform.Establish(key, /*is_initiator=*/false);
  }

  AttestedSessionCache challenger;
  AttestedSessionCache platform;
  uint64_t challenger_id = 0;
  uint64_t platform_id = 0;
};

TEST(AttestedSessionTest, SealOpenRoundTripBothDirections) {
  SimClock clock;
  SessionPair pair(&clock);

  Result<AuthedFrame> c2p = pair.challenger.Seal(pair.challenger_id, BytesOf("are you fresh?"));
  ASSERT_TRUE(c2p.ok());
  Result<Bytes> at_platform = pair.platform.Open(c2p.value());
  ASSERT_TRUE(at_platform.ok());
  EXPECT_EQ(at_platform.value(), BytesOf("are you fresh?"));

  Result<AuthedFrame> p2c = pair.platform.Seal(pair.platform_id, BytesOf("still sealed"));
  ASSERT_TRUE(p2c.ok());
  Result<Bytes> at_challenger = pair.challenger.Open(p2c.value());
  ASSERT_TRUE(at_challenger.ok());
  EXPECT_EQ(at_challenger.value(), BytesOf("still sealed"));

  EXPECT_EQ(pair.platform.hits(), 1u);
  EXPECT_EQ(pair.challenger.hits(), 1u);
  EXPECT_EQ(pair.platform.misses(), 0u);
}

TEST(AttestedSessionTest, ReplayedFrameFailsClosed) {
  SimClock clock;
  SessionPair pair(&clock);

  AuthedFrame frame = pair.challenger.Seal(pair.challenger_id, BytesOf("once")).value();
  ASSERT_TRUE(pair.platform.Open(frame).ok());
  // The identical recorded frame must be rejected as a HARD error on the
  // live session, not a soft miss that invites a downgrade.
  Result<Bytes> replay = pair.platform.Open(frame);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kReplayDetected);
}

TEST(AttestedSessionTest, ReflectedFrameFailsClosed) {
  SimClock clock;
  SessionPair pair(&clock);

  // An attacker bounces the challenger's own frame back at it.
  AuthedFrame frame = pair.challenger.Seal(pair.challenger_id, BytesOf("ping")).value();
  Result<Bytes> reflected = pair.challenger.Open(frame);
  ASSERT_FALSE(reflected.ok());
  EXPECT_EQ(reflected.status().code(), StatusCode::kIntegrityFailure);
}

TEST(AttestedSessionTest, TamperedFrameFailsClosed) {
  SimClock clock;
  SessionPair pair(&clock);

  AuthedFrame frame = pair.challenger.Seal(pair.challenger_id, BytesOf("payload")).value();
  AuthedFrame tampered = frame;
  tampered.payload[0] ^= 0x01;
  Result<Bytes> opened = pair.platform.Open(tampered);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIntegrityFailure);

  // Bumping the counter without the key fails the MAC too.
  AuthedFrame bumped = frame;
  ++bumped.counter;
  opened = pair.platform.Open(bumped);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIntegrityFailure);
}

TEST(AttestedSessionTest, WireRoundTripAndRoleValidation) {
  SimClock clock;
  SessionPair pair(&clock);

  AuthedFrame frame = pair.challenger.Seal(pair.challenger_id, BytesOf("over the wire")).value();
  Result<AuthedFrame> round = AuthedFrame::Deserialize(frame.Serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(pair.platform.Open(round.value()).ok());

  Bytes wire = frame.Serialize();
  wire.pop_back();
  EXPECT_FALSE(AuthedFrame::Deserialize(wire).ok());
}

TEST(AttestedSessionTest, ExpiryIsASoftMissInvitingReattestation) {
  SimClock clock;
  AttestedSessionConfig config;
  config.ttl_ms = 100.0;
  SessionPair pair(&clock, config);

  AuthedFrame frame = pair.challenger.Seal(pair.challenger_id, BytesOf("late")).value();
  clock.AdvanceMillis(101.0);

  // Both the seal side and the open side see kNotFound, never a MAC error:
  // the correct reaction is a fresh quote, not an alarm.
  Result<Bytes> opened = pair.platform.Open(frame);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(pair.platform.misses(), 1u);
  EXPECT_EQ(pair.platform.live_sessions(), 0u);

  Result<AuthedFrame> sealed = pair.challenger.Seal(pair.challenger_id, BytesOf("more"));
  ASSERT_FALSE(sealed.ok());
  EXPECT_EQ(sealed.status().code(), StatusCode::kNotFound);
}

TEST(AttestedSessionTest, UseBudgetExhaustionRetiresTheSession) {
  // Asymmetric budgets: the challenger can keep sealing, the platform's
  // session dies after 3 accepted frames - exercising both the open-side
  // retirement and, below, the seal-side one.
  SimClock clock;
  AttestedSessionConfig platform_config;
  platform_config.max_uses = 3;
  AttestedSessionCache challenger(&clock);
  AttestedSessionCache platform(&clock, platform_config);
  Drbg rng(BytesOf("budget"));
  Bytes key = rng.Generate(32);
  uint64_t cid = challenger.Establish(key, /*is_initiator=*/true);
  platform.Establish(key, /*is_initiator=*/false);

  for (int i = 0; i < 3; ++i) {
    AuthedFrame frame = challenger.Seal(cid, BytesOf("n" + std::to_string(i))).value();
    ASSERT_TRUE(platform.Open(frame).ok()) << i;
  }
  AuthedFrame frame = challenger.Seal(cid, BytesOf("past budget")).value();
  Result<Bytes> opened = platform.Open(frame);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(platform.hits(), 3u);
  EXPECT_EQ(platform.misses(), 1u);

  // Seal-side budget: a cache with max_uses=2 refuses the third seal.
  AttestedSessionConfig sealer_config;
  sealer_config.max_uses = 2;
  AttestedSessionCache sealer(&clock, sealer_config);
  uint64_t sid = sealer.Establish(key, /*is_initiator=*/true);
  ASSERT_TRUE(sealer.Seal(sid, BytesOf("one")).ok());
  ASSERT_TRUE(sealer.Seal(sid, BytesOf("two")).ok());
  Result<AuthedFrame> third = sealer.Seal(sid, BytesOf("three"));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kNotFound);
}

TEST(AttestedSessionTest, CapacityEvictsOldestSession) {
  SimClock clock;
  AttestedSessionConfig config;
  config.capacity = 2;
  AttestedSessionCache cache(&clock, config);

  Drbg rng(BytesOf("many sessions"));
  uint64_t first = cache.Establish(rng.Generate(32), true);
  cache.Establish(rng.Generate(32), true);
  EXPECT_EQ(cache.live_sessions(), 2u);
  cache.Establish(rng.Generate(32), true);
  EXPECT_EQ(cache.live_sessions(), 2u);

  // The oldest id was evicted; sealing under it is a miss.
  Result<AuthedFrame> sealed = cache.Seal(first, BytesOf("gone"));
  ASSERT_FALSE(sealed.ok());
  EXPECT_EQ(sealed.status().code(), StatusCode::kNotFound);
}

TEST(AttestedSessionTest, SessionKeyTransportRidesTheSecureChannel) {
  // The key-exchange story end to end at the crypto layer: the challenger
  // wraps a fresh session key under the attested K_PAL (SecureChannelEncrypt)
  // and only the holder of the sealed private key can recover it.
  Drbg rng(BytesOf("key transport"));
  RsaPrivateKey pal_key = RsaGenerateKey(1024, &rng);
  Bytes session_key = rng.Generate(32);

  Result<Bytes> wrapped =
      SecureChannelEncrypt(pal_key.pub.Serialize(), session_key, &rng);
  ASSERT_TRUE(wrapped.ok());
  Result<Bytes> unwrapped = RsaDecryptPkcs1(pal_key, wrapped.value());
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(unwrapped.value(), session_key);

  // Both ends register the transported key; frames authenticate.
  SimClock clock;
  AttestedSessionCache challenger(&clock);
  AttestedSessionCache platform(&clock);
  uint64_t cid = challenger.Establish(session_key, true);
  platform.Establish(unwrapped.value(), false);
  AuthedFrame frame = challenger.Seal(cid, BytesOf("amortized")).value();
  EXPECT_TRUE(platform.Open(frame).ok());
}

}  // namespace
}  // namespace flicker
