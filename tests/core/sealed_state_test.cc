// Crash consistency of sealed storage: the two-phase
// CrashConsistentSealedStore (stage -> increment -> commit, with Recover()
// classifying torn states) and the §4.3.2 NV-counter variant under garbled
// and torn NV writes.

#include <iostream>
#include <memory>

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/core/flicker_platform.h"
#include "src/core/sealed_state.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

class CrashStoreTest : public ::testing::Test {
 protected:
  CrashStoreTest() {
    owner_auth_ = Sha1::Digest(BytesOf("owner"));
    EXPECT_TRUE(platform_.tpm()->TakeOwnership(owner_auth_).ok());
    blob_auth_ = Sha1::Digest(BytesOf("blob"));
    counter_auth_ = Sha1::Digest(BytesOf("ctr"));
    // Bind to the current PCR 17 so the tests unseal without a PAL session;
    // the PCR-binding mechanics are covered by platform_test.
    release_pcr_ = platform_.tpm()->PcrRead(kSkinitPcr).value();
  }

  void TearDown() override {
    if (HasFailure()) {
      platform_.machine()->tpm_transport()->DumpTrace(std::cerr);
    }
  }

  CrashConsistentSealedStore MakeStore(CrashStoreOptions options = CrashStoreOptions()) {
    Result<CrashConsistentSealedStore> store = CrashConsistentSealedStore::Create(
        platform_.tpm(), counter_auth_, owner_auth_, options);
    EXPECT_TRUE(store.ok());
    return store.take();
  }

  // Runs `fn` with the machine's fault scheduler armed to crash at the
  // named point, and expects the power loss to fire.
  template <typename Fn>
  void CrashAt(const std::string& point, Fn fn) {
    CrashPlan plan;
    plan.crash_at_hit = 1;
    plan.only_point = point;
    FaultScheduler* scheduler = platform_.machine()->fault_scheduler();
    scheduler->Arm(plan);
    FaultInjectionScope scope(scheduler);
    bool crashed = false;
    try {
      fn();
    } catch (const PowerLossException& e) {
      crashed = true;
      EXPECT_EQ(e.point(), point);
    }
    EXPECT_TRUE(crashed) << "crash point never hit: " << point;
  }

  FlickerPlatform platform_;
  Bytes owner_auth_;
  Bytes blob_auth_;
  Bytes counter_auth_;
  Bytes release_pcr_;
};

TEST_F(CrashStoreTest, SealUnsealRoundTripAndVersioning) {
  CrashConsistentSealedStore store = MakeStore();
  EXPECT_EQ(store.Recover().value(), RecoveryClass::kClean);

  ASSERT_TRUE(store.Seal(BytesOf("v1"), release_pcr_, blob_auth_).ok());
  EXPECT_EQ(store.UnsealLatest(blob_auth_).value(), BytesOf("v1"));
  ASSERT_TRUE(store.Seal(BytesOf("v2"), release_pcr_, blob_auth_).ok());
  EXPECT_EQ(store.UnsealLatest(blob_auth_).value(), BytesOf("v2"));
  EXPECT_EQ(store.committed_version(), 2u);
  EXPECT_FALSE(store.has_staged());
}

TEST_F(CrashStoreTest, CrashBeforeIncrementDiscardsStagedKeepsOld) {
  CrashConsistentSealedStore store = MakeStore();
  ASSERT_TRUE(store.Seal(BytesOf("v1"), release_pcr_, blob_auth_).ok());

  CrashAt("seal.staged", [&] { (void)store.Seal(BytesOf("v2"), release_pcr_, blob_auth_); });
  EXPECT_TRUE(store.has_staged());

  EXPECT_EQ(store.Recover().value(), RecoveryClass::kDiscardedStaged);
  EXPECT_FALSE(store.has_staged());
  EXPECT_EQ(store.UnsealLatest(blob_auth_).value(), BytesOf("v1"));
}

TEST_F(CrashStoreTest, CrashAfterIncrementRollsForwardToNew) {
  CrashConsistentSealedStore store = MakeStore();
  ASSERT_TRUE(store.Seal(BytesOf("v1"), release_pcr_, blob_auth_).ok());

  CrashAt("seal.incremented",
          [&] { (void)store.Seal(BytesOf("v2"), release_pcr_, blob_auth_); });

  // Without recovery, the old committed blob is provably stale - the store
  // never serves it.
  Result<Bytes> stale = store.UnsealLatest(blob_auth_);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kReplayDetected);

  EXPECT_EQ(store.Recover().value(), RecoveryClass::kRolledForward);
  EXPECT_EQ(store.UnsealLatest(blob_auth_).value(), BytesOf("v2"));
}

TEST_F(CrashStoreTest, CrashAtCommitStillRecoversToNew) {
  CrashConsistentSealedStore store = MakeStore();
  CrashAt("seal.committed",
          [&] { (void)store.Seal(BytesOf("v1"), release_pcr_, blob_auth_); });
  // Commit happened; only the staged slot was left behind.
  EXPECT_EQ(store.Recover().value(), RecoveryClass::kRolledForward);
  EXPECT_EQ(store.UnsealLatest(blob_auth_).value(), BytesOf("v1"));
}

TEST_F(CrashStoreTest, ImpossibleStagedVersionFailsClosed) {
  // Simulate the protocol violation by staging against a counter that then
  // "goes backwards" - recreate the store bound to a fresh counter while
  // reusing the old staged snapshot is not expressible through the public
  // API, so drive it via the broken ordering instead: commit-before-
  // increment with a crash leaves committed/staged one version ahead of the
  // counter, and a second crashed attempt pushes staged two ahead.
  CrashStoreOptions broken;
  broken.broken_commit_before_increment = true;
  CrashConsistentSealedStore store = MakeStore(broken);
  CrashAt("seal.committed",
          [&] { (void)store.Seal(BytesOf("v1"), release_pcr_, blob_auth_); });
  // staged version == counter + 1; a correct store discards it...
  EXPECT_EQ(store.Recover().value(), RecoveryClass::kDiscardedStaged);
  // ...but the broken ordering already published the unreachable blob: the
  // committed data can never be unsealed. This is the data-loss bug the
  // crash matrix exists to catch.
  Result<Bytes> lost = store.UnsealLatest(blob_auth_);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kReplayDetected);
}

// ---- §4.3.2 NV-counter variant under NV write faults ----

class NvFaultTest : public ::testing::Test {
 protected:
  NvFaultTest() {
    owner_auth_ = Sha1::Digest(BytesOf("owner"));
    EXPECT_TRUE(platform_.tpm()->TakeOwnership(owner_auth_).ok());
    blob_auth_ = Sha1::Digest(BytesOf("blob"));
    // Gate the NV space on the CURRENT PCR 17 so the test can play the role
    // of the PAL without a session; platform_test covers the PAL gating.
    current_pcr_ = platform_.tpm()->PcrRead(kSkinitPcr).value();
    Result<NvReplayProtectedStorage> provisioned =
        NvReplayProtectedStorage::Provision(platform_.tpm(), kNvIndex, current_pcr_, owner_auth_);
    EXPECT_TRUE(provisioned.ok());
  }

  void TearDown() override {
    if (HasFailure()) {
      platform_.machine()->tpm_transport()->DumpTrace(std::cerr);
    }
  }

  static constexpr uint32_t kNvIndex = 51;

  FlickerPlatform platform_;
  Bytes owner_auth_;
  Bytes blob_auth_;
  Bytes current_pcr_;
};

TEST_F(NvFaultTest, GarbledNvCounterWriteNeverAdmitsStaleBlob) {
  NvReplayProtectedStorage storage(platform_.tpm(), kNvIndex);
  Result<SealedBlob> v1 = storage.Seal(BytesOf("db-v1"), current_pcr_, blob_auth_);
  ASSERT_TRUE(v1.ok());
  ASSERT_EQ(storage.Unseal(v1.value(), blob_auth_).value(), BytesOf("db-v1"));

  // Garble the NV counter write on the wire. Seal's second frame is the
  // NvWrite (the first is the counter read), and every_n counts cumulative
  // transmits, so aim the single garble exactly there.
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kGarble;
  plan.every_n = platform_.machine()->tpm_transport()->total_commands() + 2;
  platform_.machine()->tpm_transport()->set_fault_plan(plan);
  Result<SealedBlob> v2 = storage.Seal(BytesOf("db-v2"), current_pcr_, blob_auth_);
  platform_.machine()->tpm_transport()->set_fault_plan(FaultPlan());

  // Whatever the garbled write produced, no blob unseals against it as
  // stale data: v1's embedded version no longer matches, and if the seal
  // completed, v2's version was computed before the garble and cannot match
  // either. The failure is always closed (kReplayDetected), never stale.
  Result<Bytes> replay = storage.Unseal(v1.value(), blob_auth_);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kReplayDetected);
  if (v2.ok()) {
    Result<Bytes> current = storage.Unseal(v2.value(), blob_auth_);
    if (current.ok()) {
      EXPECT_EQ(current.value(), BytesOf("db-v2"));
    } else {
      EXPECT_EQ(current.status().code(), StatusCode::kReplayDetected);
    }
  }
}

TEST_F(NvFaultTest, TornNvCounterWriteRepairedByStartupReplay) {
  NvReplayProtectedStorage storage(platform_.tpm(), kNvIndex);
  Result<SealedBlob> v1 = storage.Seal(BytesOf("db-v1"), current_pcr_, blob_auth_);
  ASSERT_TRUE(v1.ok());

  // Power fails mid-apply of the counter write inside the next Seal: the NV
  // space holds a torn half-write and the journal a committed record.
  CrashPlan plan;
  plan.crash_at_hit = 1;
  plan.only_point = "tpm.nv_write.apply";
  FaultScheduler* scheduler = platform_.machine()->fault_scheduler();
  scheduler->Arm(plan);
  bool crashed = false;
  {
    FaultInjectionScope scope(scheduler);
    try {
      (void)storage.Seal(BytesOf("db-v2"), current_pcr_, blob_auth_);
    } catch (const PowerLossException&) {
      crashed = true;
    }
  }
  ASSERT_TRUE(crashed);

  // Recovery: warm reset + TPM_Startup replays the journal, completing the
  // counter write the crash tore.
  platform_.machine()->WarmReset();
  Result<TpmStartupReport> report = platform_.tpm()->Startup(TpmStartupType::kClear);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().journal_rolled_forward);

  // The counter reached the new generation, so the old blob reads as stale
  // (fail closed) - it is never accepted as current.
  Result<Bytes> replay = storage.Unseal(v1.value(), blob_auth_);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kReplayDetected);

  // A fresh generation sealed after recovery works normally.
  Result<SealedBlob> v3 = storage.Seal(BytesOf("db-v3"), current_pcr_, blob_auth_);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(storage.Unseal(v3.value(), blob_auth_).value(), BytesOf("db-v3"));
}

}  // namespace
}  // namespace flicker
