// The Memory Management PAL module: allocator correctness, coalescing, and
// parameterized stress workouts.

#include "src/slb/pal_heap.h"

#include <cstring>
#include <map>
#include <gtest/gtest.h>

#include "src/crypto/drbg.h"

namespace flicker {
namespace {

TEST(PalHeapTest, MallocReturnsAlignedDistinctBlocks) {
  PalHeap heap(4096);
  void* a = heap.Malloc(100);
  void* b = heap.Malloc(200);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_TRUE(heap.CheckConsistency());
}

TEST(PalHeapTest, MallocZeroReturnsNull) {
  PalHeap heap(4096);
  EXPECT_EQ(heap.Malloc(0), nullptr);
}

TEST(PalHeapTest, ExhaustionReturnsNull) {
  PalHeap heap(256);
  void* a = heap.Malloc(200);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(heap.Malloc(200), nullptr);
  heap.Free(a);
  EXPECT_NE(heap.Malloc(200), nullptr);
}

TEST(PalHeapTest, FreeCoalescesNeighbours) {
  PalHeap heap(1024);
  void* a = heap.Malloc(100);
  void* b = heap.Malloc(100);
  void* c = heap.Malloc(100);
  ASSERT_NE(c, nullptr);
  size_t before = heap.LargestFreeBlock();
  heap.Free(a);
  heap.Free(c);
  heap.Free(b);  // Middle free must merge all three with the tail.
  EXPECT_GT(heap.LargestFreeBlock(), before);
  EXPECT_EQ(heap.BytesInUse(), 0u);
  EXPECT_TRUE(heap.CheckConsistency());
  // The fully coalesced arena admits one near-arena-size allocation again.
  EXPECT_NE(heap.Malloc(900), nullptr);
}

TEST(PalHeapTest, FreeNullIsNoop) {
  PalHeap heap(256);
  heap.Free(nullptr);
  EXPECT_TRUE(heap.CheckConsistency());
}

TEST(PalHeapTest, ReallocPreservesContents) {
  PalHeap heap(4096);
  uint8_t* p = static_cast<uint8_t*>(heap.Malloc(64));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 64; ++i) {
    p[i] = static_cast<uint8_t>(i);
  }
  uint8_t* q = static_cast<uint8_t*>(heap.Realloc(p, 512));
  ASSERT_NE(q, nullptr);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(q[i], i);
  }
  EXPECT_TRUE(heap.CheckConsistency());
}

TEST(PalHeapTest, ReallocSemanticsEdgeCases) {
  PalHeap heap(1024);
  // Realloc(nullptr, n) == Malloc(n).
  void* a = heap.Realloc(nullptr, 32);
  EXPECT_NE(a, nullptr);
  // Realloc(p, 0) == Free(p).
  EXPECT_EQ(heap.Realloc(a, 0), nullptr);
  EXPECT_EQ(heap.BytesInUse(), 0u);
  // Shrinking stays in place.
  void* b = heap.Malloc(128);
  EXPECT_EQ(heap.Realloc(b, 64), b);
  // Failed grow keeps the original alive.
  void* c = heap.Malloc(700);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(heap.Realloc(b, 5000), nullptr);
  std::memset(b, 0x5a, 64);  // Still writable.
  EXPECT_TRUE(heap.CheckConsistency());
}

TEST(PalHeapTest, WipeZeroesAndResets) {
  PalHeap heap(512);
  uint8_t* p = static_cast<uint8_t*>(heap.Malloc(64));
  std::memset(p, 0xee, 64);
  heap.Wipe();
  EXPECT_EQ(heap.BytesInUse(), 0u);
  EXPECT_NE(heap.Malloc(400), nullptr);
}

// Parameterized stress: random alloc/free/realloc workouts at several arena
// sizes; the allocator must never corrupt its headers and BytesInUse must
// track live allocations exactly.
class PalHeapStressTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PalHeapStressTest, RandomWorkout) {
  PalHeap heap(GetParam());
  Drbg rng(GetParam());
  std::map<void*, size_t> live;
  size_t live_bytes = 0;

  for (int step = 0; step < 2000; ++step) {
    uint64_t action = rng.UniformUint64(3);
    if (action == 0 || live.empty()) {
      size_t size = rng.UniformUint64(GetParam() / 8) + 1;
      void* p = heap.Malloc(size);
      if (p != nullptr) {
        size_t actual = heap.AllocatedSize(p);
        live[p] = actual;
        live_bytes += actual;
        std::memset(p, 0xab, size);
      }
    } else if (action == 1) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformUint64(live.size())));
      live_bytes -= it->second;
      heap.Free(it->first);
      live.erase(it);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformUint64(live.size())));
      size_t new_size = rng.UniformUint64(GetParam() / 8) + 1;
      void* p = heap.Realloc(it->first, new_size);
      if (p != nullptr) {
        live_bytes -= it->second;
        live.erase(it);
        size_t actual = heap.AllocatedSize(p);
        live[p] = actual;
        live_bytes += actual;
      }
    }
    ASSERT_TRUE(heap.CheckConsistency()) << "step " << step;
    ASSERT_EQ(heap.BytesInUse(), live_bytes) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(ArenaSizes, PalHeapStressTest,
                         ::testing::Values(512, 2048, 8192, 32768));

}  // namespace
}  // namespace flicker
