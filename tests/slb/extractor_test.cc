// The §5.2 extraction tool: transitive closure, module resolution, and the
// printf/malloc diagnostics the paper describes.

#include "src/slb/extractor.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace flicker {
namespace {

// A little OpenSSL-ish application call graph.
CallGraph SampleProgram() {
  CallGraph graph;
  graph.AddFunction({"main", 50, 400, {"parse_args", "serve_requests"}});
  graph.AddFunction({"parse_args", 30, 250, {"printf"}});
  graph.AddFunction({"serve_requests", 80, 700, {"handle_csr", "log_request"}});
  graph.AddFunction({"handle_csr", 60, 500, {"ca_sign", "printf"}});
  graph.AddFunction({"ca_sign", 40, 350, {"rsa_sign", "sha1", "append_db"}});
  graph.AddFunction({"append_db", 25, 200, {"malloc", "free"}});
  graph.AddFunction({"log_request", 15, 120, {"printf"}});
  graph.AddFunction({"keygen_main", 20, 160, {"rsa_keygen", "tpm_seal"}});
  return graph;
}

TEST(ExtractorTest, UnknownTargetFails) {
  CallGraph graph = SampleProgram();
  EXPECT_FALSE(ExtractPal(graph, "no_such_function").ok());
}

TEST(ExtractorTest, ClosureIsTransitive) {
  CallGraph graph = SampleProgram();
  Result<PalSpec> spec = ExtractPal(graph, "ca_sign");
  ASSERT_TRUE(spec.ok());
  // ca_sign pulls in append_db (its callee) but not handle_csr (its caller)
  // or log_request (unrelated).
  EXPECT_EQ(spec.value().extracted_functions, (std::vector<std::string>{"append_db", "ca_sign"}));
  EXPECT_EQ(spec.value().extracted_lines, 40 + 25);
  EXPECT_EQ(spec.value().extracted_bytes, 350u + 200u);
}

TEST(ExtractorTest, LeafSymbolsResolveToModules) {
  CallGraph graph = SampleProgram();
  Result<PalSpec> spec = ExtractPal(graph, "ca_sign");
  ASSERT_TRUE(spec.ok());
  // rsa_sign/sha1 -> Crypto, malloc/free -> Memory Management.
  const auto& modules = spec.value().required_modules;
  EXPECT_NE(std::find(modules.begin(), modules.end(), kModuleCrypto), modules.end());
  EXPECT_NE(std::find(modules.begin(), modules.end(), kModuleMemoryManagement), modules.end());
  EXPECT_TRUE(spec.value().Buildable());
}

TEST(ExtractorTest, PrintfIsReportedUnresolved) {
  // handle_csr calls printf, which no module provides: the tool reports it
  // so the programmer "can simply eliminate the call" (§5.2).
  CallGraph graph = SampleProgram();
  Result<PalSpec> spec = ExtractPal(graph, "handle_csr");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec.value().Buildable());
  EXPECT_EQ(spec.value().unresolved_symbols, std::vector<std::string>{"printf"});
}

TEST(ExtractorTest, TpmSymbolsResolve) {
  CallGraph graph = SampleProgram();
  Result<PalSpec> spec = ExtractPal(graph, "keygen_main");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().Buildable());
  const auto& modules = spec.value().required_modules;
  EXPECT_NE(std::find(modules.begin(), modules.end(), kModuleTpmUtilities), modules.end());
}

TEST(ExtractorTest, CyclicCallGraphTerminates) {
  CallGraph graph;
  graph.AddFunction({"a", 10, 80, {"b"}});
  graph.AddFunction({"b", 10, 80, {"a", "sha1"}});
  Result<PalSpec> spec = ExtractPal(graph, "a");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().extracted_functions, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(spec.value().extracted_lines, 20);
}

TEST(ExtractorTest, SelfRecursionHandled) {
  CallGraph graph;
  graph.AddFunction({"fact", 8, 64, {"fact"}});
  Result<PalSpec> spec = ExtractPal(graph, "fact");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().extracted_functions, std::vector<std::string>{"fact"});
}

}  // namespace
}  // namespace flicker
