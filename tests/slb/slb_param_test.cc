// Parameterized SLB builds: PAL app-code sizes, module combinations, and
// SKINIT cost scaling through the full pipeline.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/flicker_platform.h"
#include "src/slb/slb_core.h"
#include "src/slb/slb_layout.h"

namespace flicker {
namespace {

class SizedPal : public Pal {
 public:
  SizedPal(size_t code_bytes, std::vector<std::string> modules)
      : code_bytes_(code_bytes), modules_(std::move(modules)) {}
  std::string name() const override { return "sized-" + std::to_string(code_bytes_); }
  std::vector<std::string> required_modules() const override { return modules_; }
  size_t app_code_bytes() const override { return code_bytes_; }
  Status Execute(PalContext* context) override {
    return context->SetOutputs(BytesOf(name()));
  }

 private:
  size_t code_bytes_;
  std::vector<std::string> modules_;
};

// ---- App-code size sweep: geometry, measurement, and end-to-end runs ----

class PalSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PalSizeTest, BuildsAndRuns) {
  size_t code = GetParam();
  Result<PalBinary> binary = BuildPal(std::make_shared<SizedPal>(code, std::vector<std::string>{}));
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary.value().measured_length, kSlbCodeOffset + 312 + code);

  FlickerPlatform platform;
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
  // SKINIT cost scales with measured length.
  double expected = platform.machine()->timing().SkinitMillis(binary.value().measured_length);
  EXPECT_NEAR(result.value().skinit_ms, expected, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PalSizeTest,
                         ::testing::Values(16, 512, 4096, 16384, 40000, 60000));

TEST(PalSizeBoundary, ExactLimitAcceptedOverLimitRejected) {
  size_t max_code = kSlbMaxMeasuredSize - kSlbCodeOffset - 312;
  EXPECT_TRUE(BuildPal(std::make_shared<SizedPal>(max_code, std::vector<std::string>{})).ok());
  EXPECT_FALSE(
      BuildPal(std::make_shared<SizedPal>(max_code + 1, std::vector<std::string>{})).ok());
}

// ---- Module-combination sweep: TCB accounting is additive and distinct ----

class ModuleComboTest : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<std::string> Combo(int index) {
    switch (index) {
      case 0:
        return {};
      case 1:
        return {kModuleTpmDriver};
      case 2:
        return {kModuleTpmDriver, kModuleTpmUtilities};
      case 3:
        return {kModuleCrypto};
      case 4:
        return {kModuleTpmDriver, kModuleTpmUtilities, kModuleCrypto, kModuleSecureChannel};
      default:
        return {};
    }
  }
};

TEST_P(ModuleComboTest, TcbMatchesLinkedModules) {
  std::vector<std::string> combo = Combo(GetParam());
  Result<PalBinary> binary = BuildPal(std::make_shared<SizedPal>(100, combo));
  ASSERT_TRUE(binary.ok());

  ModuleRegistry registry;
  int expected_lines = registry.Find(kModuleSlbCore).value()->lines_of_code;
  for (const std::string& name : combo) {
    expected_lines += registry.Find(name).value()->lines_of_code;
  }
  EXPECT_EQ(binary.value().tcb.total_lines, expected_lines);
  EXPECT_EQ(binary.value().tcb.linked_modules.size(), combo.size() + 1);
}

TEST_P(ModuleComboTest, MeasurementsDistinctAcrossCombos) {
  Result<PalBinary> this_combo = BuildPal(std::make_shared<SizedPal>(100, Combo(GetParam())));
  ASSERT_TRUE(this_combo.ok());
  for (int other = 0; other < 5; ++other) {
    if (other == GetParam()) {
      continue;
    }
    Result<PalBinary> other_combo = BuildPal(std::make_shared<SizedPal>(100, Combo(other)));
    ASSERT_TRUE(other_combo.ok());
    EXPECT_NE(this_combo.value().skinit_measurement, other_combo.value().skinit_measurement)
        << "combos " << GetParam() << " vs " << other;
  }
}

INSTANTIATE_TEST_SUITE_P(Combos, ModuleComboTest, ::testing::Values(0, 1, 2, 3, 4));

// ---- Stub builds across sizes ----

class StubSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(StubSizeTest, StubKeepsSkinitConstant) {
  PalBuildOptions options;
  options.measurement_stub = true;
  Result<PalBinary> binary =
      BuildPal(std::make_shared<SizedPal>(GetParam(), std::vector<std::string>{}), options);
  ASSERT_TRUE(binary.ok());
  // SKINIT streams only the stub regardless of app size.
  EXPECT_EQ(binary.value().measured_length, kMeasurementStubSize);

  FlickerPlatform platform;
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary.value(), Bytes());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok());
  EXPECT_NEAR(result.value().skinit_ms,
              platform.machine()->timing().SkinitMillis(kMeasurementStubSize), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StubSizeTest, ::testing::Values(64, 4096, 30000, 50000));

}  // namespace
}  // namespace flicker
