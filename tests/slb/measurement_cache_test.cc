// The SLB measurement cache: repeated launches of an unchanged SLB must be
// served from cache, and any mutation of the region - a staged-image change,
// a direct memory write, an erase - must invalidate it so PCR 17 always
// reflects the bytes actually in memory (no stale-measurement attestation).

#include <memory>

#include <gtest/gtest.h>

#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"
#include "src/hw/memory.h"
#include "src/slb/measurement_cache.h"
#include "src/slb/slb_layout.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

class EchoPal : public Pal {
 public:
  std::string name() const override { return "echo"; }
  std::vector<std::string> required_modules() const override { return {}; }
  size_t app_code_bytes() const override { return 128; }
  Status Execute(PalContext* context) override {
    return context->SetOutputs(context->inputs());
  }
};

Bytes Pattern(size_t len, uint8_t seed) {
  Bytes out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return out;
}

TEST(MeasurementCacheTest, CleanHitSkipsRehash) {
  PhysicalMemory memory(1 << 20);
  SlbMeasurementCache cache;
  Bytes content = Pattern(4096, 1);
  ASSERT_TRUE(memory.Write(0x1000, content).ok());

  MeasureOutcome outcome;
  Result<Bytes> first = cache.Measure(&memory, 0x1000, 4096, &outcome);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(MeasureOutcome::kHashed, outcome);
  EXPECT_EQ(Sha1::Digest(content), first.value());

  Result<Bytes> second = cache.Measure(&memory, 0x1000, 4096, &outcome);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(MeasureOutcome::kCleanHit, outcome);
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(1u, cache.hash_count());
  EXPECT_EQ(1u, cache.clean_hit_count());
}

TEST(MeasurementCacheTest, IdenticalRewriteVerifiesWithoutRehash) {
  PhysicalMemory memory(1 << 20);
  SlbMeasurementCache cache;
  Bytes content = Pattern(4096, 9);
  ASSERT_TRUE(memory.Write(0x1000, content).ok());
  MeasureOutcome outcome;
  ASSERT_TRUE(cache.Measure(&memory, 0x1000, 4096, &outcome).ok());

  // The steady-state session cycle: erase, then restage identical bytes.
  ASSERT_TRUE(memory.Erase(0x1000, 4096).ok());
  ASSERT_TRUE(memory.Write(0x1000, content).ok());

  Result<Bytes> digest = cache.Measure(&memory, 0x1000, 4096, &outcome);
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(MeasureOutcome::kVerifiedHit, outcome);
  EXPECT_EQ(Sha1::Digest(content), digest.value());
  EXPECT_EQ(1u, cache.hash_count());
}

TEST(MeasurementCacheTest, MutationForcesRehash) {
  PhysicalMemory memory(1 << 20);
  SlbMeasurementCache cache;
  Bytes content = Pattern(4096, 17);
  ASSERT_TRUE(memory.Write(0x1000, content).ok());
  MeasureOutcome outcome;
  Result<Bytes> original = cache.Measure(&memory, 0x1000, 4096, &outcome);
  ASSERT_TRUE(original.ok());

  content[123] ^= 0x01;
  ASSERT_TRUE(memory.Write(0x1000, content).ok());

  Result<Bytes> mutated = cache.Measure(&memory, 0x1000, 4096, &outcome);
  ASSERT_TRUE(mutated.ok());
  EXPECT_EQ(MeasureOutcome::kHashed, outcome);
  EXPECT_NE(original.value(), mutated.value());
  EXPECT_EQ(Sha1::Digest(content), mutated.value());

  // Erase invalidates too: the digest must track the zeroed region.
  ASSERT_TRUE(memory.Erase(0x1000, 4096).ok());
  Result<Bytes> erased = cache.Measure(&memory, 0x1000, 4096, &outcome);
  ASSERT_TRUE(erased.ok());
  EXPECT_EQ(MeasureOutcome::kHashed, outcome);
  EXPECT_EQ(Sha1::Digest(Bytes(4096, 0)), erased.value());
}

TEST(MeasurementCacheTest, SteadyStateSessionsHitTheCache) {
  FlickerPlatform platform;
  PalBuildOptions build;
  build.measurement_stub = true;
  Result<PalBinary> binary = BuildPal(std::make_shared<EchoPal>(), build);
  ASSERT_TRUE(binary.ok());

  Result<FlickerSessionResult> first = platform.ExecuteSession(binary.value(), BytesOf("a"));
  ASSERT_TRUE(first.ok());
  uint64_t hashes_after_first = platform.measurement_cache()->hash_count();

  Result<FlickerSessionResult> second = platform.ExecuteSession(binary.value(), BytesOf("a"));
  ASSERT_TRUE(second.ok());

  // Same SLB, same inputs: identical dynamic PCR 17, and no additional full
  // hash - the restaged region verified against the snapshot.
  EXPECT_EQ(first.value().record.pcr17_during_execution,
            second.value().record.pcr17_during_execution);
  EXPECT_EQ(hashes_after_first, platform.measurement_cache()->hash_count());
  EXPECT_GT(platform.measurement_cache()->verified_hit_count(), 0u);
  // The verified hit is charged memory-touch cost, not a SHA-1 pass.
  EXPECT_LT(second.value().record.stub_hash_ms, first.value().record.stub_hash_ms);
}

TEST(MeasurementCacheTest, OneByteMutationChangesDynamicPcr17) {
  PalBuildOptions build;
  build.measurement_stub = true;

  FlickerPlatform platform;
  Result<PalBinary> binary = BuildPal(std::make_shared<EchoPal>(), build);
  ASSERT_TRUE(binary.ok());
  Result<FlickerSessionResult> warm = platform.ExecuteSession(binary.value(), BytesOf("a"));
  ASSERT_TRUE(warm.ok());

  // Mutate one byte beyond the measured stub prefix but inside the 64 KB
  // region: SKINIT's stub measurement is unchanged, so only the stub's
  // full-region hash can expose the difference.
  PalBinary mutated = binary.value();
  mutated.image[kMeasurementStubSize + 64] ^= 0x01;
  Result<FlickerSessionResult> tampered = platform.ExecuteSession(mutated, BytesOf("a"));
  ASSERT_TRUE(tampered.ok());
  EXPECT_EQ(warm.value().launch.measurement, tampered.value().launch.measurement);
  EXPECT_NE(warm.value().record.pcr17_during_execution,
            tampered.value().record.pcr17_during_execution);

  // No stale measurement: a cold platform (empty cache) running the mutated
  // binary lands on exactly the same PCR 17 value.
  FlickerPlatform cold;
  Result<FlickerSessionResult> cold_run = cold.ExecuteSession(mutated, BytesOf("a"));
  ASSERT_TRUE(cold_run.ok());
  EXPECT_EQ(cold_run.value().record.pcr17_during_execution,
            tampered.value().record.pcr17_during_execution);
}

}  // namespace
}  // namespace flicker
