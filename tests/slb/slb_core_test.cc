// SLB core negative paths and invariants not covered by the end-to-end
// platform tests.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/core/flicker_platform.h"
#include "src/slb/slb_core.h"

namespace flicker {
namespace {

TEST(SlbCoreTest, RunOutsideSessionRejected) {
  Machine machine{MachineConfig{}};
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>()).take();
  SkinitLaunch fake_launch;
  fake_launch.slb_base = kSlbFixedBase;
  Result<SessionRecord> record = SlbCore::Run(&machine, fake_launch, binary, SlbCoreOptions());
  ASSERT_FALSE(record.ok());
  EXPECT_EQ(record.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SlbCoreTest, RunWithMismatchedBaseRejected) {
  FlickerPlatform platform;
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>()).take();
  ASSERT_TRUE(platform.flicker_module()->WriteSlb(binary.image).ok());
  ASSERT_TRUE(platform.flicker_module()->WriteInputs(Bytes()).ok());
  Result<SkinitLaunch> launch = platform.flicker_module()->StartSession();
  ASSERT_TRUE(launch.ok());

  SkinitLaunch wrong = launch.value();
  wrong.slb_base += 0x1000;
  Result<SessionRecord> record =
      SlbCore::Run(platform.machine(), wrong, binary, SlbCoreOptions());
  ASSERT_FALSE(record.ok());
  EXPECT_EQ(record.status().code(), StatusCode::kFailedPrecondition);

  // Clean up the real session so the platform is reusable.
  ASSERT_TRUE(SlbCore::Run(platform.machine(), launch.value(), binary, SlbCoreOptions()).ok());
  ASSERT_TRUE(platform.flicker_module()->FinishSession().ok());
}

TEST(SlbCoreTest, SegmentsLoadedDuringSessionRestoredAfter) {
  FlickerPlatform platform;

  class SegmentCheckPal : public Pal {
   public:
    explicit SegmentCheckPal(Machine* machine) : machine_(machine) {}
    std::string name() const override { return "segment-check"; }
    std::vector<std::string> required_modules() const override { return {}; }
    size_t app_code_bytes() const override { return 64; }
    Status Execute(PalContext* context) override {
      // Inside the session: segments based at slb_base (position-dependent
      // PAL sees itself at offset 0).
      base_during_session_ = machine_->bsp()->code_segment.base;
      return context->SetOutputs(BytesOf("ok"));
    }
    uint64_t base_during_session_ = 0;

   private:
    Machine* machine_;
  };

  auto pal = std::make_shared<SegmentCheckPal>(platform.machine());
  PalBinary binary = BuildPal(pal).take();
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary, Bytes());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok());
  EXPECT_EQ(pal->base_during_session_, kSlbFixedBase);
  // After resume: flat segments again.
  EXPECT_EQ(platform.machine()->bsp()->code_segment.base, 0u);
  EXPECT_EQ(platform.machine()->bsp()->data_segment.base, 0u);
}

TEST(SlbCoreTest, RingDropsToThreeOnlyWithOsProtection) {
  FlickerPlatform platform;

  class RingCheckPal : public Pal {
   public:
    explicit RingCheckPal(Machine* machine) : machine_(machine) {}
    std::string name() const override { return "ring-check"; }
    std::vector<std::string> required_modules() const override { return {}; }
    size_t app_code_bytes() const override { return 64; }
    Status Execute(PalContext* context) override {
      ring_during_session_ = machine_->bsp()->ring;
      return context->SetOutputs(BytesOf("ok"));
    }
    int ring_during_session_ = -1;

   private:
    Machine* machine_;
  };

  // Without OS protection: ring 0.
  auto pal0 = std::make_shared<RingCheckPal>(platform.machine());
  PalBinary plain = BuildPal(pal0).take();
  ASSERT_TRUE(platform.ExecuteSession(plain, Bytes()).ok());
  EXPECT_EQ(pal0->ring_during_session_, 0);

  // With OS protection: ring 3, back to 0 after.
  auto pal3 = std::make_shared<RingCheckPal>(platform.machine());
  PalBuildOptions options;
  options.os_protection = true;
  PalBinary guarded = BuildPal(pal3, options).take();
  ASSERT_TRUE(platform.ExecuteSession(guarded, Bytes()).ok());
  EXPECT_EQ(pal3->ring_during_session_, 3);
  EXPECT_EQ(platform.machine()->bsp()->ring, 0);
}

TEST(SlbCoreTest, OutputsOverflowFailsSessionButPlatformRecovers) {
  FlickerPlatform platform;
  class ChattyPal : public Pal {
   public:
    std::string name() const override { return "chatty"; }
    std::vector<std::string> required_modules() const override { return {}; }
    size_t app_code_bytes() const override { return 64; }
    Status Execute(PalContext* context) override {
      return context->SetOutputs(Bytes(5000, 0x41));  // > 4 KB page.
    }
  };
  PalBinary binary = BuildPal(std::make_shared<ChattyPal>()).take();
  Result<FlickerSessionResult> result = platform.ExecuteSession(binary, Bytes());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  EXPECT_EQ(result.value().record.pal_status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(platform.machine()->in_secure_session());

  // The next session runs fine.
  PalBinary hello = BuildPal(std::make_shared<HelloWorldPal>()).take();
  Result<FlickerSessionResult> next = platform.ExecuteSession(hello, Bytes());
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next.value().ok());
}

}  // namespace
}  // namespace flicker
