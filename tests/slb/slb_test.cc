// SLB image construction, module linking, TCB accounting, patching, and
// measurement determinism.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/hello.h"
#include "src/slb/module_registry.h"
#include "src/slb/slb_core.h"
#include "src/slb/slb_layout.h"

namespace flicker {
namespace {

// A PAL that references a symbol no module provides.
class PrintfPal : public Pal {
 public:
  std::string name() const override { return "printf-user"; }
  std::vector<std::string> required_modules() const override { return {}; }
  std::vector<std::string> required_symbols() const override { return {"printf"}; }
  size_t app_code_bytes() const override { return 64; }
  Status Execute(PalContext*) override { return Status::Ok(); }
};

// malloc resolves only when the Memory Management module is linked.
class MallocPal : public Pal {
 public:
  explicit MallocPal(bool link_mm) : link_mm_(link_mm) {}
  std::string name() const override { return "malloc-user"; }
  std::vector<std::string> required_modules() const override {
    return link_mm_ ? std::vector<std::string>{kModuleMemoryManagement}
                    : std::vector<std::string>{};
  }
  std::vector<std::string> required_symbols() const override { return {"malloc", "free"}; }
  size_t app_code_bytes() const override { return 64; }
  Status Execute(PalContext*) override { return Status::Ok(); }

 private:
  bool link_mm_;
};

class HugePal : public Pal {
 public:
  std::string name() const override { return "huge"; }
  std::vector<std::string> required_modules() const override { return {}; }
  size_t app_code_bytes() const override { return 61 * 1024; }
  Status Execute(PalContext*) override { return Status::Ok(); }
};

TEST(ModuleRegistryTest, PaperModuleTableIsPresent) {
  ModuleRegistry registry;
  ASSERT_EQ(registry.modules().size(), 7u);

  // Fig. 6 values.
  const PalModule* slb_core = registry.Find(kModuleSlbCore).value();
  EXPECT_EQ(slb_core->lines_of_code, 94);
  EXPECT_EQ(slb_core->binary_bytes, 312u);
  EXPECT_TRUE(slb_core->mandatory);

  const PalModule* crypto = registry.Find(kModuleCrypto).value();
  EXPECT_EQ(crypto->lines_of_code, 2262);
  EXPECT_EQ(crypto->binary_bytes, 31380u);

  const PalModule* tpm_util = registry.Find(kModuleTpmUtilities).value();
  EXPECT_EQ(tpm_util->lines_of_code, 889);

  EXPECT_FALSE(registry.Find("No Such Module").ok());
}

TEST(ModuleRegistryTest, SyntheticCodeDeterministicAndSized) {
  ModuleRegistry registry;
  const PalModule* module = registry.Find(kModuleTpmDriver).value();
  Bytes code1 = ModuleRegistry::SyntheticCode(*module);
  Bytes code2 = ModuleRegistry::SyntheticCode(*module);
  EXPECT_EQ(code1, code2);
  EXPECT_EQ(code1.size(), module->binary_bytes);
}

TEST(PalBuilderTest, MinimalPalTcbIsTiny) {
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  // "as few as 250 lines": SLB Core (94) + hello world (6).
  EXPECT_EQ(binary.value().tcb.total_lines, 94 + 6);
  EXPECT_LE(binary.value().tcb.total_lines, 250);
  EXPECT_EQ(binary.value().tcb.linked_modules, std::vector<std::string>{kModuleSlbCore});
}

TEST(PalBuilderTest, ImageGeometry) {
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  const PalBinary& b = binary.value();
  EXPECT_EQ(b.image.size(), kSlbRegionSize);
  EXPECT_EQ(b.entry_point, kSlbCodeOffset);
  EXPECT_EQ(b.measured_length, kSlbCodeOffset + 312 + 96);  // Core + app code.
  // Header encodes length and entry little-endian.
  EXPECT_EQ(static_cast<uint16_t>(b.image[0] | (b.image[1] << 8)), b.measured_length);
  EXPECT_EQ(static_cast<uint16_t>(b.image[2] | (b.image[3] << 8)), b.entry_point);
}

TEST(PalBuilderTest, UnresolvedSymbolRejected) {
  Result<PalBinary> binary = BuildPal(std::make_shared<PrintfPal>());
  ASSERT_FALSE(binary.ok());
  EXPECT_EQ(binary.status().code(), StatusCode::kNotFound);
}

TEST(PalBuilderTest, MallocNeedsMemoryManagementModule) {
  EXPECT_FALSE(BuildPal(std::make_shared<MallocPal>(false)).ok());
  Result<PalBinary> with_mm = BuildPal(std::make_shared<MallocPal>(true));
  ASSERT_TRUE(with_mm.ok());
  // TCB grows by exactly the Memory Management module.
  EXPECT_EQ(with_mm.value().tcb.total_lines, 94 + 657);
}

TEST(PalBuilderTest, OversizedPalRejected) {
  Result<PalBinary> binary = BuildPal(std::make_shared<HugePal>());
  ASSERT_FALSE(binary.ok());
  EXPECT_EQ(binary.status().code(), StatusCode::kResourceExhausted);
}

TEST(PalBuilderTest, MeasurementIsDeterministic) {
  Result<PalBinary> a = BuildPal(std::make_shared<HelloWorldPal>());
  Result<PalBinary> b = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().skinit_measurement, b.value().skinit_measurement);
  EXPECT_EQ(a.value().image, b.value().image);
}

TEST(PalBuilderTest, DifferentPalsDifferentMeasurements) {
  Result<PalBinary> hello = BuildPal(std::make_shared<HelloWorldPal>());
  Result<PalBinary> malloc_pal = BuildPal(std::make_shared<MallocPal>(true));
  ASSERT_TRUE(hello.ok());
  ASSERT_TRUE(malloc_pal.ok());
  EXPECT_NE(hello.value().skinit_measurement, malloc_pal.value().skinit_measurement);
}

// Version bumps change identity - the recompiled-binary property.
TEST(PalBuilderTest, CodeVersionChangesMeasurement) {
  class V2Hello : public HelloWorldPal {
   public:
    std::string code_version() const override { return "2"; }
  };
  Result<PalBinary> v1 = BuildPal(std::make_shared<HelloWorldPal>());
  Result<PalBinary> v2 = BuildPal(std::make_shared<V2Hello>());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(v1.value().skinit_measurement, v2.value().skinit_measurement);
}

TEST(PalBuilderTest, OsProtectionChangesImageAndTcb) {
  PalBuildOptions options;
  options.os_protection = true;
  Result<PalBinary> with = BuildPal(std::make_shared<HelloWorldPal>(), options);
  Result<PalBinary> without = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NE(with.value().skinit_measurement, without.value().skinit_measurement);
  EXPECT_EQ(with.value().tcb.total_lines, 94 + 5 + 6);  // + OS Protection (5 LOC).
}

TEST(PalBuilderTest, PatchingIsDeterministicPerBase) {
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  Bytes img1 = binary.value().image;
  Bytes img2 = binary.value().image;
  PatchSlbImage(&img1, kSlbFixedBase);
  PatchSlbImage(&img2, kSlbFixedBase);
  EXPECT_EQ(img1, img2);
  EXPECT_NE(img1, binary.value().image);  // Patch actually wrote something.

  Bytes img3 = binary.value().image;
  PatchSlbImage(&img3, 0x200000);
  EXPECT_NE(img1, img3);  // Different base, different descriptors.
  EXPECT_NE(MeasureSlbPrefix(img1, binary.value().measured_length),
            MeasureSlbPrefix(img3, binary.value().measured_length));
}

TEST(PalBuilderTest, SkinitMeasurementMatchesPatchedPrefix) {
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>());
  ASSERT_TRUE(binary.ok());
  Bytes patched = binary.value().image;
  PatchSlbImage(&patched, kSlbFixedBase);
  EXPECT_EQ(binary.value().skinit_measurement,
            MeasureSlbPrefix(patched, binary.value().measured_length));
}

TEST(PalBuilderTest, MeasurementStubGeometry) {
  PalBuildOptions options;
  options.measurement_stub = true;
  Result<PalBinary> binary = BuildPal(std::make_shared<HelloWorldPal>(), options);
  ASSERT_TRUE(binary.ok());
  // SKINIT only streams the 4736-byte stub (§7.2).
  EXPECT_EQ(binary.value().measured_length, kMeasurementStubSize);
  EXPECT_FALSE(binary.value().stub_body_measurement.empty());
  EXPECT_NE(binary.value().stub_body_measurement, binary.value().skinit_measurement);
  // Identity under the stub covers the full image.
  EXPECT_EQ(binary.value().identity(), binary.value().stub_body_measurement);
}

TEST(PalBuilderTest, StubSkinitMeasurementIndependentOfPal) {
  // The stub prefix is the same bytes for every PAL; only the full-image
  // hash differs. (That is what makes the optimization sound: SKINIT
  // attests the stub, the stub attests the PAL.)
  PalBuildOptions options;
  options.measurement_stub = true;
  Result<PalBinary> hello = BuildPal(std::make_shared<HelloWorldPal>(), options);
  Result<PalBinary> malloc_pal = BuildPal(std::make_shared<MallocPal>(true), options);
  ASSERT_TRUE(hello.ok());
  ASSERT_TRUE(malloc_pal.ok());
  EXPECT_EQ(hello.value().skinit_measurement, malloc_pal.value().skinit_measurement);
  EXPECT_NE(hello.value().stub_body_measurement, malloc_pal.value().stub_body_measurement);
}

TEST(IoPageTest, RoundTripAndBounds) {
  PhysicalMemory memory(64 * 1024);
  ASSERT_TRUE(WriteIoPage(&memory, 0, BytesOf("hello")).ok());
  EXPECT_EQ(ReadIoPage(memory, 0).value(), BytesOf("hello"));
  ASSERT_TRUE(WriteIoPage(&memory, 0, Bytes()).ok());
  EXPECT_EQ(ReadIoPage(memory, 0).value(), Bytes());
  EXPECT_FALSE(WriteIoPage(&memory, 0, Bytes(kSlbIoPageSize, 1)).ok());
  // Corrupt length field.
  Bytes bad;
  PutUint32(&bad, 100000);
  ASSERT_TRUE(memory.Write(0, bad).ok());
  EXPECT_FALSE(ReadIoPage(memory, 0).ok());
}

TEST(TerminationConstantTest, StableAndSized) {
  EXPECT_EQ(FlickerTerminationConstant().size(), 20u);
  EXPECT_EQ(FlickerTerminationConstant(), FlickerTerminationConstant());
}

}  // namespace
}  // namespace flicker
