// PCR bank semantics: the §2.3 static/dynamic rules everything else builds
// on.

#include "src/tpm/pcr_bank.h"

#include <gtest/gtest.h>

#include "src/crypto/sha1.h"

namespace flicker {
namespace {

TEST(PcrBankTest, PowerCycleValues) {
  PcrBank bank;
  // Static PCRs boot to zero.
  for (int i = 0; i < kFirstDynamicPcr; ++i) {
    EXPECT_EQ(bank.Read(i).value(), Bytes(kPcrSize, 0x00)) << "PCR " << i;
  }
  // Dynamic PCRs boot to -1 so a verifier can distinguish reboot from
  // dynamic reset.
  for (int i = kFirstDynamicPcr; i < kNumPcrs; ++i) {
    EXPECT_EQ(bank.Read(i).value(), Bytes(kPcrSize, 0xff)) << "PCR " << i;
  }
}

TEST(PcrBankTest, DynamicResetZeroesOnlyDynamic) {
  PcrBank bank;
  Bytes m(kPcrSize, 0x11);
  ASSERT_TRUE(bank.Extend(3, m).ok());
  Bytes static_value = bank.Read(3).value();

  bank.DynamicReset();
  EXPECT_EQ(bank.Read(17).value(), Bytes(kPcrSize, 0x00));
  EXPECT_EQ(bank.Read(23).value(), Bytes(kPcrSize, 0x00));
  EXPECT_EQ(bank.Read(3).value(), static_value);  // Static untouched.
}

TEST(PcrBankTest, ExtendIsHashChain) {
  PcrBank bank;
  bank.DynamicReset();
  Bytes m(kPcrSize, 0xaa);
  ASSERT_TRUE(bank.Extend(17, m).ok());
  Bytes expected = Sha1::Digest(Concat(Bytes(kPcrSize, 0x00), m));
  EXPECT_EQ(bank.Read(17).value(), expected);

  Bytes m2(kPcrSize, 0xbb);
  ASSERT_TRUE(bank.Extend(17, m2).ok());
  EXPECT_EQ(bank.Read(17).value(), Sha1::Digest(Concat(expected, m2)));
}

TEST(PcrBankTest, ExtendOrderMatters) {
  PcrBank a;
  PcrBank b;
  a.DynamicReset();
  b.DynamicReset();
  Bytes m1(kPcrSize, 0x01);
  Bytes m2(kPcrSize, 0x02);
  ASSERT_TRUE(a.Extend(17, m1).ok());
  ASSERT_TRUE(a.Extend(17, m2).ok());
  ASSERT_TRUE(b.Extend(17, m2).ok());
  ASSERT_TRUE(b.Extend(17, m1).ok());
  EXPECT_NE(a.Read(17).value(), b.Read(17).value());
}

TEST(PcrBankTest, ExtendRejectsBadArguments) {
  PcrBank bank;
  EXPECT_FALSE(bank.Extend(-1, Bytes(kPcrSize, 0)).ok());
  EXPECT_FALSE(bank.Extend(kNumPcrs, Bytes(kPcrSize, 0)).ok());
  EXPECT_FALSE(bank.Extend(0, Bytes(19, 0)).ok());
  EXPECT_FALSE(bank.Extend(0, Bytes(21, 0)).ok());
  EXPECT_FALSE(bank.Read(24).ok());
  EXPECT_FALSE(bank.Read(-1).ok());
}

TEST(PcrBankTest, CompositeDependsOnSelectionAndValues) {
  PcrBank bank;
  Bytes c17 = bank.ComputeComposite(PcrSelection({17})).value();
  Bytes c18 = bank.ComputeComposite(PcrSelection({18})).value();
  Bytes c17_18 = bank.ComputeComposite(PcrSelection({17, 18})).value();
  EXPECT_NE(c17, c18);  // Same values, different selection -> different hash.
  EXPECT_NE(c17, c17_18);

  ASSERT_TRUE(bank.Extend(17, Bytes(kPcrSize, 0x42)).ok());
  EXPECT_NE(bank.ComputeComposite(PcrSelection({17})).value(), c17);
}

TEST(PcrBankTest, CompositeEmptySelectionRejected) {
  PcrBank bank;
  EXPECT_FALSE(bank.ComputeComposite(PcrSelection()).ok());
}

TEST(PcrBankTest, ExpectedPcr17Formula) {
  // V = H(0^20 || H(SLB)) - §4.3.1's "H(0x00^20 || H(P))".
  Bytes slb_measurement = Sha1::Digest(BytesOf("some PAL"));
  PcrBank bank;
  bank.DynamicReset();
  ASSERT_TRUE(bank.Extend(17, slb_measurement).ok());
  EXPECT_EQ(bank.Read(17).value(), ExpectedPcr17AfterSkinit(slb_measurement));
}

TEST(PcrSelectionTest, MaskAndIndices) {
  PcrSelection sel({17, 0, 23});
  EXPECT_TRUE(sel.IsSelected(0));
  EXPECT_TRUE(sel.IsSelected(17));
  EXPECT_TRUE(sel.IsSelected(23));
  EXPECT_FALSE(sel.IsSelected(1));
  EXPECT_EQ(sel.Indices(), (std::vector<int>{0, 17, 23}));
  EXPECT_FALSE(sel.Empty());
  EXPECT_TRUE(PcrSelection().Empty());
}

TEST(PcrSelectionTest, SerializeIsStable) {
  PcrSelection sel({17});
  Bytes wire = sel.Serialize();
  ASSERT_EQ(wire.size(), 5u);
  EXPECT_EQ(wire[0], 0x00);
  EXPECT_EQ(wire[1], 0x03);  // 3-byte bitmap.
  EXPECT_EQ(wire[2], 0x00);  // PCRs 0-7.
  EXPECT_EQ(wire[3], 0x00);  // PCRs 8-15.
  EXPECT_EQ(wire[4], 0x02);  // PCRs 16-23: bit 1 = PCR 17.
}

}  // namespace
}  // namespace flicker
