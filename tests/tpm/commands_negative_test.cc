// Hostile-input battery for the wire-level TPM command codecs: every parse
// entry point must return a typed Status (never crash, never accept a
// mangled frame as well-formed) on truncated, garbled, oversized and
// zero-length input. Run under ASan+UBSan by verify.sh --net.

#include "src/tpm/commands.h"

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

// Applies the standard battery to one parser given a known-good wire image.
void RunBattery(const char* name, const Bytes& valid,
                const std::function<Status(const Bytes&)>& parse,
                bool valid_should_parse = true) {
  if (valid_should_parse) {
    EXPECT_TRUE(parse(valid).ok()) << name << " rejects its own valid wire";
  }
  // Zero-length.
  EXPECT_FALSE(parse(Bytes()).ok()) << name << " accepted empty input";
  // Truncated at every prefix.
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(cut));
    EXPECT_FALSE(parse(truncated).ok()) << name << " accepted truncation at " << cut;
  }
  // Garbled: flip every byte in turn; a changed-but-parsed value is
  // acceptable (some bytes are free payload), crashing is not.
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    Bytes garbled = valid;
    garbled[pos] ^= 0xA5;
    (void)parse(garbled);
  }
  // Oversized garbage.
  (void)parse(Bytes(1u << 21, 0xEE));
  // Trailing garbage after a valid image.
  Bytes padded = valid;
  padded.push_back(0x00);
  (void)parse(padded);
}

TEST(CommandsNegativeTest, ParseCommandFrameBattery) {
  Bytes valid = BuildGetRandom(16);
  RunBattery("ParseCommandFrame", valid,
             [](const Bytes& b) { return ParseCommandFrame(b).status(); });

  // paramSize lies about the frame length: both directions must fail.
  Bytes inflated = valid;
  inflated[5] += 4;  // Header paramSize low byte (frame is < 256 bytes).
  EXPECT_FALSE(ParseCommandFrame(inflated).ok());
  Bytes deflated = valid;
  deflated[5] -= 1;
  EXPECT_FALSE(ParseCommandFrame(deflated).ok());

  // A response tag is not a command.
  Bytes bad_tag = valid;
  bad_tag[0] = 0x00;
  bad_tag[1] = 0xC4;
  EXPECT_FALSE(ParseCommandFrame(bad_tag).ok());
}

TEST(CommandsNegativeTest, ParseResponseFrameBattery) {
  Bytes valid = BuildResponseFrame(false, Status::Ok(), BytesOf("payload"));
  RunBattery("ParseResponseFrame", valid,
             [](const Bytes& b) { return ParseResponseFrame(b).status(); });

  // An in-band error decodes back to its Status, not a crash.
  Bytes error_frame =
      BuildResponseFrame(false, PermissionDeniedError("locality"), Bytes());
  Result<Bytes> verdict = ParseResponseFrame(error_frame);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kPermissionDenied);
}

TEST(CommandsNegativeTest, PeekersSurviveShortFrames) {
  Bytes valid = BuildGetRandom(4);
  EXPECT_TRUE(PeekOrdinal(valid).ok());
  for (size_t cut = 0; cut < kFrameHeaderSize; ++cut) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(cut));
    EXPECT_FALSE(PeekOrdinal(truncated).ok()) << "cut=" << cut;
    (void)PeekReturnCode(truncated);  // Must not crash on short input.
  }
}

TEST(CommandsNegativeTest, ExtendTargetPcrRejectsJunk) {
  int index = -1;
  EXPECT_FALSE(ExtendTargetPcr(Bytes(), &index));
  EXPECT_FALSE(ExtendTargetPcr(Bytes(3, 0x41), &index));
  EXPECT_FALSE(ExtendTargetPcr(BuildGetRandom(8), &index));

  Bytes valid = BuildPcrExtend(kSkinitPcr, Bytes(20, 1));
  ASSERT_TRUE(ExtendTargetPcr(valid, &index));
  EXPECT_EQ(index, kSkinitPcr);
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ExtendTargetPcr(truncated, &index)) << "cut=" << cut;
  }
}

TEST(CommandsNegativeTest, PayloadCodecsSurviveHostileBytes) {
  // The response-payload codecs have no builder counterparts here, so the
  // battery runs on raw hostile bytes only: empty, short, patterned, huge.
  const std::vector<std::pair<const char*, std::function<Status(const Bytes&)>>> codecs = {
      {"ParseSessionPayload",
       [](const Bytes& b) { return ParseSessionPayload(b).status(); }},
      {"ParseQuotePayload", [](const Bytes& b) { return ParseQuotePayload(b).status(); }},
      {"ParseHandlePayload", [](const Bytes& b) { return ParseHandlePayload(b).status(); }},
      {"ParseCounterPayload", [](const Bytes& b) { return ParseCounterPayload(b).status(); }},
      {"ParseBlobPayload", [](const Bytes& b) { return ParseBlobPayload(b).status(); }},
      {"ParseCapabilityPayload",
       [](const Bytes& b) { return ParseCapabilityPayload(b).status(); }},
      {"ParseStartupPayload",
       [](const Bytes& b) { return ParseStartupPayload(b).status(); }},
  };
  std::vector<Bytes> hostile;
  hostile.push_back(Bytes());
  for (size_t n = 1; n <= 32; ++n) {
    Bytes pattern(n);
    for (size_t i = 0; i < n; ++i) {
      pattern[i] = static_cast<uint8_t>(0x41 + i * 7);
    }
    hostile.push_back(std::move(pattern));
  }
  hostile.push_back(Bytes(1u << 20, 0xFF));  // Huge all-ones (absurd lengths).
  for (const auto& codec : codecs) {
    for (const Bytes& input : hostile) {
      (void)codec.second(input);  // Typed verdict or benign parse; no crash.
    }
    // Empty specifically must never parse (every payload has fixed fields).
    EXPECT_FALSE(codec.second(Bytes()).ok()) << codec.first;
  }
}

TEST(CommandsNegativeTest, DispatchFrameAlwaysAnswersWellFormed) {
  // The device side receives frames straight off a hostile bus: whatever
  // arrives, DispatchFrame must produce a parseable response frame carrying
  // a typed error, not crash or echo garbage.
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  std::vector<Bytes> hostile;
  hostile.push_back(Bytes());
  hostile.push_back(Bytes(1, 0xC1));
  hostile.push_back(Bytes(kFrameHeaderSize - 1, 0x00));
  hostile.push_back(Bytes(64, 0xA5));
  Bytes valid = BuildGetRandom(8);
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    hostile.push_back(Bytes(valid.begin(), valid.begin() + static_cast<long>(cut)));
  }
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    Bytes garbled = valid;
    garbled[pos] ^= 0xA5;
    hostile.push_back(std::move(garbled));
  }
  for (const Bytes& frame : hostile) {
    Bytes response = DispatchFrame(&tpm, frame);
    ASSERT_GE(response.size(), kFrameHeaderSize);
    (void)ParseResponseFrame(response);  // Well-formed enough to decode.
  }
}

}  // namespace
}  // namespace flicker
