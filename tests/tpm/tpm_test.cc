// The TPM device model: sessions, seal/unseal PCR binding, quotes, NV
// storage, monotonic counters, ownership, and command timing.

#include "src/tpm/tpm.h"

#include <gtest/gtest.h>

#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"
#include "src/tpm/tpm_util.h"

namespace flicker {
namespace {

class TpmTest : public ::testing::Test {
 protected:
  TpmTest() : tpm_(&clock_, BroadcomBcm0102Profile()) {}

  Bytes OwnerAuth() { return Sha1::Digest(BytesOf("owner")); }

  void TakeOwnership() { ASSERT_TRUE(tpm_.TakeOwnership(OwnerAuth()).ok()); }

  SimClock clock_;
  Tpm tpm_;
};

TEST_F(TpmTest, GetRandomReturnsRequestedLengthAndAdvancesClock) {
  double before = clock_.NowMillis();
  Bytes r = tpm_.GetRandom(128);
  EXPECT_EQ(r.size(), 128u);
  EXPECT_NEAR(clock_.NowMillis() - before, 1.3, 0.01);  // Broadcom GetRandom.
  EXPECT_NE(tpm_.GetRandom(128), r);
}

TEST_F(TpmTest, PcrExtendChargesPaperLatency) {
  ASSERT_TRUE(tpm_.RequestLocality(2).ok());  // PCR 17 is locality-gated.
  double before = clock_.NowMillis();
  ASSERT_TRUE(tpm_.PcrExtend(17, Bytes(kPcrSize, 1)).ok());
  EXPECT_NEAR(clock_.NowMillis() - before, 1.2, 0.01);  // Table 1 PCR Extend.
}

TEST_F(TpmTest, SealUnsealRoundTripCurrentPcrs) {
  Bytes secret = BytesOf("the CA's private key");
  Bytes auth = Sha1::Digest(BytesOf("blob auth"));
  Result<SealedBlob> blob =
      TpmSealData(&tpm_, secret, PcrSelection({17}), {}, auth);
  ASSERT_TRUE(blob.ok());
  Result<Bytes> back = TpmUnsealData(&tpm_, blob.value(), auth);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), secret);
}

TEST_F(TpmTest, UnsealFailsAfterPcrChanges) {
  Bytes auth = Sha1::Digest(BytesOf("blob auth"));
  Result<SealedBlob> blob =
      TpmSealData(&tpm_, BytesOf("secret"), PcrSelection({17}), {}, auth);
  ASSERT_TRUE(blob.ok());

  // Extending PCR 17 revokes access - the termination-constant mechanism.
  ASSERT_TRUE(tpm_.RequestLocality(2).ok());
  ASSERT_TRUE(tpm_.PcrExtend(17, Bytes(kPcrSize, 0x77)).ok());
  Result<Bytes> back = TpmUnsealData(&tpm_, blob.value(), auth);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kIntegrityFailure);
}

TEST_F(TpmTest, SealToExplicitTargetPcrValue) {
  // Seal for a *different* future PCR 17 value (the P -> P' pattern of
  // §4.3.1): unseal must fail now and succeed once PCR 17 holds the target.
  Bytes target = Sha1::Digest(BytesOf("the other PAL's V"));
  Bytes auth = Sha1::Digest(BytesOf("auth"));
  Result<SealedBlob> blob = TpmSealData(&tpm_, BytesOf("for P' only"), PcrSelection({17}),
                                        {{17, target}}, auth);
  ASSERT_TRUE(blob.ok());

  EXPECT_FALSE(TpmUnsealData(&tpm_, blob.value(), auth).ok());

  // Force PCR 17 to the target via hardware reset + extend chain:
  // target = SHA1(0^20 || m) for m = the extend below.
  tpm_.hardware()->SkinitReset(target);  // PCR17 = H(0 || target)... not equal.
  // Construct properly instead: reset to zero then find no preimage - so
  // emulate by sealing to the value PCR 17 *will* have after a known extend.
  Bytes m = Sha1::Digest(BytesOf("slb"));
  Bytes v = Sha1::Digest(Concat(Bytes(kPcrSize, 0x00), m));
  Result<SealedBlob> blob2 =
      TpmSealData(&tpm_, BytesOf("for P' only"), PcrSelection({17}), {{17, v}}, auth);
  ASSERT_TRUE(blob2.ok());
  tpm_.hardware()->SkinitReset(m);  // PCR17 = H(0^20 || m) = v.
  Result<Bytes> back = TpmUnsealData(&tpm_, blob2.value(), auth);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), BytesOf("for P' only"));
}

TEST_F(TpmTest, UnsealRejectsWrongBlobAuth) {
  Bytes auth = Sha1::Digest(BytesOf("right"));
  Result<SealedBlob> blob = TpmSealData(&tpm_, BytesOf("s"), PcrSelection({17}), {}, auth);
  ASSERT_TRUE(blob.ok());
  Result<Bytes> back = TpmUnsealData(&tpm_, blob.value(), Sha1::Digest(BytesOf("wrong")));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(TpmTest, UnsealRejectsTamperedBlob) {
  Bytes auth = Sha1::Digest(BytesOf("auth"));
  Result<SealedBlob> blob = TpmSealData(&tpm_, BytesOf("s"), PcrSelection({17}), {}, auth);
  ASSERT_TRUE(blob.ok());
  SealedBlob tampered = blob.value();
  tampered.ciphertext[tampered.ciphertext.size() / 2] ^= 1;
  EXPECT_FALSE(TpmUnsealData(&tpm_, tampered, auth).ok());
}

TEST_F(TpmTest, UnsealRejectsTruncatedBlob) {
  Bytes auth = Sha1::Digest(BytesOf("auth"));
  Result<SealedBlob> blob = TpmSealData(&tpm_, BytesOf("s"), PcrSelection({17}), {}, auth);
  ASSERT_TRUE(blob.ok());
  SealedBlob truncated = blob.value();
  truncated.ciphertext.resize(truncated.ciphertext.size() / 2);
  EXPECT_FALSE(TpmUnsealData(&tpm_, truncated, auth).ok());
  EXPECT_FALSE(TpmUnsealData(&tpm_, SealedBlob{Bytes(3, 0)}, auth).ok());
}

TEST_F(TpmTest, SealedBlobsAreRandomized) {
  Bytes auth = Sha1::Digest(BytesOf("auth"));
  Result<SealedBlob> b1 = TpmSealData(&tpm_, BytesOf("same"), PcrSelection({17}), {}, auth);
  Result<SealedBlob> b2 = TpmSealData(&tpm_, BytesOf("same"), PcrSelection({17}), {}, auth);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_FALSE(b1.value() == b2.value());
}

TEST_F(TpmTest, SealLargePayloadUsesHybridEnvelope) {
  Bytes auth = Sha1::Digest(BytesOf("auth"));
  Bytes big(3000, 0x5c);  // Far beyond an RSA block.
  Result<SealedBlob> blob = TpmSealData(&tpm_, big, PcrSelection({17}), {}, auth);
  ASSERT_TRUE(blob.ok());
  Result<Bytes> back = TpmUnsealData(&tpm_, blob.value(), auth);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), big);
}

TEST_F(TpmTest, SealUnsealTimingMatchesBroadcom) {
  Bytes auth = Sha1::Digest(BytesOf("auth"));
  double t0 = clock_.NowMillis();
  Result<SealedBlob> blob = TpmSealData(&tpm_, BytesOf("x"), PcrSelection({17}), {}, auth);
  ASSERT_TRUE(blob.ok());
  double seal_elapsed = clock_.NowMillis() - t0;
  // Seal itself is 10.2 ms; the OIAP session start and GetRandom add a few.
  EXPECT_GT(seal_elapsed, 10.0);
  EXPECT_LT(seal_elapsed, 25.0);

  double t1 = clock_.NowMillis();
  ASSERT_TRUE(TpmUnsealData(&tpm_, blob.value(), auth).ok());
  double unseal_elapsed = clock_.NowMillis() - t1;
  EXPECT_GT(unseal_elapsed, 898.0);  // Table 4: 898.3 ms.
  EXPECT_LT(unseal_elapsed, 915.0);
}

TEST_F(TpmTest, AuthFailureTerminatesSession) {
  AuthSessionInfo session = tpm_.StartOiap();
  CommandAuth bad;
  bad.session_handle = session.handle;
  bad.nonce_odd = Bytes(kPcrSize, 1);
  bad.auth = Bytes(kPcrSize, 2);  // Garbage HMAC.
  Result<SealedBlob> blob = tpm_.Seal(BytesOf("x"), PcrSelection({17}), {},
                                      Sha1::Digest(BytesOf("a")), bad);
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kPermissionDenied);

  // The session is gone: reusing the handle also fails.
  Result<SealedBlob> blob2 = tpm_.Seal(BytesOf("x"), PcrSelection({17}), {},
                                       Sha1::Digest(BytesOf("a")), bad);
  ASSERT_FALSE(blob2.ok());
}

TEST_F(TpmTest, OsapSessionSealWorks) {
  Bytes nonce_odd_osap = Bytes(kPcrSize, 0x31);
  AuthSessionInfo session = tpm_.StartOsap(AuthEntity::kSrk, nonce_odd_osap);
  EXPECT_TRUE(session.osap);
  EXPECT_FALSE(session.shared_secret.empty());

  Bytes data = BytesOf("osap sealed");
  Bytes param_digest =
      Sha1::Digest(Concat(BytesOf("TPM_Seal"), data, PcrSelection({17}).Serialize()));
  CommandAuth auth;
  auth.session_handle = session.handle;
  auth.nonce_odd = Bytes(kPcrSize, 0x32);
  auth.auth = Tpm::ComputeCommandAuth(session.shared_secret, param_digest, session.nonce_even,
                                      auth.nonce_odd);
  Result<SealedBlob> blob =
      tpm_.Seal(data, PcrSelection({17}), {}, Sha1::Digest(BytesOf("a")), auth);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
}

TEST_F(TpmTest, QuoteVerifiesAndCoversNonce) {
  Bytes nonce = tpm_.GetRandom(20);
  Result<TpmQuote> quote = tpm_.Quote(nonce, PcrSelection({17, 18}));
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(quote.value().pcr_values.size(), 2u);
  EXPECT_EQ(quote.value().nonce, nonce);

  // Signature checks out against the AIK over QUOT || composite || nonce.
  Bytes values;
  for (const Bytes& v : quote.value().pcr_values) {
    values.insert(values.end(), v.begin(), v.end());
  }
  Bytes buffer = quote.value().selection.Serialize();
  PutUint32(&buffer, static_cast<uint32_t>(values.size()));
  buffer.insert(buffer.end(), values.begin(), values.end());
  Bytes composite = Sha1::Digest(buffer);
  Bytes info = BytesOf("QUOT");
  info.insert(info.end(), composite.begin(), composite.end());
  info.insert(info.end(), nonce.begin(), nonce.end());
  EXPECT_TRUE(RsaVerifySha1(tpm_.aik_public(), info, quote.value().signature));
}

TEST_F(TpmTest, QuoteChargesPaperLatency) {
  double before = clock_.NowMillis();
  ASSERT_TRUE(tpm_.Quote(Bytes(20, 1), PcrSelection({17})).ok());
  EXPECT_NEAR(clock_.NowMillis() - before, 972.7, 0.01);  // Table 1.
}

TEST_F(TpmTest, QuoteEmptySelectionRejected) {
  EXPECT_FALSE(tpm_.Quote(Bytes(20, 1), PcrSelection()).ok());
}

TEST_F(TpmTest, NvRequiresOwnership) {
  Status st = TpmDefineNvSpace(&tpm_, 1, 64, PcrSelection(), {}, PcrSelection(), {}, OwnerAuth());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(TpmTest, NvDefineWriteRead) {
  TakeOwnership();
  ASSERT_TRUE(
      TpmDefineNvSpace(&tpm_, 1, 64, PcrSelection(), {}, PcrSelection(), {}, OwnerAuth()).ok());
  ASSERT_TRUE(tpm_.NvWrite(1, BytesOf("nv payload")).ok());
  Result<Bytes> back = tpm_.NvRead(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), BytesOf("nv payload"));
}

TEST_F(TpmTest, NvDefineRejectsWrongOwnerAuth) {
  TakeOwnership();
  Status st = TpmDefineNvSpace(&tpm_, 1, 64, PcrSelection(), {}, PcrSelection(), {},
                               Sha1::Digest(BytesOf("not the owner")));
  EXPECT_EQ(st.code(), StatusCode::kPermissionDenied);
}

TEST_F(TpmTest, NvPcrGatingEnforced) {
  TakeOwnership();
  // Gate reads on the current PCR 17 value.
  ASSERT_TRUE(TpmDefineNvSpace(&tpm_, 2, 64, PcrSelection({17}), {}, PcrSelection(), {},
                               OwnerAuth())
                  .ok());
  ASSERT_TRUE(tpm_.NvWrite(2, BytesOf("gated")).ok());
  EXPECT_TRUE(tpm_.NvRead(2).ok());

  // Change PCR 17: reads must now fail.
  ASSERT_TRUE(tpm_.RequestLocality(2).ok());
  ASSERT_TRUE(tpm_.PcrExtend(17, Bytes(kPcrSize, 0x01)).ok());
  Result<Bytes> denied = tpm_.NvRead(2);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(TpmTest, NvWriteGatingEnforced) {
  TakeOwnership();
  ASSERT_TRUE(TpmDefineNvSpace(&tpm_, 3, 64, PcrSelection(), {}, PcrSelection({17}), {},
                               OwnerAuth())
                  .ok());
  ASSERT_TRUE(tpm_.NvWrite(3, BytesOf("v1")).ok());
  ASSERT_TRUE(tpm_.RequestLocality(2).ok());
  ASSERT_TRUE(tpm_.PcrExtend(17, Bytes(kPcrSize, 0x01)).ok());
  EXPECT_EQ(tpm_.NvWrite(3, BytesOf("v2")).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(tpm_.NvRead(3).value(), BytesOf("v1"));
}

TEST_F(TpmTest, NvBoundsAndDuplicates) {
  TakeOwnership();
  ASSERT_TRUE(
      TpmDefineNvSpace(&tpm_, 4, 8, PcrSelection(), {}, PcrSelection(), {}, OwnerAuth()).ok());
  EXPECT_EQ(tpm_.NvWrite(4, Bytes(9, 0)).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(TpmDefineNvSpace(&tpm_, 4, 8, PcrSelection(), {}, PcrSelection(), {}, OwnerAuth())
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tpm_.NvRead(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tpm_.NvWrite(99, Bytes()).code(), StatusCode::kNotFound);
}

TEST_F(TpmTest, MonotonicCounterLifecycle) {
  TakeOwnership();
  Bytes counter_auth = Sha1::Digest(BytesOf("counter"));
  Result<uint32_t> id = TpmCreateCounter(&tpm_, counter_auth, OwnerAuth());
  ASSERT_TRUE(id.ok());

  EXPECT_EQ(tpm_.ReadCounter(id.value()).value(), 0u);
  EXPECT_EQ(tpm_.IncrementCounter(id.value(), counter_auth).value(), 1u);
  EXPECT_EQ(tpm_.IncrementCounter(id.value(), counter_auth).value(), 2u);
  EXPECT_EQ(tpm_.ReadCounter(id.value()).value(), 2u);
}

TEST_F(TpmTest, CounterRejectsWrongAuth) {
  TakeOwnership();
  Bytes counter_auth = Sha1::Digest(BytesOf("counter"));
  Result<uint32_t> id = TpmCreateCounter(&tpm_, counter_auth, OwnerAuth());
  ASSERT_TRUE(id.ok());
  Result<uint64_t> r = tpm_.IncrementCounter(id.value(), Sha1::Digest(BytesOf("wrong")));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(tpm_.ReadCounter(id.value()).value(), 0u);  // Unchanged.
}

TEST_F(TpmTest, CounterUnknownIdRejected) {
  EXPECT_EQ(tpm_.ReadCounter(1234).status().code(), StatusCode::kNotFound);
}

TEST_F(TpmTest, TakeOwnershipRules) {
  EXPECT_EQ(tpm_.TakeOwnership(Bytes(10, 0)).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(tpm_.TakeOwnership(OwnerAuth()).ok());
  EXPECT_EQ(tpm_.TakeOwnership(OwnerAuth()).code(), StatusCode::kFailedPrecondition);
}

TEST_F(TpmTest, HardwareSkinitResetSetsLocalityAndPcr17) {
  Bytes measurement = Sha1::Digest(BytesOf("slb"));
  tpm_.hardware()->SkinitReset(measurement);
  EXPECT_EQ(tpm_.locality(), 2);
  EXPECT_EQ(tpm_.PcrRead(17).value(), ExpectedPcr17AfterSkinit(measurement));
  // Other dynamic PCRs are zero, not -1.
  EXPECT_EQ(tpm_.PcrRead(18).value(), Bytes(kPcrSize, 0x00));
}

TEST_F(TpmTest, PowerCycleRestoresBootState) {
  tpm_.hardware()->SkinitReset(Sha1::Digest(BytesOf("slb")));
  tpm_.hardware()->PowerCycle();
  EXPECT_EQ(tpm_.locality(), 0);
  EXPECT_EQ(tpm_.PcrRead(17).value(), Bytes(kPcrSize, 0xff));
}

TEST_F(TpmTest, GetCapabilityReportsProfile) {
  Tpm::Capabilities caps = tpm_.GetCapability();
  EXPECT_EQ(caps.num_pcrs, 24);
  EXPECT_EQ(caps.key_bits, 2048u);
  EXPECT_EQ(caps.profile_name, "Broadcom BCM0102");
}

TEST_F(TpmTest, AikBlobLoadsIntoSlot) {
  Bytes blob = tpm_.GetAikBlob();
  EXPECT_GT(blob.size(), 100u);
  Result<uint32_t> handle = tpm_.LoadKey2(blob);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(tpm_.loaded_key_count(), 1u);

  Result<TpmQuote> quote = tpm_.QuoteWithKey(handle.value(), Bytes(20, 3), PcrSelection({17}));
  ASSERT_TRUE(quote.ok());
  // The signature verifies against the AIK public key.
  Bytes buffer = quote.value().selection.Serialize();
  Bytes values = quote.value().pcr_values[0];
  PutUint32(&buffer, static_cast<uint32_t>(values.size()));
  buffer.insert(buffer.end(), values.begin(), values.end());
  Bytes info = BytesOf("QUOT");
  Bytes composite = Sha1::Digest(buffer);
  info.insert(info.end(), composite.begin(), composite.end());
  info.insert(info.end(), quote.value().nonce.begin(), quote.value().nonce.end());
  EXPECT_TRUE(RsaVerifySha1(tpm_.aik_public(), info, quote.value().signature));

  ASSERT_TRUE(tpm_.FlushKey(handle.value()).ok());
  EXPECT_EQ(tpm_.loaded_key_count(), 0u);
  // A flushed handle no longer quotes.
  EXPECT_FALSE(tpm_.QuoteWithKey(handle.value(), Bytes(20, 3), PcrSelection({17})).ok());
}

TEST_F(TpmTest, TamperedAikBlobRejected) {
  Bytes blob = tpm_.GetAikBlob();
  blob[blob.size() / 2] ^= 1;
  Result<uint32_t> handle = tpm_.LoadKey2(blob);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kIntegrityFailure);
  EXPECT_FALSE(tpm_.LoadKey2(Bytes(3, 0)).ok());
  EXPECT_FALSE(tpm_.LoadKey2(Bytes()).ok());
}

TEST_F(TpmTest, FlushUnknownHandleFails) {
  EXPECT_EQ(tpm_.FlushKey(0x9999).code(), StatusCode::kNotFound);
}

TEST_F(TpmTest, ExplicitLoadQuoteFlushCostsSameAsConvenienceQuote) {
  double t0 = clock_.NowMillis();
  ASSERT_TRUE(tpm_.Quote(Bytes(20, 1), PcrSelection({17})).ok());
  double convenience = clock_.NowMillis() - t0;

  double t1 = clock_.NowMillis();
  Result<uint32_t> handle = tpm_.LoadKey2(tpm_.GetAikBlob());
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(tpm_.QuoteWithKey(handle.value(), Bytes(20, 1), PcrSelection({17})).ok());
  ASSERT_TRUE(tpm_.FlushKey(handle.value()).ok());
  double explicit_path = clock_.NowMillis() - t1;
  EXPECT_NEAR(convenience, explicit_path, 0.01);
  EXPECT_NEAR(convenience, 972.7, 0.01);  // Calibration preserved.
}

TEST(TpmProfileTest, InfineonIsFaster) {
  SimClock clock;
  Tpm tpm(&clock, InfineonProfile());
  double t0 = clock.NowMillis();
  ASSERT_TRUE(tpm.Quote(Bytes(20, 1), PcrSelection({17})).ok());
  EXPECT_NEAR(clock.NowMillis() - t0, 331.0, 0.01);  // §7.2: Infineon quote.
}

TEST(TpmDeterminismTest, SameSeedSameKeys) {
  SimClock c1;
  SimClock c2;
  Tpm a(&c1, BroadcomBcm0102Profile(), TpmConfig{.manufacture_seed = 99});
  Tpm b(&c2, BroadcomBcm0102Profile(), TpmConfig{.manufacture_seed = 99});
  EXPECT_EQ(a.aik_public().Serialize(), b.aik_public().Serialize());
  Tpm c(&c2, BroadcomBcm0102Profile(), TpmConfig{.manufacture_seed = 100});
  EXPECT_NE(c.aik_public().Serialize(), a.aik_public().Serialize());
}

}  // namespace
}  // namespace flicker
