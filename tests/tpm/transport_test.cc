// The wire-level TPM transport: frame marshalling, the TIS locality rules,
// the command trace ring, fault injection, and the authorization-session
// negative paths (replayed nonces, garbled frames, stale handles) that must
// fail for cryptographic reasons once commands cross a real wire.

#include "src/tpm/transport.h"

#include <gtest/gtest.h>

#include "src/crypto/sha1.h"
#include "src/hw/timing.h"
#include "src/tpm/commands.h"
#include "src/tpm/tpm_util.h"

namespace flicker {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : tpm_(&clock_, BroadcomBcm0102Profile()), transport_(&tpm_), client_(&transport_) {
    // The client constructor fetches the AIK/SRK public keys over the wire;
    // start each test with a clean trace.
    transport_.ClearTrace();
  }

  SimClock clock_;
  Tpm tpm_;
  TpmTransport transport_;
  TpmClient client_;
};

// ---- Frame marshalling ----

TEST_F(TransportTest, CommandFrameRoundTrip) {
  Bytes body = BytesOf("parameters");
  Bytes frame = BuildCommandFrame(kTagRequest, kOrdPcrRead, body);
  EXPECT_EQ(frame.size(), kFrameHeaderSize + body.size());

  Result<CommandFrame> back = ParseCommandFrame(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().tag, kTagRequest);
  EXPECT_EQ(back.value().ordinal, static_cast<uint32_t>(kOrdPcrRead));
  EXPECT_EQ(back.value().body, body);

  // Truncated or length-inconsistent frames are rejected.
  EXPECT_FALSE(ParseCommandFrame(Bytes(frame.begin(), frame.begin() + 6)).ok());
  Bytes bad_len = frame;
  bad_len[5] ^= 0x01;  // paramSize no longer matches the frame length.
  EXPECT_FALSE(ParseCommandFrame(bad_len).ok());
}

TEST_F(TransportTest, ResponseFrameCarriesStatusInBand) {
  Bytes ok_frame = BuildResponseFrame(false, Status::Ok(), BytesOf("payload"));
  Result<Bytes> payload = ParseResponseFrame(ok_frame);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload.value(), BytesOf("payload"));
  EXPECT_EQ(PeekReturnCode(ok_frame), 0u);

  Bytes err_frame =
      BuildResponseFrame(true, PermissionDeniedError("authorization HMAC mismatch"), Bytes());
  Result<Bytes> err = ParseResponseFrame(err_frame);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(err.status().message(), "authorization HMAC mismatch");
  EXPECT_EQ(PeekReturnCode(err_frame), ReturnCodeFor(StatusCode::kPermissionDenied));
}

// ---- Timing neutrality: marshalling adds no simulated time ----

TEST_F(TransportTest, ClientChargesExactlyTheDeviceLatency) {
  double before = clock_.NowMillis();
  Bytes r = client_.GetRandom(128);
  EXPECT_EQ(r.size(), 128u);
  EXPECT_NEAR(clock_.NowMillis() - before, 1.3, 0.001);  // Broadcom GetRandom.

  before = clock_.NowMillis();
  ASSERT_TRUE(client_.PcrRead(0).ok());
  EXPECT_NEAR(clock_.NowMillis() - before, 0.4, 0.001);  // Broadcom PCR Read.
}

// ---- Trace ring ----

TEST_F(TransportTest, TraceRecordsOrdinalLocalityLatencyAndResult) {
  client_.GetRandom(16);
  ASSERT_TRUE(client_.PcrExtend(0, Bytes(kPcrSize, 0xAB)).ok());

  std::vector<TraceEntry> trace = transport_.TraceSnapshot();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].ordinal, static_cast<uint32_t>(kOrdGetRandom));
  EXPECT_EQ(trace[0].locality, 0);
  EXPECT_NEAR(trace[0].latency_ms, 1.3, 0.001);
  EXPECT_EQ(trace[0].result_code, 0u);
  EXPECT_EQ(trace[1].ordinal, static_cast<uint32_t>(kOrdExtend));
  EXPECT_NEAR(trace[1].latency_ms, 1.2, 0.001);
  EXPECT_EQ(trace[1].result_code, 0u);
  EXPECT_STREQ(TpmOrdinalName(trace[1].ordinal), "TPM_ORD_Extend");
}

TEST_F(TransportTest, TraceRingRetainsTheMostRecentCapacityEntries) {
  const size_t total = TpmTransport::kTraceCapacity + 10;
  for (size_t i = 0; i < total; ++i) {
    ASSERT_TRUE(client_.PcrRead(0).ok());
  }
  std::vector<TraceEntry> trace = transport_.TraceSnapshot();
  ASSERT_EQ(trace.size(), TpmTransport::kTraceCapacity);
  // Oldest-first, ending at the last command issued.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seq, trace[i - 1].seq + 1);
  }
  // Every transmit records exactly one entry (the ctor's two key fetches
  // included), so the last sequence number tracks the command total.
  EXPECT_EQ(trace.back().seq + 1, transport_.total_commands());
}

// ---- Locality enforcement (§2.3: software extends, hardware resets) ----

TEST_F(TransportTest, SoftwareCannotReachHardwareLocalities) {
  for (int locality : {3, 4}) {
    Status direct = tpm_.RequestLocality(locality);
    EXPECT_EQ(direct.code(), StatusCode::kPermissionDenied) << locality;
    Status via_transport = transport_.RequestLocality(locality);
    EXPECT_EQ(via_transport.code(), StatusCode::kPermissionDenied) << locality;
  }
  EXPECT_EQ(tpm_.RequestLocality(5).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(transport_.RequestLocality(2).ok());
  EXPECT_EQ(transport_.locality(), 2);
  EXPECT_TRUE(transport_.ReleaseLocality().ok());
  EXPECT_EQ(transport_.locality(), 0);
}

TEST_F(TransportTest, ExtendLocalityTableMatchesTis) {
  // PCR 17-19: localities 2-4. PCR 20: 1-4. PCR 21-22: locality 2 only.
  EXPECT_FALSE(Tpm::ExtendAllowedAt(17, 0));
  EXPECT_FALSE(Tpm::ExtendAllowedAt(17, 1));
  EXPECT_TRUE(Tpm::ExtendAllowedAt(17, 2));
  EXPECT_TRUE(Tpm::ExtendAllowedAt(19, 4));
  EXPECT_FALSE(Tpm::ExtendAllowedAt(20, 0));
  EXPECT_TRUE(Tpm::ExtendAllowedAt(20, 1));
  EXPECT_TRUE(Tpm::ExtendAllowedAt(21, 2));
  EXPECT_FALSE(Tpm::ExtendAllowedAt(21, 4));
  EXPECT_FALSE(Tpm::ExtendAllowedAt(22, 0));
  EXPECT_TRUE(Tpm::ExtendAllowedAt(0, 0));  // Static PCRs: any locality.
  EXPECT_TRUE(Tpm::ExtendAllowedAt(16, 0));
}

TEST_F(TransportTest, DeviceRejectsGatedExtendFromWrongLocality) {
  // Regression for the device model itself: a bare extend of a dynamic PCR
  // at locality 0 is a typed permission error, not a silent success.
  Status st = tpm_.PcrExtend(17, Bytes(kPcrSize, 0x11));
  EXPECT_EQ(st.code(), StatusCode::kPermissionDenied);

  ASSERT_TRUE(tpm_.RequestLocality(2).ok());
  EXPECT_TRUE(tpm_.PcrExtend(17, Bytes(kPcrSize, 0x11)).ok());
  EXPECT_EQ(tpm_.PcrExtend(21, Bytes(kPcrSize, 0x11)).ok(), true);
  ASSERT_TRUE(tpm_.RequestLocality(1).ok());
  EXPECT_EQ(tpm_.PcrExtend(21, Bytes(kPcrSize, 0x11)).code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(tpm_.PcrExtend(20, Bytes(kPcrSize, 0x11)).ok());
}

TEST_F(TransportTest, TransportRefusesGatedExtendBeforeTheDeviceSeesIt) {
  double before = clock_.NowMillis();
  Result<Bytes> rsp = transport_.Transmit(BuildPcrExtend(17, Bytes(kPcrSize, 0x22)));
  ASSERT_FALSE(rsp.ok());
  EXPECT_EQ(rsp.status().code(), StatusCode::kPermissionDenied);
  // Refused at the interface: the device never charged extend latency.
  EXPECT_NEAR(clock_.NowMillis() - before, 0.0, 1e-9);

  std::vector<TraceEntry> trace = transport_.TraceSnapshot();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].ordinal, static_cast<uint32_t>(kOrdExtend));
  EXPECT_EQ(trace[0].result_code, ReturnCodeFor(StatusCode::kPermissionDenied));
}

TEST_F(TransportTest, ClientNegotiatesLocalityForDynamicPcrExtends) {
  // The driver raises locality 2 through the TIS, extends, and drops back -
  // so software extends of PCR 17 work (extend is always software-legal;
  // only *reset* is hardware-only).
  ASSERT_EQ(client_.locality(), 0);
  ASSERT_TRUE(client_.PcrExtend(kSkinitPcr, Bytes(kPcrSize, 0x33)).ok());
  EXPECT_EQ(client_.locality(), 0);

  std::vector<TraceEntry> trace = transport_.TraceSnapshot();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].ordinal, static_cast<uint32_t>(kOrdTisRequestLocality));
  EXPECT_EQ(trace[1].ordinal, static_cast<uint32_t>(kOrdExtend));
  EXPECT_EQ(trace[1].locality, 2);
  EXPECT_EQ(trace[2].ordinal, static_cast<uint32_t>(kOrdTisReleaseLocality));
}

// ---- Authorization sessions over the wire: negative paths ----

TEST_F(TransportTest, ReplayedNonceOddIsRejected) {
  Bytes blob_auth = Sha1::Digest(BytesOf("blob auth"));
  Bytes data = BytesOf("secret");
  PcrSelection selection({0});
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Seal"), data, selection.Serialize()));

  AuthSessionInfo session = client_.StartOiap();
  ASSERT_NE(session.handle, 0u);
  CommandAuth auth = tpm_util_internal::MakeAuth(&client_, session, Tpm::WellKnownSecret(),
                                                 param_digest);
  ASSERT_TRUE(client_.Seal(data, selection, {}, blob_auth, auth).ok());

  // Replaying the identical authorization (same nonce_odd, same HMAC) fails:
  // the TPM rolled nonce_even after the first use, so the replayed HMAC no
  // longer verifies. This is the rolling-nonce anti-replay property.
  Result<SealedBlob> replay = client_.Seal(data, selection, {}, blob_auth, auth);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(TransportTest, GarbledAuthorizedFrameFailsTheHmacCheck) {
  Bytes blob_auth = Sha1::Digest(BytesOf("blob auth"));
  Result<SealedBlob> blob =
      TpmSealData(&client_, BytesOf("payload"), PcrSelection({0}), {}, blob_auth);
  ASSERT_TRUE(blob.ok());

  AuthSessionInfo session = client_.StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Unseal"), blob.value().ciphertext));
  CommandAuth auth = tpm_util_internal::MakeAuth(&client_, session, Tpm::WellKnownSecret(),
                                                 param_digest);
  Bytes frame = BuildUnseal(blob.value(), blob_auth, auth);
  // Flip one ciphertext byte past the serde length prefix: the frame still
  // parses, but the parameter digest the device computes no longer matches
  // the one the HMAC covers.
  frame[kFrameHeaderSize + 4] ^= 0x01;

  Result<Bytes> rsp = transport_.Transmit(frame);
  ASSERT_TRUE(rsp.ok());  // Device answered; the rejection is in-band.
  Result<Bytes> payload = ParseResponseFrame(rsp.value());
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(payload.status().message(), "authorization HMAC mismatch");
}

TEST_F(TransportTest, StaleSessionHandleIsRejected) {
  Bytes data = BytesOf("secret");
  PcrSelection selection({0});
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Seal"), data, selection.Serialize()));

  AuthSessionInfo session = client_.StartOiap();
  CommandAuth auth = tpm_util_internal::MakeAuth(&client_, session, Tpm::WellKnownSecret(),
                                                 param_digest);
  client_.TerminateSession(session.handle);

  Result<SealedBlob> stale =
      client_.Seal(data, selection, {}, Sha1::Digest(BytesOf("blob auth")), auth);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(stale.status().message(), "unknown authorization session");
}

TEST_F(TransportTest, OsapSharedSecretAuthorizesAndWrongSecretFails) {
  Bytes data = BytesOf("osap-sealed");
  PcrSelection selection({0});
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Seal"), data, selection.Serialize()));
  Bytes blob_auth = Sha1::Digest(BytesOf("blob auth"));

  AuthSessionInfo session = client_.StartOsap(AuthEntity::kSrk, client_.GetRandom(kPcrSize));
  ASSERT_NE(session.handle, 0u);
  ASSERT_TRUE(session.osap);
  ASSERT_FALSE(session.shared_secret.empty());

  // OSAP commands authorize under the session's shared secret, not the
  // entity secret: the entity secret never crosses the wire again.
  CommandAuth wrong = tpm_util_internal::MakeAuth(&client_, session, Tpm::WellKnownSecret(),
                                                  param_digest);
  Result<SealedBlob> denied = client_.Seal(data, selection, {}, blob_auth, wrong);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  session = client_.StartOsap(AuthEntity::kSrk, client_.GetRandom(kPcrSize));
  CommandAuth good = tpm_util_internal::MakeAuth(&client_, session, session.shared_secret,
                                                 param_digest);
  EXPECT_TRUE(client_.Seal(data, selection, {}, blob_auth, good).ok());
}

// ---- Fault injection ----

TEST_F(TransportTest, DropFaultBurnsTheReceiveTimeoutAndSurfacesUnavailable) {
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kDrop;
  plan.every_n = 1;
  plan.drop_timeout_ms = 7.5;
  transport_.set_fault_plan(plan);

  double before = clock_.NowMillis();
  Result<Bytes> dropped = client_.PcrRead(0);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable);
  EXPECT_NEAR(clock_.NowMillis() - before, 7.5, 0.001);
  EXPECT_EQ(transport_.faults_injected(), 1u);

  std::vector<TraceEntry> trace = transport_.TraceSnapshot();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].result_code, ReturnCodeFor(StatusCode::kUnavailable));
}

TEST_F(TransportTest, GarbleFaultIsRejectedCryptographically) {
  Bytes blob_auth = Sha1::Digest(BytesOf("blob auth"));
  Result<SealedBlob> blob =
      TpmSealData(&client_, BytesOf("payload"), PcrSelection({0}), {}, blob_auth);
  ASSERT_TRUE(blob.ok());

  AuthSessionInfo session = client_.StartOiap();
  Bytes param_digest = Sha1::Digest(Concat(BytesOf("TPM_Unseal"), blob.value().ciphertext));
  CommandAuth auth = tpm_util_internal::MakeAuth(&client_, session, Tpm::WellKnownSecret(),
                                                 param_digest);

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kGarble;
  plan.every_n = 1;  // Garble the very next frame: the Unseal itself.
  transport_.set_fault_plan(plan);
  Result<Bytes> garbled = client_.Unseal(blob.value(), blob_auth, auth);
  transport_.set_fault_plan(FaultPlan());

  ASSERT_FALSE(garbled.ok());
  // The byte flip lands mid-body: either the frame no longer parses (caught
  // as a malformed command) or the HMAC check fails. Both are rejections the
  // real TPM would produce; never a successful unseal.
  EXPECT_TRUE(garbled.status().code() == StatusCode::kPermissionDenied ||
              garbled.status().code() == StatusCode::kInvalidArgument)
      << garbled.status().message();
  EXPECT_EQ(transport_.faults_injected(), 1u);
}

TEST_F(TransportTest, DelayFaultAddsLatencyToSelectedFrames) {
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kDelay;
  plan.every_n = 2;
  plan.delay_ms = 3.0;
  transport_.set_fault_plan(plan);

  // Ctor already transmitted 2 frames, so the next delayed frame is the 2nd.
  double before = clock_.NowMillis();
  ASSERT_TRUE(client_.PcrRead(0).ok());  // Transmit #3: clean.
  double first = clock_.NowMillis() - before;
  before = clock_.NowMillis();
  ASSERT_TRUE(client_.PcrRead(0).ok());  // Transmit #4: delayed.
  double second = clock_.NowMillis() - before;

  EXPECT_NEAR(first, 0.4, 0.001);
  EXPECT_NEAR(second, 0.4 + 3.0, 0.001);
  EXPECT_EQ(transport_.faults_injected(), 1u);
}

// ---- End-to-end: sealed storage and quoting over the wire ----

TEST_F(TransportTest, SealUnsealRoundTripOverTheWire) {
  Bytes blob_auth = Sha1::Digest(BytesOf("blob auth"));
  Result<SealedBlob> blob =
      TpmSealData(&client_, BytesOf("the CA's private key"), PcrSelection({17}), {}, blob_auth);
  ASSERT_TRUE(blob.ok());
  Result<Bytes> back = TpmUnsealData(&client_, blob.value(), blob_auth);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), BytesOf("the CA's private key"));

  // Extending PCR 17 revokes access, exactly as with the raw device.
  ASSERT_TRUE(client_.PcrExtend(17, Bytes(kPcrSize, 0x77)).ok());
  Result<Bytes> denied = TpmUnsealData(&client_, blob.value(), blob_auth);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kIntegrityFailure);
}

TEST_F(TransportTest, QuoteIsASingleFrameAndChargesThePaperLatency) {
  double before = clock_.NowMillis();
  uint64_t commands_before = transport_.total_commands();
  Result<TpmQuote> quote = client_.Quote(BytesOf("verifier nonce"), PcrSelection({17}));
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(transport_.total_commands() - commands_before, 1u);
  EXPECT_NEAR(clock_.NowMillis() - before, 972.7, 0.01);  // Table 1 Quote.
  EXPECT_EQ(quote.value().nonce, BytesOf("verifier nonce"));
  EXPECT_FALSE(quote.value().signature.empty());
}

}  // namespace
}  // namespace flicker
