// TPM v1.2 lifecycle: TPM_Init/TPM_Startup/TPM_SaveState/TPM_SelfTestFull,
// the failure mode in which only Startup/GetTestResult are accepted, and the
// NV/counter write-ahead journal that makes persistent writes crash-safe.

#include <iostream>

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"
#include "src/tpm/tpm.h"
#include "src/tpm/tpm_util.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

constexpr uint32_t kNvIndex = 0x00011234;

class TpmLifecycleTest : public ::testing::Test {
 protected:
  TpmLifecycleTest() : tpm_(&clock_, BroadcomBcm0102Profile()), transport_(&tpm_), client_(&transport_) {}

  // A failing lifecycle assertion is easiest to debug from the wire: dump
  // the transport's command trace alongside the gtest failure.
  void TearDown() override {
    if (HasFailure()) {
      transport_.DumpTrace(std::cerr);
    }
  }

  Bytes OwnerAuth() { return Sha1::Digest(BytesOf("owner")); }

  void DefineNvSpace() {
    ASSERT_TRUE(tpm_.TakeOwnership(OwnerAuth()).ok());
    ASSERT_TRUE(TpmDefineNvSpace(&client_, kNvIndex, 8, PcrSelection(), {}, PcrSelection(), {},
                                 OwnerAuth())
                    .ok());
  }

  // Crashes at the named point while running `fn`, then returns the
  // exception's point for the caller to assert on.
  template <typename Fn>
  std::string CrashAt(const std::string& point, Fn fn) {
    CrashPlan plan;
    plan.crash_at_hit = 1;
    plan.only_point = point;
    FaultScheduler scheduler;
    scheduler.Arm(plan);
    FaultInjectionScope scope(&scheduler);
    try {
      fn();
    } catch (const PowerLossException& e) {
      return e.point();
    }
    return "";
  }

  SimClock clock_;
  Tpm tpm_;
  TpmTransport transport_;
  TpmClient client_;
};

TEST_F(TpmLifecycleTest, StartupWithoutInitRejected) {
  // The model boots operational (BIOS POST already ran Startup); a second
  // Startup with no reset in between is a protocol violation.
  Result<TpmStartupReport> report = tpm_.Startup(TpmStartupType::kClear);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TpmLifecycleTest, InitBlocksEverythingButStartupAndGetTestResult) {
  transport_.hardware()->Init();
  EXPECT_EQ(tpm_.lifecycle_state(), TpmLifecycleState::kNeedStartup);

  // Ordinary commands are refused at the dispatch gate.
  Result<Bytes> pcr = client_.PcrRead(0);
  ASSERT_FALSE(pcr.ok());
  EXPECT_EQ(pcr.status().code(), StatusCode::kFailedPrecondition);

  // The two exempt commands work.
  Result<uint32_t> test = client_.GetTestResult();
  ASSERT_TRUE(test.ok());
  EXPECT_EQ(test.value(), kTpmTestPassed);
  ASSERT_TRUE(client_.Startup(TpmStartupType::kClear).ok());
  EXPECT_EQ(tpm_.lifecycle_state(), TpmLifecycleState::kOperational);
  EXPECT_TRUE(client_.PcrRead(0).ok());
}

TEST_F(TpmLifecycleTest, InitResetsPcrsToPowerOnValues) {
  ASSERT_TRUE(tpm_.RequestLocality(2).ok());
  ASSERT_TRUE(tpm_.PcrExtend(17, Bytes(kPcrSize, 1)).ok());
  ASSERT_TRUE(tpm_.RequestLocality(0).ok());
  ASSERT_TRUE(tpm_.PcrExtend(0, Bytes(kPcrSize, 2)).ok());

  transport_.hardware()->Init();
  ASSERT_TRUE(client_.Startup(TpmStartupType::kClear).ok());
  // Dynamic PCRs read -1 after any reset; statics are zeroed by ST_CLEAR.
  EXPECT_EQ(tpm_.PcrRead(17).value(), Bytes(kPcrSize, 0xff));
  EXPECT_EQ(tpm_.PcrRead(0).value(), Bytes(kPcrSize, 0x00));
}

TEST_F(TpmLifecycleTest, SaveStateRestoresStaticsButNeverDynamics) {
  ASSERT_TRUE(tpm_.PcrExtend(0, Bytes(kPcrSize, 2)).ok());
  Bytes static_value = tpm_.PcrRead(0).value();
  ASSERT_TRUE(tpm_.RequestLocality(2).ok());
  ASSERT_TRUE(tpm_.PcrExtend(17, Bytes(kPcrSize, 1)).ok());
  Bytes dynamic_value = tpm_.PcrRead(17).value();

  ASSERT_TRUE(client_.SaveState().ok());
  transport_.hardware()->Init();
  Result<TpmStartupReport> report = client_.Startup(TpmStartupType::kState);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().state_restored);

  EXPECT_EQ(tpm_.PcrRead(0).value(), static_value);
  // The launch-session PCR must NOT survive suspend/resume.
  EXPECT_NE(tpm_.PcrRead(17).value(), dynamic_value);
  EXPECT_EQ(tpm_.PcrRead(17).value(), Bytes(kPcrSize, 0xff));
}

TEST_F(TpmLifecycleTest, SaveStateSnapshotIsSingleUse) {
  ASSERT_TRUE(client_.SaveState().ok());
  transport_.hardware()->Init();
  ASSERT_TRUE(client_.Startup(TpmStartupType::kState).ok());

  // A second ST_STATE resume has nothing to restore: failure mode.
  transport_.hardware()->Init();
  Result<TpmStartupReport> again = client_.Startup(TpmStartupType::kState);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kTpmFailed);
  EXPECT_EQ(tpm_.lifecycle_state(), TpmLifecycleState::kFailed);
  EXPECT_EQ(client_.GetTestResult().value(), kTpmTestNoSavedState);

  // ST_CLEAR after another reset recovers.
  transport_.hardware()->Init();
  ASSERT_TRUE(client_.Startup(TpmStartupType::kClear).ok());
  EXPECT_EQ(tpm_.lifecycle_state(), TpmLifecycleState::kOperational);
  EXPECT_EQ(client_.GetTestResult().value(), kTpmTestPassed);
}

TEST_F(TpmLifecycleTest, CrashDuringSaveStateInvalidatesSnapshot) {
  EXPECT_EQ(CrashAt("tpm.save_state", [&] { (void)tpm_.SaveState(); }), "tpm.save_state");
  EXPECT_FALSE(tpm_.saved_state_valid());
  transport_.hardware()->Init();
  Result<TpmStartupReport> report = client_.Startup(TpmStartupType::kState);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kTpmFailed);
}

TEST_F(TpmLifecycleTest, FailureModeGatesWireCommands) {
  transport_.hardware()->ForceFailureMode();
  Result<Bytes> random_blocked = client_.PcrRead(0);
  ASSERT_FALSE(random_blocked.ok());
  EXPECT_EQ(random_blocked.status().code(), StatusCode::kTpmFailed);
  EXPECT_EQ(client_.GetTestResult().value(), kTpmTestHardwareFault);

  // The fault clears, software restarts the device, service resumes.
  transport_.hardware()->ClearFailureMode();
  transport_.hardware()->Init();
  ASSERT_TRUE(client_.Startup(TpmStartupType::kClear).ok());
  EXPECT_TRUE(client_.PcrRead(0).ok());
}

TEST_F(TpmLifecycleTest, SelfTestFullReportsLatchedFault) {
  transport_.hardware()->ForceFailureMode();
  // SelfTestFull confirms the fault; the lifecycle gate lets Startup through
  // but SelfTestFull itself is gated, so probe via the direct device API.
  Status st = tpm_.SelfTestFull();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTpmFailed);

  transport_.hardware()->ClearFailureMode();
  ASSERT_TRUE(tpm_.SelfTestFull().ok());
  EXPECT_EQ(tpm_.lifecycle_state(), TpmLifecycleState::kOperational);
}

TEST_F(TpmLifecycleTest, NvWriteCrashBeforeCommitDiscardsJournal) {
  DefineNvSpace();
  Bytes v1 = Bytes(8, 0x11);
  ASSERT_TRUE(client_.NvWrite(kNvIndex, v1).ok());

  // Crash after staging but before the commit mark: replay must discard.
  Bytes v2 = Bytes(8, 0x22);
  EXPECT_EQ(CrashAt("tpm.nv_write.staged", [&] { (void)tpm_.NvWrite(kNvIndex, v2); }),
            "tpm.nv_write.staged");
  EXPECT_TRUE(tpm_.journal_pending());

  transport_.hardware()->Init();
  Result<TpmStartupReport> report = client_.Startup(TpmStartupType::kClear);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().journal_discarded);
  EXPECT_FALSE(report.value().journal_rolled_forward);
  EXPECT_EQ(client_.NvRead(kNvIndex).value(), v1);
}

TEST_F(TpmLifecycleTest, NvWriteTornApplyRolledForwardOnStartup) {
  DefineNvSpace();
  Bytes v1 = Bytes(8, 0x11);
  ASSERT_TRUE(client_.NvWrite(kNvIndex, v1).ok());

  // Crash mid-apply: the space holds a torn half-write, but the journal is
  // committed, so Startup replay completes the write.
  Bytes v2 = Bytes(8, 0x22);
  EXPECT_EQ(CrashAt("tpm.nv_write.apply", [&] { (void)tpm_.NvWrite(kNvIndex, v2); }),
            "tpm.nv_write.apply");
  // The torn state is visible at the device before recovery: half new bytes.
  Bytes torn = tpm_.NvRead(kNvIndex).value();
  EXPECT_NE(torn, v1);
  EXPECT_NE(torn, v2);

  transport_.hardware()->Init();
  Result<TpmStartupReport> report = client_.Startup(TpmStartupType::kClear);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().journal_rolled_forward);
  EXPECT_EQ(client_.NvRead(kNvIndex).value(), v2);
}

TEST_F(TpmLifecycleTest, CounterIncrementCrashNeverLosesOrRepeatsValues) {
  ASSERT_TRUE(tpm_.TakeOwnership(OwnerAuth()).ok());
  Bytes counter_auth = Sha1::Digest(BytesOf("ctr"));
  Result<uint32_t> id = TpmCreateCounter(&client_, counter_auth, OwnerAuth());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_.IncrementCounter(id.value(), counter_auth).ok());
  EXPECT_EQ(client_.ReadCounter(id.value()).value(), 1u);

  // Crash after the commit mark but before the (atomic) apply does not
  // exist for counters - the commit point is the last crash point - so a
  // crash at the commit mark itself must roll the increment forward.
  EXPECT_EQ(CrashAt("tpm.counter.commit",
                    [&] { (void)tpm_.IncrementCounter(id.value(), counter_auth); }),
            "tpm.counter.commit");
  transport_.hardware()->Init();
  Result<TpmStartupReport> report = client_.Startup(TpmStartupType::kClear);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().journal_rolled_forward);
  EXPECT_EQ(client_.ReadCounter(id.value()).value(), 2u);

  // Crash before the commit mark: the increment never happened.
  EXPECT_EQ(CrashAt("tpm.counter.journal",
                    [&] { (void)tpm_.IncrementCounter(id.value(), counter_auth); }),
            "tpm.counter.journal");
  transport_.hardware()->Init();
  report = client_.Startup(TpmStartupType::kClear);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().journal_discarded);
  EXPECT_EQ(client_.ReadCounter(id.value()).value(), 2u);

  // Replay is idempotent: a successful increment after recovery continues
  // the sequence with no gap and no repeat.
  EXPECT_EQ(client_.IncrementCounter(id.value(), counter_auth).value(), 3u);
}

TEST_F(TpmLifecycleTest, GarbledJournalEntryDiscardedByCrcCheck) {
  DefineNvSpace();
  ASSERT_TRUE(client_.NvWrite(kNvIndex, Bytes(8, 0x11)).ok());

  // Crash between journal write and CRC stamp: the entry's CRC is stale
  // (zero), which models a garbled/unfinished journal record on real NV.
  EXPECT_EQ(CrashAt("tpm.nv_write.journal",
                    [&] { (void)tpm_.NvWrite(kNvIndex, Bytes(8, 0x22)); }),
            "tpm.nv_write.journal");
  transport_.hardware()->Init();
  Result<TpmStartupReport> report = client_.Startup(TpmStartupType::kClear);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().journal_discarded);
  EXPECT_EQ(client_.NvRead(kNvIndex).value(), Bytes(8, 0x11));
}

TEST_F(TpmLifecycleTest, LifecycleCommandsChargeNoLatency) {
  double before = clock_.NowMillis();
  ASSERT_TRUE(client_.SaveState().ok());
  transport_.hardware()->Init();
  ASSERT_TRUE(client_.Startup(TpmStartupType::kState).ok());
  ASSERT_TRUE(client_.SelfTestFull().ok());
  (void)client_.GetTestResult();
  EXPECT_DOUBLE_EQ(clock_.NowMillis(), before);  // Table 1/2 stay byte-identical.
}

}  // namespace
}  // namespace flicker
