// Parameterized TPM sweeps: seal/unseal across PCR selections, extend
// chains across every PCR index, quote across selections.

#include <gtest/gtest.h>

#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"
#include "src/tpm/tpm.h"
#include "src/tpm/tpm_util.h"

namespace flicker {
namespace {

// ---- Extend semantics hold for every PCR index ----

class PcrIndexTest : public ::testing::TestWithParam<int> {};

TEST_P(PcrIndexTest, ExtendChainsCorrectly) {
  int index = GetParam();
  PcrBank bank;
  Bytes initial = bank.Read(index).value();
  Bytes m(kPcrSize, 0x3c);
  ASSERT_TRUE(bank.Extend(index, m).ok());
  EXPECT_EQ(bank.Read(index).value(), Sha1::Digest(Concat(initial, m)));
}

TEST_P(PcrIndexTest, DynamicResetAffectsOnlyDynamicRange) {
  int index = GetParam();
  PcrBank bank;
  ASSERT_TRUE(bank.Extend(index, Bytes(kPcrSize, 0x11)).ok());
  Bytes before = bank.Read(index).value();
  bank.DynamicReset();
  if (PcrBank::IsDynamic(index)) {
    EXPECT_EQ(bank.Read(index).value(), Bytes(kPcrSize, 0x00));
  } else {
    EXPECT_EQ(bank.Read(index).value(), before);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPcrs, PcrIndexTest,
                         ::testing::Values(0, 1, 7, 10, 15, 16, 17, 18, 22, 23));

// ---- Seal binds to arbitrary selections ----

struct SelectionCase {
  std::vector<int> indices;
  int disturb;  // Extending this PCR must break (or not break) unsealing.
  bool expect_break;
};

class SealSelectionTest : public ::testing::TestWithParam<int> {
 protected:
  static SelectionCase Case(int index) {
    switch (index) {
      case 0:
        return {{17}, 17, true};
      case 1:
        return {{17, 18}, 18, true};
      case 2:
        return {{17, 18, 23}, 23, true};
      case 3:
        return {{17}, 18, false};  // Unselected PCR: harmless.
      case 4:
        return {{18, 20}, 0, false};  // Static PCR untouched by selection.
      default:
        return {{17}, 17, true};
    }
  }
};

TEST_P(SealSelectionTest, UnsealGatedOnExactSelection) {
  SelectionCase test_case = Case(GetParam());
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  PcrSelection selection;
  for (int i : test_case.indices) {
    selection.Select(i);
  }
  Bytes auth = Sha1::Digest(BytesOf("sweep auth"));
  Result<SealedBlob> blob = TpmSealData(&tpm, BytesOf("payload"), selection, {}, auth);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(TpmUnsealData(&tpm, blob.value(), auth).ok());

  ASSERT_TRUE(tpm.RequestLocality(2).ok());  // Dynamic PCRs are locality-gated.
  ASSERT_TRUE(tpm.PcrExtend(test_case.disturb, Bytes(kPcrSize, 0x44)).ok());
  Result<Bytes> after = TpmUnsealData(&tpm, blob.value(), auth);
  EXPECT_EQ(after.ok(), !test_case.expect_break);
}

INSTANTIATE_TEST_SUITE_P(Selections, SealSelectionTest, ::testing::Values(0, 1, 2, 3, 4));

// ---- Seal payload size sweep (RSA-wrapped hybrid envelope) ----

class SealSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SealSizeTest, RoundTripsAtAllSizes) {
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  Drbg rng(GetParam());
  Bytes payload = rng.Generate(GetParam());
  Bytes auth = Sha1::Digest(BytesOf("size auth"));
  Result<SealedBlob> blob = TpmSealData(&tpm, payload, PcrSelection({17}), {}, auth);
  ASSERT_TRUE(blob.ok());
  Result<Bytes> back = TpmUnsealData(&tpm, blob.value(), auth);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SealSizeTest,
                         ::testing::Values(0, 1, 16, 20, 100, 245, 246, 1024, 8192));

// ---- Quote covers any selection, and the composite binds all values ----

class QuoteSelectionTest : public ::testing::TestWithParam<int> {};

TEST_P(QuoteSelectionTest, QuoteReflectsSelectedValues) {
  SimClock clock;
  Tpm tpm(&clock, InfineonProfile());
  PcrSelection selection;
  selection.Select(17);
  selection.Select(GetParam());
  Result<TpmQuote> quote = tpm.Quote(Bytes(20, 5), selection);
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(quote.value().pcr_values.size(), selection.Indices().size());
  size_t position = 0;
  for (int index : selection.Indices()) {
    EXPECT_EQ(quote.value().pcr_values[position], tpm.PcrRead(index).value());
    ++position;
  }
}

INSTANTIATE_TEST_SUITE_P(SecondPcr, QuoteSelectionTest, ::testing::Values(0, 10, 18, 23));

}  // namespace
}  // namespace flicker
