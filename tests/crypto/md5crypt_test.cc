// md5crypt vectors generated with glibc crypt(3) plus behavioural tests.

#include "src/crypto/md5crypt.h"

#include <gtest/gtest.h>

namespace flicker {
namespace {

TEST(Md5CryptTest, GlibcVectorPassword) {
  EXPECT_EQ(Md5Crypt("password", "saltsalt"), "$1$saltsalt$qjXMvbEw8oaL.CzflDtaK/");
}

TEST(Md5CryptTest, GlibcVectorEmptyPassword) {
  EXPECT_EQ(Md5Crypt("", "ab"), "$1$ab$rn6aQS/o7141mj179E/zA.");
}

TEST(Md5CryptTest, GlibcVectorLongPassphrase) {
  EXPECT_EQ(Md5Crypt("a long passphrase with spaces 12345", "12345678"),
            "$1$12345678$vt7lRN.2IdXHMEfzWJuLi0");
}

TEST(Md5CryptTest, AcceptsFullCryptStringAsSalt) {
  // Passing "$1$salt$..." in the salt position must behave like "salt".
  EXPECT_EQ(Md5Crypt("password", "$1$saltsalt$whatever"),
            "$1$saltsalt$qjXMvbEw8oaL.CzflDtaK/");
}

TEST(Md5CryptTest, SaltTruncatedToEight) {
  EXPECT_EQ(Md5Crypt("pw", "123456789abc"), Md5Crypt("pw", "12345678"));
}

TEST(Md5CryptTest, VerifyAcceptsCorrectPassword) {
  std::string crypt = Md5Crypt("hunter2", "deadbeef");
  EXPECT_TRUE(Md5CryptVerify("hunter2", crypt));
}

TEST(Md5CryptTest, VerifyRejectsWrongPassword) {
  std::string crypt = Md5Crypt("hunter2", "deadbeef");
  EXPECT_FALSE(Md5CryptVerify("hunter3", crypt));
  EXPECT_FALSE(Md5CryptVerify("", crypt));
}

TEST(Md5CryptTest, VerifyRejectsMalformedCryptString) {
  EXPECT_FALSE(Md5CryptVerify("pw", "not-a-crypt-string"));
  EXPECT_FALSE(Md5CryptVerify("pw", "$1$missingdollar"));
  EXPECT_FALSE(Md5CryptVerify("pw", ""));
}

TEST(Md5CryptTest, DifferentSaltsDifferentHashes) {
  EXPECT_NE(Md5Crypt("same", "salt0001"), Md5Crypt("same", "salt0002"));
}

TEST(Md5CryptTest, DifferentPasswordsDifferentHashes) {
  EXPECT_NE(Md5Crypt("alpha", "samesalt"), Md5Crypt("beta", "samesalt"));
}

TEST(Md5CryptTest, OutputFormat) {
  std::string crypt = Md5Crypt("pw", "mysalt");
  EXPECT_EQ(crypt.substr(0, 3), "$1$");
  EXPECT_EQ(crypt.substr(3, 6), "mysalt");
  EXPECT_EQ(crypt[9], '$');
  EXPECT_EQ(crypt.size(), 3 + 6 + 1 + 22u);  // 22 base64 chars encode 16 bytes.
}

}  // namespace
}  // namespace flicker
