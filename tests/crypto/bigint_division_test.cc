// Targeted stress for the 64-bit-limb Knuth division and its edge cases:
// the qhat over-estimation path, add-back correction, normalization shifts,
// and limb-boundary values. Division underpins every RSA operation in the
// TPM, so errors here would silently corrupt seal/quote results.

#include <gtest/gtest.h>

#include "src/crypto/bigint.h"
#include "src/crypto/drbg.h"

namespace flicker {
namespace {

BigInt MaxLimbValue(size_t limbs) {
  // 2^(64*limbs) - 1.
  return (BigInt(1) << (64 * limbs)) - BigInt(1);
}

TEST(BigIntDivisionTest, DividendEqualsDivisor) {
  BigInt v = BigInt::FromHex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(v / v, BigInt(1));
  EXPECT_TRUE((v % v).IsZero());
}

TEST(BigIntDivisionTest, DividendOneLessThanDivisor) {
  BigInt v = BigInt::FromHex("80000000000000000000000000000000");
  BigInt smaller = v - BigInt(1);
  EXPECT_TRUE((smaller / v).IsZero());
  EXPECT_EQ(smaller % v, smaller);
}

TEST(BigIntDivisionTest, AllOnesPatterns) {
  for (size_t dividend_limbs : {2u, 3u, 4u, 8u}) {
    for (size_t divisor_limbs : {1u, 2u, 3u}) {
      if (divisor_limbs >= dividend_limbs) {
        continue;
      }
      BigInt a = MaxLimbValue(dividend_limbs);
      BigInt b = MaxLimbValue(divisor_limbs);
      BigInt q;
      BigInt r;
      BigInt::DivMod(a, b, &q, &r);
      EXPECT_EQ(q * b + r, a) << dividend_limbs << "/" << divisor_limbs;
      EXPECT_LT(r, b);
    }
  }
}

TEST(BigIntDivisionTest, PowerOfTwoDivisors) {
  BigInt a = BigInt::FromHex("123456789abcdef0123456789abcdef0123456789abcdef");
  for (size_t shift : {1u, 63u, 64u, 65u, 128u}) {
    BigInt d = BigInt(1) << shift;
    EXPECT_EQ(a / d, a >> shift) << shift;
    EXPECT_EQ(a % d, a - ((a >> shift) << shift)) << shift;
  }
}

TEST(BigIntDivisionTest, QhatOverestimationShapes) {
  // Divisors with a high top limb and low second limb maximize the chance
  // the initial qhat estimate is off by one/two (the adjustment loop and
  // add-back path).
  Drbg rng(0x1234);
  for (int trial = 0; trial < 200; ++trial) {
    // divisor = [top ~ 2^63, tiny second limb, ...]
    Bytes divisor_bytes = rng.Generate(24);
    divisor_bytes[0] |= 0x80;  // Top bit set -> normalization shift 0.
    for (int i = 8; i < 16; ++i) {
      divisor_bytes[i] = 0;  // Hollow middle limb.
    }
    BigInt b = BigInt::FromBytesBe(divisor_bytes);
    BigInt quotient = BigInt::FromBytesBe(rng.Generate(16));
    BigInt remainder = BigInt::FromBytesBe(rng.Generate(8));
    if (remainder >= b) {
      remainder = remainder % b;
    }
    BigInt a = b * quotient + remainder;
    BigInt q;
    BigInt r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q, quotient) << trial;
    EXPECT_EQ(r, remainder) << trial;
  }
}

TEST(BigIntDivisionTest, RandomizedWideSweep) {
  Drbg rng(0x9876);
  for (int trial = 0; trial < 500; ++trial) {
    size_t a_len = rng.UniformUint64(96) + 1;
    size_t b_len = rng.UniformUint64(48) + 1;
    BigInt a = BigInt::FromBytesBe(rng.Generate(a_len));
    BigInt b = BigInt::FromBytesBe(rng.Generate(b_len));
    if (b.IsZero()) {
      continue;
    }
    BigInt q;
    BigInt r;
    BigInt::DivMod(a, b, &q, &r);
    ASSERT_EQ(q * b + r, a) << trial;
    ASSERT_LT(r, b) << trial;
  }
}

TEST(BigIntDivisionTest, SingleLimbFastPathAgreesWithGeneralPath) {
  Drbg rng(0x5555);
  for (int trial = 0; trial < 100; ++trial) {
    BigInt a = BigInt::FromBytesBe(rng.Generate(40));
    Bytes d_bytes = rng.Generate(8);
    d_bytes[0] |= 0x01;  // Nonzero.
    BigInt d_small = BigInt::FromBytesBe(d_bytes);       // 1 limb: fast path.
    BigInt d_padded = d_small + (BigInt(1) << 64);        // 2 limbs: Knuth.
    // Construct an equivalent check: a = q*d + r must hold on both paths.
    BigInt q1;
    BigInt r1;
    BigInt::DivMod(a, d_small, &q1, &r1);
    EXPECT_EQ(q1 * d_small + r1, a);
    BigInt q2;
    BigInt r2;
    BigInt::DivMod(a, d_padded, &q2, &r2);
    EXPECT_EQ(q2 * d_padded + r2, a);
  }
}

TEST(BigIntDivisionTest, ShiftEdgeCases) {
  BigInt v = BigInt::FromHex("ffffffffffffffff");
  EXPECT_EQ((v << 0), v);
  EXPECT_EQ((v >> 0), v);
  EXPECT_TRUE((v >> 64).IsZero());
  EXPECT_TRUE((v >> 1000).IsZero());
  EXPECT_EQ(((v << 64) >> 64), v);
  EXPECT_EQ(((v << 63) >> 63), v);
  EXPECT_TRUE((BigInt(0) << 100).IsZero());
}

TEST(BigIntDivisionTest, ByteSerializationLimbBoundaries) {
  for (size_t len = 1; len <= 24; ++len) {
    Drbg rng(len);
    Bytes raw = rng.Generate(len);
    raw[0] |= 0x01;  // Ensure no leading-zero ambiguity at full length...
    BigInt v = BigInt::FromBytesBe(raw);
    Bytes back = v.ToBytesBe(len);
    EXPECT_EQ(back, raw) << "len " << len;
  }
}

TEST(BigIntDivisionTest, ModExpWithEvenAndOddModuli) {
  // RSA only uses odd moduli, but ModExp must be correct for any modulus.
  EXPECT_EQ(BigInt::ModExp(BigInt(7), BigInt(5), BigInt(100)), BigInt(16807 % 100));
  EXPECT_EQ(BigInt::ModExp(BigInt(10), BigInt(3), BigInt(8)), BigInt(0));
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(4), BigInt(82)), BigInt(81));
}

}  // namespace
}  // namespace flicker
