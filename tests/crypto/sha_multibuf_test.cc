// The multi-buffer SHA engine must be a drop-in replacement for the scalar
// Sha1/Sha256 classes: bit-exact on every lane for every message length,
// whatever kernel (AVX2, SSE2, or the scalar fallback) the dispatcher picks.
// The differential battery drives random lengths and lane counts with the
// ragged tails that stress the per-lane padding scheduler.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/drbg.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha_multibuf.h"

namespace flicker {
namespace {

// Restores the dispatcher after a test that forces the scalar path.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) : previous_(ShaMultiBufForceScalar(force)) {}
  ~ScopedForceScalar() { ShaMultiBufForceScalar(previous_); }

 private:
  bool previous_;
};

std::vector<Bytes> ReferenceSha1(const std::vector<Bytes>& messages) {
  std::vector<Bytes> digests;
  for (const Bytes& m : messages) {
    digests.push_back(Sha1::Digest(m));
  }
  return digests;
}

std::vector<Bytes> ReferenceSha256(const std::vector<Bytes>& messages) {
  std::vector<Bytes> digests;
  for (const Bytes& m : messages) {
    digests.push_back(Sha256::Digest(m));
  }
  return digests;
}

TEST(ShaMultiBufTest, EngineReportsSaneConfiguration) {
  EXPECT_TRUE(ShaMultiBufLanes() == 4 || ShaMultiBufLanes() == 8);
  std::string engine = ShaMultiBufEngine();
  EXPECT_TRUE(engine == "avx2" || engine == "sse2" || engine == "scalar");
}

TEST(ShaMultiBufTest, KnownAnswerVectors) {
  // FIPS 180 example messages, one batch covering short/empty/two-block.
  std::vector<Bytes> messages = {
      BytesOf("abc"),
      Bytes(),
      BytesOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
  };
  std::vector<Bytes> sha1 = Sha1DigestMany(messages);
  EXPECT_EQ(ToHex(sha1[0]), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(ToHex(sha1[1]), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(ToHex(sha1[2]), "84983e441c3bd26ebaae4aa1f95129e5e54670f1");

  std::vector<Bytes> sha256 = Sha256DigestMany(messages);
  EXPECT_EQ(ToHex(sha256[0]),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(ToHex(sha256[1]),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(ToHex(sha256[2]),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(ShaMultiBufTest, RaggedTailLengthsMatchScalar) {
  // Every length that straddles a padding boundary: the 0x80 byte and the
  // 64-bit length can land in the same block or spill into an extra one.
  std::vector<Bytes> messages;
  Drbg rng(BytesOf("ragged tails"));
  for (size_t len : {0u, 1u, 54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 127u, 128u, 129u}) {
    messages.push_back(rng.Generate(len));
  }
  EXPECT_EQ(Sha1DigestMany(messages), ReferenceSha1(messages));
  EXPECT_EQ(Sha256DigestMany(messages), ReferenceSha256(messages));
}

TEST(ShaMultiBufTest, DifferentialRandomLengthsAndBatchSizes) {
  Drbg rng(BytesOf("differential battery"));
  for (int trial = 0; trial < 40; ++trial) {
    // Batch sizes sweep through every lane-occupancy pattern: below one
    // vector width, exactly one, partial second pass, several passes.
    size_t count = 1 + (GetUint32(rng.Generate(4), 0) % 21);
    std::vector<Bytes> messages;
    for (size_t i = 0; i < count; ++i) {
      size_t len = GetUint32(rng.Generate(4), 0) % 500;
      messages.push_back(rng.Generate(len));
    }
    EXPECT_EQ(Sha1DigestMany(messages), ReferenceSha1(messages)) << "trial " << trial;
    EXPECT_EQ(Sha256DigestMany(messages), ReferenceSha256(messages)) << "trial " << trial;
  }
}

TEST(ShaMultiBufTest, ForcedScalarBitExactAgainstSimd) {
  Drbg rng(BytesOf("scalar vs simd"));
  std::vector<Bytes> messages;
  for (size_t i = 0; i < 17; ++i) {
    messages.push_back(rng.Generate(GetUint32(rng.Generate(4), 0) % 300));
  }
  std::vector<Bytes> simd_sha1 = Sha1DigestMany(messages);
  std::vector<Bytes> simd_sha256 = Sha256DigestMany(messages);
  {
    ScopedForceScalar force(true);
    EXPECT_EQ(Sha1DigestMany(messages), simd_sha1);
    EXPECT_EQ(Sha256DigestMany(messages), simd_sha256);
  }
}

TEST(ShaMultiBufTest, EmptyBatchAndLargeMessages) {
  EXPECT_TRUE(Sha1DigestMany({}).empty());
  EXPECT_TRUE(Sha256DigestMany({}).empty());

  // Mixed batch where one lane runs 100x longer than its neighbours.
  Drbg rng(BytesOf("uneven lanes"));
  std::vector<Bytes> messages = {rng.Generate(64 * 1024), rng.Generate(3), rng.Generate(700),
                                 rng.Generate(0), rng.Generate(65)};
  EXPECT_EQ(Sha1DigestMany(messages), ReferenceSha1(messages));
  EXPECT_EQ(Sha256DigestMany(messages), ReferenceSha256(messages));
}

}  // namespace
}  // namespace flicker
