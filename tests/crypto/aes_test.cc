// FIPS-197 / SP 800-38A vectors plus mode-level round-trip and failure tests.

#include "src/crypto/aes.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/crypto/drbg.h"

namespace flicker {
namespace {

Bytes Hex(const char* s) {
  bool ok = false;
  Bytes b = FromHex(s, &ok);
  EXPECT_TRUE(ok);
  return b;
}

TEST(AesTest, Fips197Aes128) {
  Aes aes(Hex("000102030405060708090a0b0c0d0e0f"));
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(Bytes(ct, ct + 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");

  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(Bytes(back, back + 16), pt);
}

TEST(AesTest, Fips197Aes256) {
  Aes aes(Hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(Bytes(ct, ct + 16)), "8ea2b7ca516745bfeafc49904b496089");

  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(Bytes(back, back + 16), pt);
}

TEST(AesTest, Sp80038aEcbVector) {
  Aes aes(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes pt = Hex("6bc1bee22e409f96e93d7e117393172a");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(Bytes(ct, ct + 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(AesTest, CbcRoundTripVariousLengths) {
  Aes aes(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes iv(16, 0x42);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u}) {
    Bytes pt(len);
    for (size_t i = 0; i < len; ++i) {
      pt[i] = static_cast<uint8_t>(i);
    }
    Bytes ct = aes.EncryptCbc(pt, iv);
    EXPECT_EQ(ct.size() % Aes::kBlockSize, 0u);
    EXPECT_GT(ct.size(), pt.size());  // Always at least one padding byte.
    Result<Bytes> back = aes.DecryptCbc(ct, iv);
    ASSERT_TRUE(back.ok()) << "len " << len;
    EXPECT_EQ(back.value(), pt);
  }
}

TEST(AesTest, CbcTamperedCiphertextFailsPaddingOrChangesPlaintext) {
  Aes aes(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes iv(16, 0);
  Bytes pt(48, 0xab);
  Bytes ct = aes.EncryptCbc(pt, iv);
  ct[5] ^= 0xff;
  Result<Bytes> back = aes.DecryptCbc(ct, iv);
  if (back.ok()) {
    EXPECT_NE(back.value(), pt);
  }
}

TEST(AesTest, CbcRejectsBadLength) {
  Aes aes(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes iv(16, 0);
  Result<Bytes> r = aes.DecryptCbc(Bytes(17, 0), iv);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  Result<Bytes> r2 = aes.DecryptCbc(Bytes(), iv);
  EXPECT_FALSE(r2.ok());
}

TEST(AesTest, CbcDifferentIvDifferentCiphertext) {
  Aes aes(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes pt(32, 0x33);
  Bytes iv1(16, 0x01);
  Bytes iv2(16, 0x02);
  EXPECT_NE(aes.EncryptCbc(pt, iv1), aes.EncryptCbc(pt, iv2));
}

TEST(AesTest, CtrRoundTrip) {
  Aes aes(Hex("000102030405060708090a0b0c0d0e0f"));
  Bytes nonce(16, 0x77);
  Bytes pt = BytesOf("counter mode handles arbitrary lengths, like this 51-byte string!");
  Bytes ct = aes.CryptCtr(pt, nonce);
  EXPECT_EQ(ct.size(), pt.size());
  EXPECT_NE(ct, pt);
  EXPECT_EQ(aes.CryptCtr(ct, nonce), pt);
}

TEST(AesTest, CtrCounterIncrementCrossesByteBoundary) {
  Aes aes(Hex("000102030405060708090a0b0c0d0e0f"));
  Bytes nonce(16, 0xff);  // Will wrap several counter bytes.
  Bytes pt(64, 0);
  Bytes ct = aes.CryptCtr(pt, nonce);
  // Keystream blocks must all differ (counter actually advanced).
  Bytes b0(ct.begin(), ct.begin() + 16);
  Bytes b1(ct.begin() + 16, ct.begin() + 32);
  Bytes b2(ct.begin() + 32, ct.begin() + 48);
  EXPECT_NE(b0, b1);
  EXPECT_NE(b1, b2);
  EXPECT_EQ(aes.CryptCtr(ct, nonce), pt);
}

TEST(AesTest, RandomizedRoundTripSweep) {
  Drbg rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes key = rng.Generate(trial % 2 == 0 ? 16 : 32);
    Aes aes(key);
    Bytes iv = rng.Generate(16);
    Bytes pt = rng.Generate(rng.UniformUint64(200));
    Result<Bytes> back = aes.DecryptCbc(aes.EncryptCbc(pt, iv), iv);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), pt);
  }
}

}  // namespace
}  // namespace flicker
