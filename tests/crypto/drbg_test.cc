#include "src/crypto/drbg.h"

#include <map>
#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace flicker {
namespace {

TEST(DrbgTest, DeterministicGivenSeed) {
  Drbg a(42);
  Drbg b(42);
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(DrbgTest, DifferentSeedsDiffer) {
  Drbg a(1);
  Drbg b(2);
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, ByteSeedAndIntSeedBothWork) {
  Drbg a(BytesOf("entropy string"));
  Drbg b(BytesOf("entropy string"));
  Drbg c(BytesOf("other entropy"));
  Bytes out_a = a.Generate(16);
  EXPECT_EQ(out_a, b.Generate(16));
  EXPECT_NE(out_a, c.Generate(16));
}

TEST(DrbgTest, SuccessiveCallsAdvanceState) {
  Drbg rng(7);
  Bytes first = rng.Generate(32);
  Bytes second = rng.Generate(32);
  EXPECT_NE(first, second);
}

TEST(DrbgTest, SplitCallsDifferFromOneCall) {
  // The ratchet after each Generate means call boundaries matter; this is
  // intentional (backtrack resistance), so just check no panic and correct
  // sizes.
  Drbg rng(7);
  EXPECT_EQ(rng.Generate(100).size(), 100u);
  EXPECT_EQ(rng.Generate(0).size(), 0u);
  EXPECT_EQ(rng.Generate(1).size(), 1u);
}

TEST(DrbgTest, ReseedChangesStream) {
  Drbg a(9);
  Drbg b(9);
  b.Reseed(BytesOf("new entropy"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, UniformRespectsBound) {
  Drbg rng(13);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
  EXPECT_EQ(rng.UniformUint64(1), 0u);
}

TEST(DrbgTest, UniformCoversRange) {
  Drbg rng(14);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 400; ++i) {
    counts[rng.UniformUint64(4)]++;
  }
  // All four buckets hit, and no bucket wildly dominant.
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 40) << "bucket " << value;
  }
}

TEST(DrbgTest, OutputLooksBalanced) {
  // Crude sanity check: bit balance within 5% over 64 KB.
  Drbg rng(15);
  Bytes data = rng.Generate(65536);
  size_t ones = 0;
  for (uint8_t b : data) {
    ones += static_cast<size_t>(__builtin_popcount(b));
  }
  double frac = static_cast<double>(ones) / (data.size() * 8);
  EXPECT_GT(frac, 0.45);
  EXPECT_LT(frac, 0.55);
}

}  // namespace
}  // namespace flicker
