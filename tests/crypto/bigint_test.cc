// Unit and property tests for the multi-precision integer library. The
// randomized sweeps use the deterministic DRBG so failures reproduce.

#include "src/crypto/bigint.h"

#include <gtest/gtest.h>

#include "src/crypto/drbg.h"

namespace flicker {
namespace {

BigInt RandomBigInt(Drbg* rng, size_t max_bytes) {
  size_t len = rng->UniformUint64(max_bytes) + 1;
  return BigInt::FromBytesBe(rng->Generate(len));
}

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(zero.IsOdd());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToHex(), "0");
  EXPECT_EQ(zero, BigInt(0));
}

TEST(BigIntTest, Uint64Construction) {
  BigInt v(0x123456789abcdef0ULL);
  EXPECT_EQ(v.ToUint64(), 0x123456789abcdef0ULL);
  EXPECT_EQ(v.ToHex(), "123456789abcdef0");
  EXPECT_EQ(v.BitLength(), 61u);
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes raw = {0x01, 0x02, 0x03, 0x04, 0x05};
  BigInt v = BigInt::FromBytesBe(raw);
  EXPECT_EQ(v.ToBytesBe(), raw);
  EXPECT_EQ(v.ToBytesBe(8), (Bytes{0, 0, 0, 0x01, 0x02, 0x03, 0x04, 0x05}));
}

TEST(BigIntTest, LeadingZerosNormalized) {
  BigInt a = BigInt::FromBytesBe({0x00, 0x00, 0x12});
  BigInt b = BigInt::FromBytesBe({0x12});
  EXPECT_EQ(a, b);
}

TEST(BigIntTest, HexRoundTrip) {
  BigInt v = BigInt::FromHex("deadbeefcafebabe0123456789");
  EXPECT_EQ(v.ToHex(), "deadbeefcafebabe0123456789");
  EXPECT_EQ(BigInt::FromHex("0"), BigInt(0));
  EXPECT_EQ(BigInt::FromHex("f"), BigInt(15));
}

TEST(BigIntTest, CompareOrdering) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_GT(BigInt(0x100000000ULL), BigInt(0xffffffffULL));
  EXPECT_EQ(BigInt::Compare(BigInt(7), BigInt(7)), 0);
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::FromHex("ffffffffffffffff");
  EXPECT_EQ((a + BigInt(1)).ToHex(), "10000000000000000");
}

TEST(BigIntTest, SubtractionBorrowsAcrossLimbs) {
  BigInt a = BigInt::FromHex("10000000000000000");
  EXPECT_EQ((a - BigInt(1)).ToHex(), "ffffffffffffffff");
  EXPECT_TRUE((a - a).IsZero());
}

TEST(BigIntTest, MultiplicationKnownValue) {
  BigInt a = BigInt::FromHex("123456789abcdef");
  BigInt b = BigInt::FromHex("fedcba987654321");
  EXPECT_EQ((a * b).ToHex(), "121fa00ad77d7422236d88fe5618cf");
}

TEST(BigIntTest, MultiplyByZeroAndOne) {
  BigInt a = BigInt::FromHex("abcdef0123456789");
  EXPECT_TRUE((a * BigInt(0)).IsZero());
  EXPECT_EQ(a * BigInt(1), a);
}

TEST(BigIntTest, ShiftLeftRightInverse) {
  BigInt a = BigInt::FromHex("1234567890abcdef1234567890abcdef");
  for (size_t s : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((a << s) >> s, a) << "shift " << s;
  }
}

TEST(BigIntTest, ShiftLeftMultipliesByPowerOfTwo) {
  BigInt a(5);
  EXPECT_EQ(a << 3, BigInt(40));
  EXPECT_EQ(a << 32, BigInt(5ULL << 32));
}

TEST(BigIntTest, DivModSmallDivisor) {
  BigInt a = BigInt::FromHex("deadbeefcafebabe");
  BigInt q;
  BigInt r;
  BigInt::DivMod(a, BigInt(10), &q, &r);
  EXPECT_EQ(q * BigInt(10) + r, a);
  EXPECT_LT(r, BigInt(10));
}

TEST(BigIntTest, DivModDividendSmallerThanDivisor) {
  BigInt q;
  BigInt r;
  BigInt::DivMod(BigInt(5), BigInt::FromHex("100000000000000000000"), &q, &r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r, BigInt(5));
}

TEST(BigIntTest, DivModKnuthAddBackCase) {
  // A case shaped to stress the "add back" correction: divisor with top limb
  // 0x80000000 pattern and dividend just below a multiple.
  BigInt divisor = BigInt::FromHex("80000000000000000000000000000001");
  BigInt quotient = BigInt::FromHex("ffffffffffffffff");
  BigInt dividend = divisor * quotient + (divisor - BigInt(1));
  BigInt q;
  BigInt r;
  BigInt::DivMod(dividend, divisor, &q, &r);
  EXPECT_EQ(q, quotient);
  EXPECT_EQ(r, divisor - BigInt(1));
}

// Property: for random a, b: a = (a/b)*b + (a%b) and a%b < b.
TEST(BigIntTest, DivModReconstructionProperty) {
  Drbg rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    BigInt a = RandomBigInt(&rng, 64);
    BigInt b = RandomBigInt(&rng, 32);
    if (b.IsZero()) {
      continue;
    }
    BigInt q;
    BigInt r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

// Property: (a + b) - b == a; commutativity and associativity of addition.
TEST(BigIntTest, AdditionProperties) {
  Drbg rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    BigInt a = RandomBigInt(&rng, 48);
    BigInt b = RandomBigInt(&rng, 48);
    BigInt c = RandomBigInt(&rng, 48);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

// Property: distributivity a*(b+c) == a*b + a*c.
TEST(BigIntTest, MultiplicationDistributes) {
  Drbg rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    BigInt a = RandomBigInt(&rng, 24);
    BigInt b = RandomBigInt(&rng, 24);
    BigInt c = RandomBigInt(&rng, 24);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigIntTest, ModExpSmallKnownValues) {
  EXPECT_EQ(BigInt::ModExp(BigInt(2), BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(BigInt::ModExp(BigInt(5), BigInt(3), BigInt(13)), BigInt(125 % 13));
  EXPECT_TRUE(BigInt::ModExp(BigInt(5), BigInt(3), BigInt(1)).IsZero());
}

TEST(BigIntTest, ModExpFermatLittleTheorem) {
  // For prime p and a not divisible by p: a^(p-1) = 1 mod p.
  BigInt p(1000003);
  Drbg rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    BigInt a = BigInt(rng.UniformUint64(1000002) + 1);
    EXPECT_EQ(BigInt::ModExp(a, p - BigInt(1), p), BigInt(1));
  }
}

TEST(BigIntTest, ModInverseKnownValues) {
  EXPECT_EQ(BigInt::ModInverse(BigInt(3), BigInt(7)), BigInt(5));  // 3*5=15=1 mod 7
  EXPECT_EQ(BigInt::ModInverse(BigInt(65537), BigInt(1000003)) * BigInt(65537) % BigInt(1000003),
            BigInt(1));
}

TEST(BigIntTest, ModInverseNotInvertibleReturnsZero) {
  EXPECT_TRUE(BigInt::ModInverse(BigInt(4), BigInt(8)).IsZero());
  EXPECT_TRUE(BigInt::ModInverse(BigInt(6), BigInt(9)).IsZero());
}

// Property: a * ModInverse(a, m) == 1 mod m whenever gcd(a, m) == 1.
TEST(BigIntTest, ModInverseProperty) {
  Drbg rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    BigInt m = RandomBigInt(&rng, 24);
    if (m < BigInt(2)) {
      continue;
    }
    BigInt a = RandomBigInt(&rng, 24) % m;
    if (a.IsZero() || BigInt::Gcd(a, m) != BigInt(1)) {
      continue;
    }
    BigInt inv = BigInt::ModInverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)), BigInt(5));
}

TEST(BigIntTest, GetBitMatchesShifting) {
  BigInt v = BigInt::FromHex("a5");  // 1010 0101
  EXPECT_TRUE(v.GetBit(0));
  EXPECT_FALSE(v.GetBit(1));
  EXPECT_TRUE(v.GetBit(2));
  EXPECT_TRUE(v.GetBit(7));
  EXPECT_FALSE(v.GetBit(8));
  EXPECT_FALSE(v.GetBit(1000));
}

TEST(BigIntTest, LargeModExpConsistency) {
  // (a^e1)^e2 == a^(e1*e2) mod m for a 512-bit modulus.
  Drbg rng(12);
  BigInt m = BigInt::FromBytesBe(rng.Generate(64));
  if (!m.IsOdd()) {
    m = m + BigInt(1);
  }
  BigInt a = BigInt::FromBytesBe(rng.Generate(48));
  BigInt e1(12345);
  BigInt e2(677);
  BigInt lhs = BigInt::ModExp(BigInt::ModExp(a, e1, m), e2, m);
  BigInt rhs = BigInt::ModExp(a, e1 * e2, m);
  EXPECT_EQ(lhs, rhs);
}

}  // namespace
}  // namespace flicker
