// Classic published RC4 vectors plus stream-position behaviour.

#include "src/crypto/rc4.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace flicker {
namespace {

TEST(Rc4Test, KeyKeyPlaintext) {
  Rc4 rc4(BytesOf("Key"));
  EXPECT_EQ(ToHex(rc4.Crypt(BytesOf("Plaintext"))), "bbf316e8d940af0ad3");
}

TEST(Rc4Test, WikiPedia) {
  Rc4 rc4(BytesOf("Wiki"));
  EXPECT_EQ(ToHex(rc4.Crypt(BytesOf("pedia"))), "1021bf0420");
}

TEST(Rc4Test, SecretAttackAtDawn) {
  Rc4 rc4(BytesOf("Secret"));
  EXPECT_EQ(ToHex(rc4.Crypt(BytesOf("Attack at dawn"))), "45a01f645fc35b383552544b9bf5");
}

TEST(Rc4Test, DecryptIsSameOperation) {
  Rc4 enc(BytesOf("shared-key"));
  Bytes ct = enc.Crypt(BytesOf("hello flicker"));
  Rc4 dec(BytesOf("shared-key"));
  EXPECT_EQ(dec.Crypt(ct), BytesOf("hello flicker"));
}

TEST(Rc4Test, StreamPositionAdvancesAcrossCalls) {
  Rc4 split(BytesOf("k"));
  Bytes part1 = split.Crypt(BytesOf("abc"));
  Bytes part2 = split.Crypt(BytesOf("def"));

  Rc4 whole(BytesOf("k"));
  Bytes all = whole.Crypt(BytesOf("abcdef"));

  Bytes joined = part1;
  joined.insert(joined.end(), part2.begin(), part2.end());
  EXPECT_EQ(joined, all);
}

TEST(Rc4Test, DifferentKeysDifferentStreams) {
  Rc4 a(BytesOf("key-a"));
  Rc4 b(BytesOf("key-b"));
  Bytes zeros(32, 0);
  EXPECT_NE(a.Crypt(zeros), b.Crypt(zeros));
}

}  // namespace
}  // namespace flicker
