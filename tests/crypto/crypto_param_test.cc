// Parameterized property sweeps over the crypto substrate.

#include <tuple>

#include <gtest/gtest.h>

#include "src/crypto/aes.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/crypto/md5.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"

namespace flicker {
namespace {

// ---- Hash incremental == one-shot across lengths and chunkings ----

class HashChunkingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HashChunkingTest, AllHashesChunkIndependent) {
  size_t len = GetParam();
  Drbg rng(len);
  Bytes msg = rng.Generate(len);

  auto check = [&](auto make_hash, auto one_shot) {
    auto h = make_hash();
    size_t pos = 0;
    size_t step = 1;
    while (pos < msg.size()) {
      size_t n = step < msg.size() - pos ? step : msg.size() - pos;
      h.Update(msg.data() + pos, n);
      pos += n;
      step = step * 2 + 1;  // Irregular chunk sizes.
    }
    EXPECT_EQ(h.Finish(), one_shot(msg));
  };
  check([] { return Sha1(); }, [](const Bytes& m) { return Sha1::Digest(m); });
  check([] { return Sha256(); }, [](const Bytes& m) { return Sha256::Digest(m); });
  check([] { return Sha512(); }, [](const Bytes& m) { return Sha512::Digest(m); });
  check([] { return Md5(); }, [](const Bytes& m) { return Md5::Digest(m); });
}

INSTANTIATE_TEST_SUITE_P(Lengths, HashChunkingTest,
                         ::testing::Values(0, 1, 55, 56, 63, 64, 65, 111, 112, 119, 127, 128,
                                           129, 1000, 10000));

// ---- Single-bit avalanche: flipping any input bit changes the digest ----

class AvalancheTest : public ::testing::TestWithParam<int> {};

TEST_P(AvalancheTest, BitFlipChangesDigest) {
  Drbg rng(99);
  Bytes msg = rng.Generate(64);
  Bytes base = Sha1::Digest(msg);
  int bit = GetParam();
  msg[static_cast<size_t>(bit) / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  EXPECT_NE(Sha1::Digest(msg), base);
}

INSTANTIATE_TEST_SUITE_P(Bits, AvalancheTest, ::testing::Values(0, 7, 64, 255, 511));

// ---- AES roundtrips across key sizes and payload lengths ----

class AesSweepTest : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(AesSweepTest, CbcAndCtrRoundTrip) {
  auto [key_bytes, payload_len] = GetParam();
  Drbg rng(key_bytes * 1000 + payload_len);
  Aes aes(rng.Generate(key_bytes));
  Bytes iv = rng.Generate(16);
  Bytes payload = rng.Generate(payload_len);

  Result<Bytes> cbc = aes.DecryptCbc(aes.EncryptCbc(payload, iv), iv);
  ASSERT_TRUE(cbc.ok());
  EXPECT_EQ(cbc.value(), payload);
  EXPECT_EQ(aes.CryptCtr(aes.CryptCtr(payload, iv), iv), payload);
}

INSTANTIATE_TEST_SUITE_P(KeysAndLengths, AesSweepTest,
                         ::testing::Combine(::testing::Values(16, 32),
                                            ::testing::Values(0, 1, 15, 16, 17, 255, 4096)));

// ---- RSA roundtrips across key sizes ----

class RsaSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RsaSweepTest, EncryptSignRoundTrip) {
  size_t bits = GetParam();
  Drbg rng(bits);
  RsaPrivateKey key = RsaGenerateKey(bits, &rng);
  EXPECT_EQ(key.pub.n.BitLength(), bits);

  Bytes msg = BytesOf("sweep message");
  Result<Bytes> ct = RsaEncryptPkcs1(key.pub, msg, &rng);
  ASSERT_TRUE(ct.ok());
  Result<Bytes> pt = RsaDecryptPkcs1(key, ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), msg);

  Bytes sig = RsaSignSha1(key, msg);
  EXPECT_TRUE(RsaVerifySha1(key.pub, msg, sig));
  EXPECT_FALSE(RsaVerifySha1(key.pub, BytesOf("other"), sig));
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaSweepTest, ::testing::Values(512, 768, 1024));

// ---- HMAC key-size sweep ----

class HmacKeySweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HmacKeySweepTest, VerifiesAcrossKeySizes) {
  Drbg rng(GetParam() + 7);
  Bytes key = rng.Generate(GetParam());
  Bytes msg = BytesOf("message under test");
  Bytes tag = HmacSha1(key, msg);
  EXPECT_EQ(tag.size(), 20u);
  EXPECT_TRUE(HmacSha1Verify(key, msg, tag));
  Bytes other_key = key;
  if (other_key.empty()) {
    other_key.push_back(1);
  } else {
    other_key[0] ^= 1;
  }
  EXPECT_FALSE(HmacSha1Verify(other_key, msg, tag));
}

INSTANTIATE_TEST_SUITE_P(KeySizes, HmacKeySweepTest,
                         ::testing::Values(1, 20, 63, 64, 65, 128, 200));

}  // namespace
}  // namespace flicker
