// The batch-quote Merkle tree: every leaf must prove membership through its
// auth path, the root must be arrival-order independent (leaf-sorted), and
// the domain separation must keep leaves and interior nodes in disjoint
// hash domains.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/merkle.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

std::vector<Bytes> MakeNonces(size_t count) {
  std::vector<Bytes> nonces;
  for (size_t i = 0; i < count; ++i) {
    nonces.push_back(Sha1::Digest(BytesOf("nonce-" + std::to_string(i))));
  }
  return nonces;
}

TEST(MerkleTreeTest, EveryLeafAuthenticatesForEveryBatchSize) {
  for (size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 32u}) {
    std::vector<Bytes> nonces = MakeNonces(count);
    Result<MerkleTree> tree = MerkleTree::Build(nonces);
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ(tree.value().leaf_count(), count);
    for (size_t i = 0; i < count; ++i) {
      MerkleAuthPath path = tree.value().PathFor(i);
      EXPECT_EQ(MerkleTree::RootFromPath(nonces[i], path), tree.value().root())
          << "leaf " << i << " of " << count;
    }
  }
}

TEST(MerkleTreeTest, RootIndependentOfArrivalOrder) {
  std::vector<Bytes> nonces = MakeNonces(9);
  Bytes root = MerkleTree::Build(nonces).value().root();
  std::vector<Bytes> reversed(nonces.rbegin(), nonces.rend());
  EXPECT_EQ(MerkleTree::Build(reversed).value().root(), root);
  std::rotate(nonces.begin(), nonces.begin() + 4, nonces.end());
  EXPECT_EQ(MerkleTree::Build(nonces).value().root(), root);
}

TEST(MerkleTreeTest, EmptyBatchRefused) {
  EXPECT_EQ(MerkleTree::Build({}).status().code(), StatusCode::kInvalidArgument);
}

TEST(MerkleTreeTest, DomainSeparationKeepsLeavesOutOfInteriorPositions) {
  // SHA1(0x00 || x) and SHA1(0x01 || x) must differ, and a leaf digest must
  // not equal the plain hash of the nonce (which an attacker could obtain
  // from other protocol contexts).
  Bytes nonce = Sha1::Digest(BytesOf("n"));
  EXPECT_NE(MerkleTree::LeafDigest(nonce), Sha1::Digest(nonce));
  Bytes left = MerkleTree::LeafDigest(nonce);
  Bytes right = MerkleTree::LeafDigest(Sha1::Digest(BytesOf("m")));
  Bytes concat = Concat(left, right);
  EXPECT_NE(MerkleTree::InteriorDigest(left, right), Sha1::Digest(concat));
  EXPECT_NE(MerkleTree::InteriorDigest(left, right), MerkleTree::LeafDigest(concat));
}

TEST(MerkleTreeTest, WrongNonceOrTamperedPathChangesRoot) {
  std::vector<Bytes> nonces = MakeNonces(6);
  MerkleTree tree = MerkleTree::Build(nonces).value();
  MerkleAuthPath path = tree.PathFor(2);

  EXPECT_NE(MerkleTree::RootFromPath(nonces[3], path), tree.root());

  MerkleAuthPath tampered = path;
  tampered.steps[0].sibling[0] ^= 0x01;
  EXPECT_NE(MerkleTree::RootFromPath(nonces[2], tampered), tree.root());

  MerkleAuthPath flipped = path;
  flipped.steps[0].sibling_is_left = !flipped.steps[0].sibling_is_left;
  EXPECT_NE(MerkleTree::RootFromPath(nonces[2], flipped), tree.root());
}

TEST(MerkleAuthPathTest, SerializeRoundTripsAndRejectsGarbage) {
  std::vector<Bytes> nonces = MakeNonces(11);
  MerkleTree tree = MerkleTree::Build(nonces).value();
  for (size_t i = 0; i < nonces.size(); ++i) {
    MerkleAuthPath path = tree.PathFor(i);
    Result<MerkleAuthPath> round = MerkleAuthPath::Deserialize(path.Serialize());
    ASSERT_TRUE(round.ok());
    EXPECT_EQ(MerkleTree::RootFromPath(nonces[i], round.value()), tree.root());
  }

  EXPECT_FALSE(MerkleAuthPath::Deserialize(Bytes{0x01, 0x02}).ok());
  Bytes wire = tree.PathFor(0).Serialize();
  wire.pop_back();
  EXPECT_FALSE(MerkleAuthPath::Deserialize(wire).ok());
  // A count field claiming an absurd depth is refused before allocation.
  Bytes deep;
  PutUint32(&deep, 1u << 30);
  EXPECT_FALSE(MerkleAuthPath::Deserialize(deep).ok());
  // Side bytes other than 0/1 are refused.
  Bytes bad_side = tree.PathFor(0).Serialize();
  bad_side[4] = 0x02;
  EXPECT_FALSE(MerkleAuthPath::Deserialize(bad_side).ok());
}

}  // namespace
}  // namespace flicker
