// FIPS / RFC test vectors plus incremental-update properties for the four
// hash functions.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/crypto/md5.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"

namespace flicker {
namespace {

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(ToHex(Sha1::Digest(BytesOf(""))), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(ToHex(Sha1::Digest(BytesOf("abc"))), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(ToHex(Sha1::Digest(BytesOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionA) {
  Sha1 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(ToHex(h.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Bytes msg = BytesOf("The quick brown fox jumps over the lazy dog");
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha1 h;
    h.Update(msg.data(), split);
    h.Update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(h.Finish(), Sha1::Digest(msg)) << "split at " << split;
  }
}

TEST(Sha1Test, ResetRestoresInitialState) {
  Sha1 h;
  h.Update(BytesOf("garbage"));
  h.Reset();
  h.Update(BytesOf("abc"));
  EXPECT_EQ(ToHex(h.Finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// Boundary lengths around the 64-byte block and 56-byte padding threshold.
TEST(Sha1Test, BlockBoundaryLengths) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    Bytes msg(len, 0x5a);
    Sha1 incremental;
    for (size_t i = 0; i < len; ++i) {
      incremental.Update(msg.data() + i, 1);
    }
    EXPECT_EQ(incremental.Finish(), Sha1::Digest(msg)) << "len " << len;
  }
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(ToHex(Sha256::Digest(BytesOf(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(ToHex(Sha256::Digest(BytesOf("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      ToHex(Sha256::Digest(BytesOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  Bytes chunk(10000, 'a');
  for (int i = 0; i < 100; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(ToHex(h.Finish()), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes msg(200, 0);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  Sha256 h;
  h.Update(msg.data(), 13);
  h.Update(msg.data() + 13, 100);
  h.Update(msg.data() + 113, msg.size() - 113);
  EXPECT_EQ(h.Finish(), Sha256::Digest(msg));
}

TEST(Sha512Test, EmptyString) {
  EXPECT_EQ(ToHex(Sha512::Digest(BytesOf(""))),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, Abc) {
  EXPECT_EQ(ToHex(Sha512::Digest(BytesOf("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, MillionA) {
  Sha512 h;
  Bytes chunk(100000, 'a');
  for (int i = 0; i < 10; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(ToHex(h.Finish()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512Test, IncrementalAcrossBlockBoundary) {
  Bytes msg(300, 0x7e);
  Sha512 h;
  h.Update(msg.data(), 127);
  h.Update(msg.data() + 127, 2);
  h.Update(msg.data() + 129, msg.size() - 129);
  EXPECT_EQ(h.Finish(), Sha512::Digest(msg));
}

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(ToHex(Md5::Digest(BytesOf(""))), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(ToHex(Md5::Digest(BytesOf("a"))), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(ToHex(Md5::Digest(BytesOf("abc"))), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(ToHex(Md5::Digest(BytesOf("message digest"))), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(ToHex(Md5::Digest(BytesOf("abcdefghijklmnopqrstuvwxyz"))),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(ToHex(Md5::Digest(
                BytesOf("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"))),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(ToHex(Md5::Digest(BytesOf(
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890"))),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  Bytes msg(150, 0x11);
  Md5 h;
  h.Update(msg.data(), 63);
  h.Update(msg.data() + 63, 2);
  h.Update(msg.data() + 65, msg.size() - 65);
  EXPECT_EQ(h.Finish(), Md5::Digest(msg));
}

// Distinct inputs must give distinct digests (a smoke test that no internal
// state is shared between instances).
TEST(HashTest, InstancesAreIndependent) {
  Sha1 a;
  Sha1 b;
  a.Update(BytesOf("first"));
  b.Update(BytesOf("second"));
  Bytes da = a.Finish();
  Bytes db = b.Finish();
  EXPECT_NE(da, db);
  EXPECT_EQ(da, Sha1::Digest(BytesOf("first")));
  EXPECT_EQ(db, Sha1::Digest(BytesOf("second")));
}

// Finish() leaves the object reset: hashing a second message on the same
// instance must equal a fresh one-shot digest, for every hash class.
TEST(HashTest, FinishAutoResetsForReuse) {
  Sha1 sha1;
  sha1.Update(BytesOf("first message"));
  EXPECT_EQ(sha1.Finish(), Sha1::Digest(BytesOf("first message")));
  sha1.Update(BytesOf("second message"));
  EXPECT_EQ(sha1.Finish(), Sha1::Digest(BytesOf("second message")));

  Sha256 sha256;
  sha256.Update(BytesOf("first"));
  EXPECT_EQ(sha256.Finish(), Sha256::Digest(BytesOf("first")));
  sha256.Update(BytesOf("second"));
  EXPECT_EQ(sha256.Finish(), Sha256::Digest(BytesOf("second")));

  Sha512 sha512;
  sha512.Update(BytesOf("first"));
  EXPECT_EQ(sha512.Finish(), Sha512::Digest(BytesOf("first")));
  sha512.Update(BytesOf("second"));
  EXPECT_EQ(sha512.Finish(), Sha512::Digest(BytesOf("second")));

  Md5 md5;
  md5.Update(BytesOf("first"));
  EXPECT_EQ(md5.Finish(), Md5::Digest(BytesOf("first")));
  md5.Update(BytesOf("second"));
  EXPECT_EQ(md5.Finish(), Md5::Digest(BytesOf("second")));

  // An empty follow-up (Finish with no Update) is the empty-string digest.
  Sha1 empty;
  empty.Update(BytesOf("spent"));
  empty.Finish();
  EXPECT_EQ(ToHex(empty.Finish()), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(HashTest, DigestSizesMatchConstants) {
  EXPECT_EQ(Sha1::Digest(BytesOf("x")).size(), Sha1::kDigestSize);
  EXPECT_EQ(Sha256::Digest(BytesOf("x")).size(), Sha256::kDigestSize);
  EXPECT_EQ(Sha512::Digest(BytesOf("x")).size(), Sha512::kDigestSize);
  EXPECT_EQ(Md5::Digest(BytesOf("x")).size(), Md5::kDigestSize);
}

}  // namespace
}  // namespace flicker
