// Differential and known-answer coverage for the Montgomery modular-
// exponentiation engine: the fast path must be bit-exact with the retained
// reference implementation, including the even-modulus fallback, and must
// reproduce an externally computed RSA-2048 PKCS#1 v1.5 signature.

#include <gtest/gtest.h>

#include "src/crypto/bigint.h"
#include "src/crypto/drbg.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

BigInt RandomBigInt(Drbg* rng, size_t bytes) {
  return BigInt::FromBytesBe(rng->Generate(bytes));
}

TEST(MontgomeryTest, DifferentialAgainstReference) {
  Drbg rng(0xf11c4e5);
  for (int i = 0; i < 1000; ++i) {
    // Sizes sweep 1..48 bytes (scalar kernel) with sprinkles of 1024-, 1536-
    // and 2048-bit operands (AVX512-IFMA kernel widths where available);
    // every third modulus is forced even to exercise the fallback path.
    size_t size = static_cast<size_t>(i % 48) + 1;
    if (i % 25 == 0) {
      size = 128;
    } else if (i % 100 == 13) {
      size = 256;
    } else if (i % 100 == 57) {
      size = 192;
    }
    BigInt base = RandomBigInt(&rng, size);
    BigInt exp = RandomBigInt(&rng, size);
    BigInt mod = RandomBigInt(&rng, size);
    if (i % 3 == 0) {
      mod = mod.IsOdd() ? mod + BigInt(1) : mod;
    } else if (!mod.IsOdd()) {
      mod = mod + BigInt(1);
    }
    if (mod.IsZero()) {
      mod = BigInt(2);
    }
    BigInt expected = BigInt::ModExpReference(base, exp, mod);
    BigInt actual = BigInt::ModExp(base, exp, mod);
    ASSERT_EQ(expected, actual) << "triple " << i << ": base=" << base.ToHex()
                                << " exp=" << exp.ToHex() << " mod=" << mod.ToHex();
  }
}

TEST(MontgomeryTest, ModMulMatchesSchoolbook) {
  Drbg rng(0xcafe);
  for (int i = 0; i < 200; ++i) {
    size_t size = static_cast<size_t>(i % 40) + 1;
    BigInt a = RandomBigInt(&rng, size);
    BigInt b = RandomBigInt(&rng, size);
    BigInt mod = RandomBigInt(&rng, size);
    if (!mod.IsOdd()) {
      mod = mod + BigInt(1);
    }
    if (mod <= BigInt(1)) {
      mod = BigInt(3);
    }
    Result<MontgomeryContext> ctx = MontgomeryContext::Create(mod);
    ASSERT_TRUE(ctx.ok());
    ASSERT_EQ((a * b) % mod, ctx.value().ModMul(a, b)) << "pair " << i;
  }
}

TEST(MontgomeryTest, ContextRejectsEvenOrTrivialModulus) {
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(10)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(1)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt()).ok());
  EXPECT_TRUE(MontgomeryContext::Create(BigInt(3)).ok());
}

TEST(MontgomeryTest, ModExpEdgeCases) {
  BigInt mod = BigInt::FromHex("f123456789abcdef123456789abcdef1");

  // Zero exponent: x^0 = 1 for any base, including zero.
  EXPECT_EQ(BigInt(1), BigInt::ModExp(BigInt(), BigInt(), mod));
  EXPECT_EQ(BigInt(1), BigInt::ModExp(mod + BigInt(5), BigInt(), mod));

  // Base >= modulus is reduced first.
  EXPECT_EQ(BigInt(25) % BigInt(7), BigInt::ModExp(BigInt(5 + 7), BigInt(2), BigInt(7)));
  BigInt big_base = (mod * BigInt(3)) + BigInt(2);
  EXPECT_EQ(BigInt::ModExp(BigInt(2), BigInt(17), mod),
            BigInt::ModExp(big_base, BigInt(17), mod));

  // Modulus 1: everything collapses to zero.
  EXPECT_EQ(BigInt(), BigInt::ModExp(BigInt(5), BigInt(3), BigInt(1)));
  Result<BigInt> mod_one = BigInt::ModExpChecked(BigInt(5), BigInt(3), BigInt(1));
  ASSERT_TRUE(mod_one.ok());
  EXPECT_EQ(BigInt(), mod_one.value());

  // Zero modulus: error via the checked API, zero sentinel via ModExp.
  Result<BigInt> mod_zero = BigInt::ModExpChecked(BigInt(5), BigInt(3), BigInt());
  EXPECT_FALSE(mod_zero.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, mod_zero.status().code());
  EXPECT_EQ(BigInt(), BigInt::ModExp(BigInt(5), BigInt(3), BigInt()));

  // Exponent 1 is the identity (mod n), base zero stays zero.
  EXPECT_EQ(BigInt(42), BigInt::ModExp(BigInt(42), BigInt(1), mod));
  EXPECT_EQ(BigInt(), BigInt::ModExp(BigInt(), BigInt(9), mod));

  // Even modulus goes down the reference path and still reduces the base.
  EXPECT_EQ(BigInt(4), BigInt::ModExp(BigInt(14), BigInt(2), BigInt(6)));
}

// Key material and signature generated offline (Python: seeded prime search,
// pow(m, d, n) over the standard SHA-1 DigestInfo encoding of the message).
TEST(MontgomeryTest, Rsa2048Pkcs1Sha1KnownAnswer) {
  RsaPrivateKey key;
  key.pub.n = BigInt::FromHex(
      "b5addba0ad8d214e6c8dcf6c8b34cabd8c954a0665aedb13598c704ca846ed3ed29e8d8ab34567e8f4e58a7764"
      "a43af4d555cb935eb7a613168f0be676ff6c5470e2566057df315c771a7a796c6818f15dd825fe2947993be832"
      "ce283508a91b94e7be222ea6f4a7a82ea2475a3704bda892719fc0fc7133584108b38379f11d9d34e2e66bd3c8"
      "8a3b9acc885bd2dc5e774e9764b0597362f9107bd4e71b68b355afa6cbfd0dc5bcf245b62fdfe3fa8966c3cd0d"
      "e7dbd2548125a7e74e8578f35aae077e8b841df71d5cfbad438d5dabf5e832a1fd6885a134222065eafb0ebd17"
      "f74f57d15faaf0d0875983c27348205c1e9f1f0a0a405d254e48269873b997");
  key.pub.e = BigInt::FromHex("10001");
  key.d = BigInt::FromHex(
      "977720f9ee7710e37f2123634d13704b631f3b9de5bc47acf4255fa2a950a88e8dadde375a8a6cbd0d1f29b7ac"
      "52374cd36739d7dd49a2cd9b2b1b32c2d6e40bea28e8f65d8c186d0c6728e07e7eb2fcd7ce52ae78dfd662d98d"
      "31ced79826d475ea56dbcca528a776519abd7dfb0c9aca257d5140e5b5c2a6bb6173b8133bee9a93fba71dbf91"
      "b509f17f5a171d8c51d34b87de0019a9eeaa00d9b375fe4614cf5b5fc9c779978dd7b7442e988b8d92a3834e22"
      "a1f0a090d169f90d77ddd923c9460ca132ce33d0964b2be85dcee03003aa786396e96ec50cff4333850ba294d7"
      "056696066fb3ddea470a6f676c56bc6950614bf9bd9aea04cda4e40da3b271");
  key.p = BigInt::FromHex(
      "e24e4dd127485d5b1ce2d1ac5ad97e682e88ffbd551ee813e6559247532484f48ecc2ecc35c5bac7c448fbf48b"
      "9fdb06d05cc1a2e0976f50a758a8afd9d9746b3f0baaf849430754446b171f7889629fe5c08428e8178dbcbb25"
      "11080c3c9e613c715770b780d9b779067c375c318c778fafcdde8e914c585802aed7c18ab395");
  key.q = BigInt::FromHex(
      "cd84868b3ad2eb91f21c7e7badf36687a53a1330d5c593fe79b9fc6a393819b73c6f41a97a24ea9599ea1e1b25"
      "83c002ffda1e88e486179c6f61f3d5714d3a48bb4419f075da3dc892da4971151386dad46c680f8d8ea38b3ec9"
      "038be5ed05d2018a157f916a1f2730a103204aba065c0fa54bd1e2372d3d09883d1044b56d7b");
  key.dp = BigInt::FromHex(
      "b7c54495daa37e03f6220e883ac2314f22b2e791f52482eb5df9112f5049f099b3b8052c9961f6fa2fdfe0924"
      "62bcaadeed7d3fa930d063ce5982e6b96a96a4b88c7cdcf8f9699c609453962b9fc3e957ff9e4985f587925d0"
      "871a1c81eb5be5b4328a022351c3faa491ea9efe03d28068b327a759f88d9993e6a1dadcf4e83d");
  key.dq = BigInt::FromHex(
      "580a5cc4ca474ee92fa9ab397a7459c8e42c33ca68d98223b2abcd09084813241efc9e4966ece79d7cd9015aa"
      "9c07e020aeebac3f3f9c9a5974583fa3cd6539092c082c833047211396fcfa464ddff984105cbb255f6f3f293"
      "cbf2fbfc5c8470c97e08e5a43aacebd1f637eb9e77807ff1a7e30a1f7979a4bb2fa4d1124e127f");
  key.qinv = BigInt::FromHex(
      "aa454592a256707e9c8be0d6746227e22a9d7228029979c34ca21499f9161e72b36d203c3238f8318e86c1488"
      "e6b327619acd2ed1d5b1b1cd51fd535e1412a41cc3485ba4e023aeb85ebff2cf1482269faa165c63d6bf3a584"
      "c174ed3be2a7e8a4c80e9425fc0b9e2b6b783163c23eb68ac55df4389e35b168ae3c20f3d9c4c0");
  const BigInt expected_sig = BigInt::FromHex(
      "1640f6102e23fd6769b92923923cbe3bf179e9c014c95e9dc572997c422d8a8c510de892eaee54a2da83df830d"
      "cd76c907876214311e3bcd8f5b1073602d4072f61a862c37648e20e00d0545a15a10d06082abe0aa0751667499"
      "d36a11c66e3084d21e5645138f03e87e9287f6b5028a5215842eb8a90957a3f169072812506fdce1fa8cc984d2"
      "fcfe6b3f807178428fd0b5ae70a715853ed11a12d18d6384655f3c38dd35d7db7943c1b8c7bfcdf8bc9e2e7f00"
      "29f5ecb6b725214b07eea4785c4c6c6c4ade617c6858d1d4a5795c3a410131ee405c67450bce7ffd3500efe3c2"
      "2ad357be377a86bffe9113e5654736bdeca6a129d33df5058204786513418");

  const Bytes message = BytesOf("flicker montgomery known-answer test");
  Bytes signature = RsaSignSha1(key, message);
  EXPECT_EQ(expected_sig.ToBytesBe(256), signature);
  EXPECT_TRUE(RsaVerifySha1(key.pub, message, signature));

  // The non-CRT private op must agree with the CRT path.
  BigInt m = BigInt::FromBytesBe(Sha1::Digest(message));
  EXPECT_EQ(BigInt::ModExp(m, key.d, key.pub.n), RsaPrivateOp(key, m));
}

}  // namespace
}  // namespace flicker
