// RFC 2202 (HMAC-SHA1) and RFC 4231 (HMAC-SHA256) vectors.

#include "src/crypto/hmac.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace flicker {
namespace {

TEST(HmacSha1Test, Rfc2202Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha1(key, BytesOf("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1Test, Rfc2202Case2) {
  EXPECT_EQ(ToHex(HmacSha1(BytesOf("Jefe"), BytesOf("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1Test, Rfc2202Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha1(key, data)), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1Test, LongKeyIsHashedFirst) {
  // RFC 2202 case 6: 80-byte key (> block size).
  Bytes key(80, 0xaa);
  EXPECT_EQ(ToHex(HmacSha1(key, BytesOf("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha256(key, BytesOf("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(ToHex(HmacSha256(BytesOf("Jefe"), BytesOf("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, VerifyAcceptsValidTag) {
  Bytes key = BytesOf("state-mac-key");
  Bytes msg = BytesOf("distributed computing checkpoint");
  EXPECT_TRUE(HmacSha1Verify(key, msg, HmacSha1(key, msg)));
  EXPECT_TRUE(HmacSha256Verify(key, msg, HmacSha256(key, msg)));
}

TEST(HmacTest, VerifyRejectsTamperedMessage) {
  Bytes key = BytesOf("state-mac-key");
  Bytes msg = BytesOf("divisor=123456789");
  Bytes tag = HmacSha1(key, msg);
  Bytes tampered = BytesOf("divisor=123456780");
  EXPECT_FALSE(HmacSha1Verify(key, tampered, tag));
}

TEST(HmacTest, VerifyRejectsTamperedTag) {
  Bytes key = BytesOf("k");
  Bytes msg = BytesOf("m");
  Bytes tag = HmacSha1(key, msg);
  tag[0] ^= 1;
  EXPECT_FALSE(HmacSha1Verify(key, msg, tag));
}

TEST(HmacTest, VerifyRejectsWrongKey) {
  Bytes msg = BytesOf("m");
  Bytes tag = HmacSha1(BytesOf("key-a"), msg);
  EXPECT_FALSE(HmacSha1Verify(BytesOf("key-b"), msg, tag));
}

TEST(HmacTest, VerifyRejectsTruncatedTag) {
  Bytes key = BytesOf("k");
  Bytes msg = BytesOf("m");
  Bytes tag = HmacSha1(key, msg);
  tag.pop_back();
  EXPECT_FALSE(HmacSha1Verify(key, msg, tag));
}

TEST(HmacTest, DifferentKeysGiveDifferentTags) {
  Bytes msg = BytesOf("same message");
  EXPECT_NE(HmacSha1(BytesOf("a"), msg), HmacSha1(BytesOf("b"), msg));
}

}  // namespace
}  // namespace flicker
