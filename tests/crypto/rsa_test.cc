// RSA key generation, PKCS#1 v1.5 encryption and signatures.
//
// Key generation is the slowest primitive in the suite, so the fixture
// generates one 1024-bit key (the paper's PAL key size) and shares it.

#include "src/crypto/rsa.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Drbg(0xf11cce5);
    key_ = new RsaPrivateKey(RsaGenerateKey(1024, rng_));
  }
  static void TearDownTestSuite() {
    delete key_;
    delete rng_;
    key_ = nullptr;
    rng_ = nullptr;
  }

  static Drbg* rng_;
  static RsaPrivateKey* key_;
};

Drbg* RsaTest::rng_ = nullptr;
RsaPrivateKey* RsaTest::key_ = nullptr;

TEST_F(RsaTest, KeyHasExpectedShape) {
  EXPECT_EQ(key_->pub.n.BitLength(), 1024u);
  EXPECT_EQ(key_->pub.e, BigInt(65537));
  EXPECT_EQ(key_->p * key_->q, key_->pub.n);
  EXPECT_NE(key_->p, key_->q);
}

TEST_F(RsaTest, PrimesAreActuallyPrime) {
  Drbg rng(1);
  EXPECT_TRUE(IsProbablePrime(key_->p, &rng));
  EXPECT_TRUE(IsProbablePrime(key_->q, &rng));
}

TEST_F(RsaTest, CrtParametersConsistent) {
  EXPECT_EQ(key_->dp, key_->d % (key_->p - BigInt(1)));
  EXPECT_EQ(key_->dq, key_->d % (key_->q - BigInt(1)));
  EXPECT_EQ((key_->qinv * key_->q) % key_->p, BigInt(1));
}

TEST_F(RsaTest, RawRoundTrip) {
  BigInt m(123456789);
  BigInt c = RsaPublicOp(key_->pub, m);
  EXPECT_NE(c, m);
  EXPECT_EQ(RsaPrivateOp(*key_, c), m);
}

TEST_F(RsaTest, PrivateThenPublicRoundTrip) {
  BigInt m(987654321);
  BigInt s = RsaPrivateOp(*key_, m);
  EXPECT_EQ(RsaPublicOp(key_->pub, s), m);
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  Bytes msg = BytesOf("user password: correct horse battery staple");
  Result<Bytes> ct = RsaEncryptPkcs1(key_->pub, msg, rng_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct.value().size(), key_->pub.ModulusBytes());
  Result<Bytes> pt = RsaDecryptPkcs1(*key_, ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), msg);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
  Bytes msg = BytesOf("same message");
  Result<Bytes> c1 = RsaEncryptPkcs1(key_->pub, msg, rng_);
  Result<Bytes> c2 = RsaEncryptPkcs1(key_->pub, msg, rng_);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(c1.value(), c2.value());
}

TEST_F(RsaTest, MessageTooLongRejected) {
  Bytes msg(key_->pub.ModulusBytes() - 10, 0x41);
  Result<Bytes> ct = RsaEncryptPkcs1(key_->pub, msg, rng_);
  ASSERT_FALSE(ct.ok());
  EXPECT_EQ(ct.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RsaTest, MaximumLengthMessageAccepted) {
  Bytes msg(key_->pub.ModulusBytes() - 11, 0x41);
  Result<Bytes> ct = RsaEncryptPkcs1(key_->pub, msg, rng_);
  ASSERT_TRUE(ct.ok());
  Result<Bytes> pt = RsaDecryptPkcs1(*key_, ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), msg);
}

TEST_F(RsaTest, TamperedCiphertextFails) {
  Bytes msg = BytesOf("secret");
  Result<Bytes> ct = RsaEncryptPkcs1(key_->pub, msg, rng_);
  ASSERT_TRUE(ct.ok());
  Bytes tampered = ct.value();
  tampered[tampered.size() / 2] ^= 0x01;
  Result<Bytes> pt = RsaDecryptPkcs1(*key_, tampered);
  if (pt.ok()) {
    EXPECT_NE(pt.value(), msg);  // Astronomically unlikely to still parse.
  }
}

TEST_F(RsaTest, WrongLengthCiphertextRejected) {
  Result<Bytes> pt = RsaDecryptPkcs1(*key_, Bytes(10, 0));
  ASSERT_FALSE(pt.ok());
  EXPECT_EQ(pt.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  Bytes msg = BytesOf("certificate signing request for example.com");
  Bytes sig = RsaSignSha1(*key_, msg);
  EXPECT_EQ(sig.size(), key_->pub.ModulusBytes());
  EXPECT_TRUE(RsaVerifySha1(key_->pub, msg, sig));
}

TEST_F(RsaTest, SignatureRejectsModifiedMessage) {
  Bytes msg = BytesOf("issue cert for example.com");
  Bytes sig = RsaSignSha1(*key_, msg);
  EXPECT_FALSE(RsaVerifySha1(key_->pub, BytesOf("issue cert for evil.com"), sig));
}

TEST_F(RsaTest, SignatureRejectsModifiedSignature) {
  Bytes msg = BytesOf("message");
  Bytes sig = RsaSignSha1(*key_, msg);
  sig[0] ^= 0x80;
  EXPECT_FALSE(RsaVerifySha1(key_->pub, msg, sig));
}

TEST_F(RsaTest, SignatureRejectsWrongKey) {
  Drbg rng(42);
  RsaPrivateKey other = RsaGenerateKey(1024, &rng);
  Bytes msg = BytesOf("message");
  Bytes sig = RsaSignSha1(other, msg);
  EXPECT_FALSE(RsaVerifySha1(key_->pub, msg, sig));
}

TEST_F(RsaTest, SignatureRejectsWrongLength) {
  Bytes msg = BytesOf("message");
  EXPECT_FALSE(RsaVerifySha1(key_->pub, msg, Bytes(5, 1)));
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  Bytes wire = key_->pub.Serialize();
  Result<RsaPublicKey> back = RsaPublicKey::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().n, key_->pub.n);
  EXPECT_EQ(back.value().e, key_->pub.e);
}

TEST_F(RsaTest, PrivateKeySerializationRoundTrip) {
  Bytes wire = key_->Serialize();
  Result<RsaPrivateKey> back = RsaPrivateKey::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().d, key_->d);
  EXPECT_EQ(back.value().qinv, key_->qinv);
  // The deserialized key must still decrypt.
  Bytes msg = BytesOf("round trip");
  Drbg rng(3);
  Result<Bytes> ct = RsaEncryptPkcs1(key_->pub, msg, &rng);
  ASSERT_TRUE(ct.ok());
  Result<Bytes> pt = RsaDecryptPkcs1(back.value(), ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), msg);
}

TEST_F(RsaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RsaPublicKey::Deserialize(BytesOf("nonsense")).ok());
  EXPECT_FALSE(RsaPrivateKey::Deserialize(Bytes(3, 0)).ok());
  EXPECT_FALSE(RsaPublicKey::Deserialize(Bytes()).ok());
}

TEST_F(RsaTest, BatchVerifyMatchesScalarVerify) {
  // The batch entry point hashes all messages through the multi-buffer
  // engine, so its verdicts must match RsaVerifySha1 bit for bit - good,
  // bad-signature, bad-message and wrong-key lanes mixed in one call.
  std::vector<Bytes> messages;
  std::vector<Bytes> signatures;
  for (int i = 0; i < 5; ++i) {
    messages.push_back(BytesOf("batch message " + std::to_string(i)));
    signatures.push_back(RsaSignSha1(*key_, messages.back()));
  }
  // Lane 1: valid signature over a DIFFERENT message.
  messages[1] = BytesOf("substituted message");
  // Lane 3: corrupted signature.
  signatures[3][0] ^= 0x80;
  Drbg rng(99);
  RsaPrivateKey other = RsaGenerateKey(1024, &rng);
  // Lane 4: signed by the wrong key.
  signatures[4] = RsaSignSha1(other, messages[4]);

  std::vector<bool> verdicts = RsaVerifySha1Batch(key_->pub, messages, signatures);
  ASSERT_EQ(verdicts.size(), 5u);
  for (size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], RsaVerifySha1(key_->pub, messages[i], signatures[i])) << "lane " << i;
  }
  EXPECT_TRUE(verdicts[0]);
  EXPECT_FALSE(verdicts[1]);
  EXPECT_TRUE(verdicts[2]);
  EXPECT_FALSE(verdicts[3]);
  EXPECT_FALSE(verdicts[4]);
}

TEST_F(RsaTest, BatchVerifyRejectsShapeMismatchAndEmpty) {
  EXPECT_TRUE(RsaVerifySha1Batch(key_->pub, {}, {}).empty());
  Bytes msg = BytesOf("m");
  std::vector<bool> verdicts = RsaVerifySha1Batch(key_->pub, {msg, msg}, {RsaSignSha1(*key_, msg)});
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_FALSE(verdicts[0]);
  EXPECT_FALSE(verdicts[1]);
}

TEST(RsaPrimality, KnownPrimesAndComposites) {
  Drbg rng(5);
  EXPECT_TRUE(IsProbablePrime(BigInt(2), &rng));
  EXPECT_TRUE(IsProbablePrime(BigInt(3), &rng));
  EXPECT_TRUE(IsProbablePrime(BigInt(65537), &rng));
  EXPECT_TRUE(IsProbablePrime(BigInt(1000003), &rng));
  EXPECT_TRUE(IsProbablePrime(BigInt::FromHex("ffffffffffffffc5"), &rng));  // 2^64 - 59
  EXPECT_FALSE(IsProbablePrime(BigInt(1), &rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(0), &rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(1000004), &rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(65537ULL * 65539ULL), &rng));
  // Carmichael number 561 = 3 * 11 * 17 must be caught.
  EXPECT_FALSE(IsProbablePrime(BigInt(561), &rng));
}

TEST(RsaKeygen, Key512StillWorks) {
  Drbg rng(77);
  RsaPrivateKey key = RsaGenerateKey(512, &rng);
  EXPECT_EQ(key.pub.n.BitLength(), 512u);
  Bytes msg = BytesOf("small key");
  Result<Bytes> ct = RsaEncryptPkcs1(key.pub, msg, &rng);
  ASSERT_TRUE(ct.ok());
  Result<Bytes> pt = RsaDecryptPkcs1(key, ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), msg);
}

TEST(RsaKeygen, DeterministicGivenSeed) {
  Drbg rng1(1234);
  Drbg rng2(1234);
  RsaPrivateKey k1 = RsaGenerateKey(512, &rng1);
  RsaPrivateKey k2 = RsaGenerateKey(512, &rng2);
  EXPECT_EQ(k1.pub.n, k2.pub.n);
  EXPECT_EQ(k1.d, k2.d);
}

}  // namespace
}  // namespace flicker
