// The quote daemon's coalescing windows: batches fill until max_batch_size
// or age out at max_batch_wait_ms, windows never mix PCR selections, and the
// batch path composes with the robustness machinery - the circuit breaker
// holds windows, a TPM failure mid-flush loses no challenges, and a power
// cut at the flush boundary unwinds cleanly.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/os/tqd.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

Bytes Nonce(const std::string& tag) { return BytesOf("nonce-" + tag); }

TEST(TqdBatchTest, WindowFlushesWhenFull) {
  Machine machine;
  TqdConfig config;
  config.max_batch_size = 4;
  config.max_batch_wait_ms = 1000.0;
  TpmQuoteDaemon tqd(&machine, config);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tqd.SubmitBatched(Nonce(std::to_string(i)), PcrSelection({17})).ok());
  }
  EXPECT_FALSE(tqd.BatchReady());
  EXPECT_EQ(tqd.batched_pending(), 3u);

  // A non-forced flush before the window is ready answers nobody.
  std::vector<BatchQuoteResponse> responses;
  ASSERT_TRUE(tqd.FlushReadyBatches(&responses).ok());
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(tqd.batched_pending(), 3u);

  // The fourth challenge fills the window.
  ASSERT_TRUE(tqd.SubmitBatched(Nonce("3"), PcrSelection({17})).ok());
  EXPECT_TRUE(tqd.BatchReady());
  ASSERT_TRUE(tqd.FlushReadyBatches(&responses).ok());
  EXPECT_EQ(responses.size(), 4u);
  EXPECT_EQ(tqd.batched_pending(), 0u);
  EXPECT_EQ(tqd.batch_quotes(), 1u);
}

TEST(TqdBatchTest, WindowFlushesWhenOldestChallengeAgesOut) {
  Machine machine;
  TqdConfig config;
  config.max_batch_size = 32;
  config.max_batch_wait_ms = 10.0;
  TpmQuoteDaemon tqd(&machine, config);

  ASSERT_TRUE(tqd.SubmitBatched(Nonce("early"), PcrSelection({17})).ok());
  machine.clock()->AdvanceMillis(6.0);
  ASSERT_TRUE(tqd.SubmitBatched(Nonce("late"), PcrSelection({17})).ok());
  EXPECT_FALSE(tqd.BatchReady());

  // The window's age is measured from its OLDEST challenge: 6 + 4 >= 10.
  machine.clock()->AdvanceMillis(4.0);
  EXPECT_TRUE(tqd.BatchReady());
  std::vector<BatchQuoteResponse> responses;
  ASSERT_TRUE(tqd.FlushReadyBatches(&responses).ok());
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_EQ(tqd.batch_quotes(), 1u);
}

TEST(TqdBatchTest, SelectionsNeverShareAWindow) {
  Machine machine;
  TqdConfig config;
  config.max_batch_size = 8;
  TpmQuoteDaemon tqd(&machine, config);

  ASSERT_TRUE(tqd.SubmitBatched(Nonce("a"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd.SubmitBatched(Nonce("b"), PcrSelection({17, 18})).ok());
  ASSERT_TRUE(tqd.SubmitBatched(Nonce("c"), PcrSelection({17})).ok());
  EXPECT_EQ(tqd.batched_pending(), 3u);

  std::vector<BatchQuoteResponse> responses;
  ASSERT_TRUE(tqd.FlushReadyBatches(&responses, /*force=*/true).ok());
  ASSERT_EQ(responses.size(), 3u);
  // Two windows, hence two distinct TPM quotes (different composites).
  EXPECT_EQ(tqd.batch_quotes(), 2u);
  for (const BatchQuoteResponse& r : responses) {
    if (r.nonce == Nonce("b")) {
      EXPECT_EQ(r.response.quote.selection.mask(), PcrSelection({17, 18}).mask());
    } else {
      EXPECT_EQ(r.response.quote.selection.mask(), PcrSelection({17}).mask());
    }
  }
}

TEST(TqdBatchTest, BatchSizeOneDisablesCoalescing) {
  Machine machine;
  TqdConfig config;
  config.max_batch_size = 1;
  config.max_batch_wait_ms = 1000.0;
  TpmQuoteDaemon tqd(&machine, config);

  ASSERT_TRUE(tqd.SubmitBatched(Nonce("solo"), PcrSelection({17})).ok());
  EXPECT_TRUE(tqd.BatchReady());  // Ready immediately, no wait.
  std::vector<BatchQuoteResponse> responses;
  ASSERT_TRUE(tqd.FlushReadyBatches(&responses).ok());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].path.steps.empty());
}

TEST(TqdBatchTest, OpenBreakerHoldsWindowsUntilRecovery) {
  Machine machine;
  machine.tpm_transport()->hardware()->ForceFailureMode();

  TqdConfig config;
  config.breaker_threshold = 1;
  config.breaker_cooldown_ms = 100.0;
  config.max_batch_size = 2;
  TpmQuoteDaemon tqd(&machine, config);

  // Trip the breaker with an ordinary challenge.
  ASSERT_FALSE(tqd.HandleChallenge(Nonce("trip"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd.breaker_open());

  ASSERT_TRUE(tqd.SubmitBatched(Nonce("h1"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd.SubmitBatched(Nonce("h2"), PcrSelection({17})).ok());

  // The open breaker refuses to flush and the window stays intact.
  std::vector<BatchQuoteResponse> responses;
  Status held = tqd.FlushReadyBatches(&responses);
  EXPECT_EQ(held.code(), StatusCode::kTpmFailed);
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(tqd.batched_pending(), 2u);

  // TPM recovers; after the cooldown the half-open probe passes and the
  // held window flushes in one quote.
  machine.tpm_transport()->hardware()->ClearFailureMode();
  machine.tpm_transport()->hardware()->Init();
  ASSERT_TRUE(machine.tpm()->Startup(TpmStartupType::kClear).ok());
  machine.clock()->AdvanceMillis(config.breaker_cooldown_ms);
  ASSERT_TRUE(tqd.FlushReadyBatches(&responses).ok());
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_EQ(tqd.batched_pending(), 0u);
}

TEST(TqdBatchTest, TpmFailureMidFlushKeepsTheWindow) {
  Machine machine;
  TqdConfig config;
  config.breaker_threshold = 1;
  config.breaker_cooldown_ms = 100.0;
  config.max_batch_size = 2;
  TpmQuoteDaemon tqd(&machine, config);

  ASSERT_TRUE(tqd.SubmitBatched(Nonce("k1"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd.SubmitBatched(Nonce("k2"), PcrSelection({17})).ok());

  // The TPM dies between submit and flush: the quote fails, the breaker
  // trips, and the window is pushed back untouched.
  machine.tpm_transport()->hardware()->ForceFailureMode();
  std::vector<BatchQuoteResponse> responses;
  Status failed = tqd.FlushReadyBatches(&responses);
  EXPECT_EQ(failed.code(), StatusCode::kTpmFailed);
  EXPECT_TRUE(responses.empty());
  EXPECT_TRUE(tqd.breaker_open());
  EXPECT_EQ(tqd.batched_pending(), 2u);
  EXPECT_EQ(tqd.batch_quotes(), 0u);

  // Recovery drains the same window: no challenge was lost.
  machine.tpm_transport()->hardware()->ClearFailureMode();
  machine.tpm_transport()->hardware()->Init();
  ASSERT_TRUE(machine.tpm()->Startup(TpmStartupType::kClear).ok());
  machine.clock()->AdvanceMillis(config.breaker_cooldown_ms);
  ASSERT_TRUE(tqd.FlushReadyBatches(&responses).ok());
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_EQ(tqd.batch_quotes(), 1u);
}

TEST(TqdBatchTest, PowerCutAtFlushBoundaryUnwindsBeforeTheQuote) {
  Machine machine;
  TqdConfig config;
  config.max_batch_size = 2;
  TpmQuoteDaemon tqd(&machine, config);

  ASSERT_TRUE(tqd.SubmitBatched(Nonce("p1"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd.SubmitBatched(Nonce("p2"), PcrSelection({17})).ok());

  FaultScheduler scheduler;
  FaultInjectionScope scope(&scheduler);
  CrashPlan plan;
  plan.crash_at_hit = 1;
  plan.only_point = "tqd.batch_flush";
  scheduler.Arm(plan);

  std::vector<BatchQuoteResponse> responses;
  bool cut = false;
  try {
    (void)tqd.FlushReadyBatches(&responses, /*force=*/true);
  } catch (const PowerLossException& e) {
    cut = true;
    EXPECT_EQ(e.point(), "tqd.batch_flush");
  }
  ASSERT_TRUE(cut);
  scheduler.Disarm();

  // The cut struck before the TPM quote: no partial answers escaped and no
  // quote was counted. The in-flight window is gone - challengers re-issue,
  // exactly the paper's stateless-challenge model.
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(tqd.batch_quotes(), 0u);

  // A "rebooted" daemon on the same machine serves re-issued challenges.
  TpmQuoteDaemon recovered(&machine, config);
  ASSERT_TRUE(recovered.SubmitBatched(Nonce("p1"), PcrSelection({17})).ok());
  ASSERT_TRUE(recovered.SubmitBatched(Nonce("p2"), PcrSelection({17})).ok());
  ASSERT_TRUE(recovered.FlushReadyBatches(&responses, /*force=*/true).ok());
  EXPECT_EQ(responses.size(), 2u);
}

}  // namespace
}  // namespace flicker
