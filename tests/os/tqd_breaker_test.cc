// The quote daemon against a TPM in failure mode: the circuit breaker must
// open after repeated kTpmFailed verdicts, queue challenges instead of
// hammering the device, probe with TPM_GetTestResult after the cooldown, and
// drain the queue once the TPM self-tests clean. The retry loop must also
// respect its total simulated-clock deadline.

#include <gtest/gtest.h>

#include "src/os/tqd.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

constexpr double kDropTimeoutMs = 10.0;

TEST(TqdBreakerTest, OpensAfterConsecutiveTpmFailures) {
  Machine machine;
  machine.tpm_transport()->hardware()->ForceFailureMode();

  TqdConfig config;
  config.breaker_threshold = 3;
  TpmQuoteDaemon tqd(&machine, config);

  // The first (threshold - 1) challenges fail but the breaker stays closed.
  for (int i = 0; i < 2; ++i) {
    Result<AttestationResponse> response =
        tqd.HandleChallenge(BytesOf("challenge"), PcrSelection({17}));
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kTpmFailed);
    EXPECT_FALSE(tqd.breaker_open());
  }
  // The threshold-th failure trips it; from then on challenges are queued.
  ASSERT_FALSE(tqd.HandleChallenge(BytesOf("challenge"), PcrSelection({17})).ok());
  EXPECT_TRUE(tqd.breaker_open());
  EXPECT_EQ(tqd.queued_count(), 1u);

  ASSERT_FALSE(tqd.HandleChallenge(BytesOf("queued-2"), PcrSelection({17})).ok());
  EXPECT_EQ(tqd.queued_count(), 2u);
}

TEST(TqdBreakerTest, HalfOpenProbeRecoversAndDrainsQueue) {
  Machine machine;
  machine.tpm_transport()->hardware()->ForceFailureMode();

  TqdConfig config;
  config.breaker_threshold = 1;
  config.breaker_cooldown_ms = 100.0;
  TpmQuoteDaemon tqd(&machine, config);

  ASSERT_FALSE(tqd.HandleChallenge(BytesOf("a"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd.breaker_open());
  ASSERT_EQ(tqd.queued_count(), 1u);

  // Before the cooldown elapses, even a recovered TPM is not probed.
  machine.tpm_transport()->hardware()->ClearFailureMode();
  machine.tpm_transport()->hardware()->Init();
  ASSERT_TRUE(machine.tpm()->Startup(TpmStartupType::kClear).ok());
  ASSERT_FALSE(tqd.HandleChallenge(BytesOf("b"), PcrSelection({17})).ok());
  EXPECT_EQ(tqd.queued_count(), 2u);
  EXPECT_TRUE(tqd.breaker_open());

  // After the cooldown the half-open GetTestResult probe sees a clean self
  // test, the breaker closes, and the queue drains in order.
  machine.clock()->AdvanceMillis(config.breaker_cooldown_ms);
  std::vector<AttestationResponse> responses;
  ASSERT_TRUE(tqd.DrainQueued(&responses).ok());
  EXPECT_FALSE(tqd.breaker_open());
  EXPECT_EQ(tqd.queued_count(), 0u);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].quote.signature.empty());

  // Normal service resumes.
  EXPECT_TRUE(tqd.HandleChallenge(BytesOf("c"), PcrSelection({17})).ok());
}

TEST(TqdBreakerTest, ProbeFailureKeepsBreakerOpenAndRestartsCooldown) {
  Machine machine;
  machine.tpm_transport()->hardware()->ForceFailureMode();

  TqdConfig config;
  config.breaker_threshold = 1;
  config.breaker_cooldown_ms = 100.0;
  TpmQuoteDaemon tqd(&machine, config);
  ASSERT_FALSE(tqd.HandleChallenge(BytesOf("a"), PcrSelection({17})).ok());
  ASSERT_TRUE(tqd.breaker_open());

  // Cooldown passes but the TPM is still sick: the probe fails and the
  // challenge stays queued.
  machine.clock()->AdvanceMillis(config.breaker_cooldown_ms);
  std::vector<AttestationResponse> responses;
  ASSERT_FALSE(tqd.DrainQueued(&responses).ok());
  EXPECT_TRUE(tqd.breaker_open());
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(tqd.queued_count(), 1u);
}

TEST(TqdBreakerTest, RetryDeadlineCapsSimulatedClockSpend) {
  Machine machine;
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kDrop;
  plan.every_n = 1;  // Every frame lost.
  plan.drop_timeout_ms = kDropTimeoutMs;
  machine.tpm_transport()->set_fault_plan(plan);

  // Unlimited attempts, but a 25 ms total budget: the daemon gives up when
  // the next backoff would cross the deadline rather than sleeping past it.
  TqdConfig config;
  config.max_attempts = 100;
  config.retry_deadline_ms = 25.0;
  TpmQuoteDaemon tqd(&machine, config);

  double before = machine.clock()->NowMillis();
  Result<AttestationResponse> response =
      tqd.HandleChallenge(BytesOf("challenge"), PcrSelection({17}));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);

  double elapsed = machine.clock()->NowMillis() - before;
  EXPECT_LE(elapsed, config.retry_deadline_ms + 0.01);
  // It did retry at least once before the deadline bit.
  EXPECT_GE(tqd.retries(), 1u);
}

TEST(TqdBreakerTest, DeadlineZeroMeansUnlimited) {
  Machine machine;
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kDrop;
  plan.every_n = 3;
  plan.drop_timeout_ms = kDropTimeoutMs;
  machine.tpm_transport()->set_fault_plan(plan);

  TqdConfig config;  // retry_deadline_ms defaults to 0 (no cap).
  TpmQuoteDaemon tqd(&machine, config);
  EXPECT_TRUE(tqd.HandleChallenge(BytesOf("challenge"), PcrSelection({17})).ok());
}

}  // namespace
}  // namespace flicker
