#include "src/os/interactivity.h"

#include <gtest/gtest.h>

namespace flicker {
namespace {

TEST(InteractivityTest, NoSessionsNoLoss) {
  InteractivityParams params;
  params.session_ms = 0;
  params.os_window_ms = 1000;
  InteractivityReport report = SimulateUserInputDuringSessions(params);
  EXPECT_GT(report.events_total, 0u);
  EXPECT_EQ(report.events_lost, 0u);
}

TEST(InteractivityTest, LongSessionsDropInput) {
  InteractivityParams params;
  params.session_ms = 8300;
  params.os_window_ms = 37;
  params.duration_ms = 60'000;
  InteractivityReport report = SimulateUserInputDuringSessions(params);
  // 8.3 s at 30 Hz is ~249 events per session; the 16-slot buffer saves
  // only a fraction.
  EXPECT_GT(report.loss_fraction, 0.5);
  EXPECT_DOUBLE_EQ(report.longest_hang_ms, 8300);
}

TEST(InteractivityTest, ShortSessionsFitTheBuffer) {
  InteractivityParams params;
  params.session_ms = 400;  // 12 events at 30 Hz: fits in 16 slots.
  params.os_window_ms = 100;
  InteractivityReport report = SimulateUserInputDuringSessions(params);
  EXPECT_EQ(report.events_lost, 0u);
}

TEST(InteractivityTest, LossMonotoneInSessionLength) {
  double previous = -1;
  for (double session_ms : {500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
    InteractivityParams params;
    params.session_ms = session_ms;
    params.duration_ms = 120'000;
    double loss = SimulateUserInputDuringSessions(params).loss_fraction;
    EXPECT_GE(loss, previous) << "session " << session_ms;
    previous = loss;
  }
}

TEST(InteractivityTest, BiggerBufferLessLoss) {
  InteractivityParams small;
  small.session_ms = 1000;
  InteractivityParams big = small;
  big.controller_buffer_events = 64;
  EXPECT_GE(SimulateUserInputDuringSessions(small).loss_fraction,
            SimulateUserInputDuringSessions(big).loss_fraction);
}

TEST(InteractivityTest, DegenerateParamsSafe) {
  InteractivityParams params;
  params.event_rate_hz = 0;
  EXPECT_EQ(SimulateUserInputDuringSessions(params).events_total, 0u);
  InteractivityParams params2;
  params2.duration_ms = 0;
  EXPECT_EQ(SimulateUserInputDuringSessions(params2).events_total, 0u);
}

}  // namespace
}  // namespace flicker
