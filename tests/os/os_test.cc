// The untrusted-OS layer: kernel images, scheduler/hotplug, the
// flicker-module staging flow, block-device behaviour under suspension, and
// the quote daemon.

#include <gtest/gtest.h>

#include "src/os/devices.h"
#include "src/os/flicker_module.h"
#include "src/os/kernel.h"
#include "src/os/scheduler.h"
#include "src/os/tqd.h"
#include "src/slb/slb_core.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

class OsTest : public ::testing::Test {
 protected:
  OsTest() : machine_(MachineConfig{}), kernel_(&machine_), scheduler_(&machine_) {}

  Machine machine_;
  OsKernel kernel_;
  Scheduler scheduler_;
};

TEST_F(OsTest, KernelRegionsAndMeasurement) {
  std::vector<KernelRegion> regions = kernel_.MeasuredRegions();
  ASSERT_EQ(regions.size(), 5u);  // text + syscall table + 3 modules.
  EXPECT_EQ(regions[0].name, "text");
  EXPECT_EQ(regions[1].name, "syscall_table");
  EXPECT_EQ(regions[2].name, "module:ext3");

  EXPECT_EQ(kernel_.CurrentMeasurement(), kernel_.pristine_measurement());
  EXPECT_FALSE(kernel_.tampered());
}

TEST_F(OsTest, RegionSerializationRoundTrip) {
  Bytes wire = kernel_.SerializeRegions();
  Result<std::vector<KernelRegion>> back = OsKernel::DeserializeRegions(wire);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), kernel_.MeasuredRegions().size());
  EXPECT_EQ(back.value()[0].base, kernel_.MeasuredRegions()[0].base);
  EXPECT_EQ(back.value()[4].size, kernel_.MeasuredRegions()[4].size);

  EXPECT_FALSE(OsKernel::DeserializeRegions(Bytes(2, 0)).ok());
  EXPECT_FALSE(OsKernel::DeserializeRegions(BytesOf("garbage....")).ok());
}

TEST_F(OsTest, SyscallHookChangesMeasurement) {
  Bytes before = kernel_.CurrentMeasurement();
  ASSERT_TRUE(kernel_.InstallSyscallHook(42).ok());
  EXPECT_TRUE(kernel_.tampered());
  EXPECT_NE(kernel_.CurrentMeasurement(), before);

  ASSERT_TRUE(kernel_.RestorePristine().ok());
  EXPECT_EQ(kernel_.CurrentMeasurement(), before);
  EXPECT_FALSE(kernel_.tampered());
}

TEST_F(OsTest, TextPatchChangesMeasurement) {
  Bytes before = kernel_.CurrentMeasurement();
  ASSERT_TRUE(kernel_.PatchText(0x1000, BytesOf("\xcc\xcc\xcc\xcc")).ok());
  EXPECT_NE(kernel_.CurrentMeasurement(), before);
  EXPECT_FALSE(kernel_.PatchText(3 * 1024 * 1024, Bytes(4, 0)).ok());
  EXPECT_FALSE(kernel_.InstallSyscallHook(100000).ok());
}

TEST_F(OsTest, SchedulerRunsTasks) {
  ASSERT_TRUE(scheduler_.Spawn(0, OsTask{"make", 100}).ok());
  ASSERT_TRUE(scheduler_.Spawn(1, OsTask{"gcc", 50}).ok());
  scheduler_.RunFor(60);
  EXPECT_EQ(scheduler_.QueueDepth(0), 1u);  // make has 40 ms left.
  EXPECT_EQ(scheduler_.QueueDepth(1), 0u);  // gcc finished.
  EXPECT_DOUBLE_EQ(scheduler_.TotalCompletedMs(), 110);
  scheduler_.RunFor(60);
  EXPECT_EQ(scheduler_.QueueDepth(0), 0u);
}

TEST_F(OsTest, HotplugMigratesTasksAndParksAps) {
  ASSERT_TRUE(scheduler_.Spawn(1, OsTask{"worker", 100}).ok());
  EXPECT_FALSE(scheduler_.ApsIdle());
  // INIT IPI must fail while the AP runs processes.
  EXPECT_FALSE(machine_.apic()->SendInitIpi(1).ok());

  ASSERT_TRUE(scheduler_.DescheduleAps().ok());
  EXPECT_TRUE(scheduler_.ApsIdle());
  EXPECT_EQ(scheduler_.QueueDepth(0), 1u);  // Migrated to the BSP.
  EXPECT_EQ(scheduler_.QueueDepth(1), 0u);
  EXPECT_TRUE(machine_.apic()->SendInitIpi(1).ok());

  ASSERT_TRUE(scheduler_.RestoreAps().ok());
  EXPECT_EQ(machine_.cpu(1)->state, CpuState::kRunning);
}

TEST_F(OsTest, SpawnOntoParkedCpuRejected) {
  ASSERT_TRUE(scheduler_.DescheduleAps().ok());
  ASSERT_TRUE(machine_.apic()->SendInitIpi(1).ok());
  EXPECT_FALSE(scheduler_.Spawn(1, OsTask{"late", 10}).ok());
  EXPECT_FALSE(scheduler_.Spawn(7, OsTask{"bad-cpu", 10}).ok());
}

class FlickerModuleTest : public ::testing::Test {
 protected:
  FlickerModuleTest()
      : machine_(MachineConfig{}),
        kernel_(&machine_),
        scheduler_(&machine_),
        module_(&machine_, &kernel_, &scheduler_) {}

  Bytes MinimalSlb() {
    Bytes image(kSlbRegionSize, 0);
    uint16_t length = 4096;
    uint16_t entry = kSlbCodeOffset;
    image[0] = static_cast<uint8_t>(length);
    image[1] = static_cast<uint8_t>(length >> 8);
    image[2] = static_cast<uint8_t>(entry);
    image[3] = static_cast<uint8_t>(entry >> 8);
    return image;
  }

  Machine machine_;
  OsKernel kernel_;
  Scheduler scheduler_;
  FlickerModule module_;
};

TEST_F(FlickerModuleTest, RejectsBadStaging) {
  EXPECT_FALSE(module_.WriteSlb(Bytes(100, 0)).ok());          // Not 64 KB.
  EXPECT_FALSE(module_.WriteInputs(Bytes(kSlbIoPageSize, 0)).ok());
  EXPECT_EQ(module_.StartSession().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(module_.FinishSession().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FlickerModuleTest, FullStagingFlow) {
  ASSERT_TRUE(module_.WriteSlb(MinimalSlb()).ok());
  ASSERT_TRUE(module_.WriteInputs(BytesOf("input data")).ok());

  Result<SkinitLaunch> launch = module_.StartSession();
  ASSERT_TRUE(launch.ok()) << launch.status().ToString();
  EXPECT_TRUE(machine_.in_secure_session());
  EXPECT_EQ(launch.value().slb_base, kSlbFixedBase);

  // Inputs and saved state landed on their pages.
  EXPECT_EQ(ReadIoPage(*machine_.memory(), kSlbFixedBase + kSlbInputsOffset).value(),
            BytesOf("input data"));
  Bytes saved = ReadIoPage(*machine_.memory(), kSlbFixedBase + kSlbSavedStateOffset).value();
  ASSERT_EQ(saved.size(), 8u);
  EXPECT_EQ(GetUint64(saved, 0), kernel_.cr3());

  // Simulate the SLB core's resume, then teardown.
  ASSERT_TRUE(WriteIoPage(machine_.memory(), kSlbFixedBase + kSlbOutputsOffset,
                          BytesOf("output data"))
                  .ok());
  ASSERT_TRUE(machine_.ExitSecureMode(0, kernel_.cr3()).ok());
  ASSERT_TRUE(module_.FinishSession().ok());
  EXPECT_EQ(module_.ReadOutputs().value(), BytesOf("output data"));
  EXPECT_EQ(machine_.cpu(1)->state, CpuState::kRunning);
}

TEST_F(FlickerModuleTest, SkinitFailureRollsBackSuspension) {
  Bytes bad = MinimalSlb();
  bad[0] = 2;  // Length below header size.
  bad[1] = 0;
  ASSERT_TRUE(module_.WriteSlb(bad).ok());
  Result<SkinitLaunch> launch = module_.StartSession();
  ASSERT_FALSE(launch.ok());
  EXPECT_FALSE(machine_.in_secure_session());
  EXPECT_EQ(machine_.cpu(1)->state, CpuState::kRunning);  // APs restored.
}

TEST(BlockCopyTest, NoDataLossDuringSessions) {
  // §7.5: 1 GB copy while 8.3 s sessions run back to back with 37 ms OS
  // windows. Integrity must hold (digests equal), with zero I/O errors.
  BlockCopyParams params;
  params.total_bytes = 64ULL * 1024 * 1024;  // Scaled for test speed.
  BlockCopyReport report = SimulateBlockCopyDuringSessions(params);

  EXPECT_EQ(report.io_errors, 0u);
  EXPECT_EQ(report.bytes_delivered, params.total_bytes);
  EXPECT_EQ(report.source_digest, report.delivered_digest);
  EXPECT_GT(report.stall_events, 0u);  // The ring did fill up.
  EXPECT_GT(report.elapsed_ms, 0.0);
}

TEST(BlockCopyTest, NoSessionsNoStalls) {
  BlockCopyParams params;
  params.total_bytes = 8ULL * 1024 * 1024;
  params.session_ms = 0.0;
  params.os_window_ms = 1000.0;
  BlockCopyReport report = SimulateBlockCopyDuringSessions(params);
  EXPECT_EQ(report.stall_events, 0u);
  EXPECT_DOUBLE_EQ(report.stall_ms, 0.0);
  EXPECT_EQ(report.source_digest, report.delivered_digest);
}

TEST(BlockCopyTest, BiggerRingFewerStalls) {
  BlockCopyParams small;
  small.total_bytes = 32ULL * 1024 * 1024;
  small.ring_capacity_bytes = 1 * 1024 * 1024;
  BlockCopyParams big = small;
  big.ring_capacity_bytes = 16 * 1024 * 1024;
  EXPECT_GE(SimulateBlockCopyDuringSessions(small).stall_events,
            SimulateBlockCopyDuringSessions(big).stall_events);
}

TEST(TqdTest, QuoteWhileOsRuns) {
  Machine machine{MachineConfig{}};
  TpmQuoteDaemon tqd(&machine);
  Result<AttestationResponse> response =
      tqd.HandleChallenge(Bytes(20, 7), PcrSelection({kSkinitPcr}));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().quote.nonce, Bytes(20, 7));
  EXPECT_EQ(response.value().aik_public, machine.tpm()->aik_public().Serialize());
}

TEST(TqdTest, RefusesWhileSuspended) {
  Machine machine{MachineConfig{}};
  // Enter a session manually.
  Bytes image(kSlbRegionSize, 0);
  image[0] = 0x00;
  image[1] = 0x10;  // length 4096
  image[2] = 0x9c;
  image[3] = 0x00;  // entry 156
  ASSERT_TRUE(machine.memory()->Write(0x100000, image).ok());
  for (int i = 1; i < machine.num_cpus(); ++i) {
    machine.cpu(i)->state = CpuState::kIdle;
    ASSERT_TRUE(machine.apic()->SendInitIpi(i).ok());
  }
  ASSERT_TRUE(machine.Skinit(0, 0x100000).ok());

  TpmQuoteDaemon tqd(&machine);
  Result<AttestationResponse> response = tqd.HandleChallenge(Bytes(20, 7), PcrSelection({17}));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace flicker
