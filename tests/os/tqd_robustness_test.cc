// The quote daemon under a faulty TPM transport: dropped frames must be
// absorbed by the bounded retry loop (with the waiting time charged to the
// simulated clock), and an exhausted retry budget must surface as a clean
// Status rather than a crash or a hang.

#include <gtest/gtest.h>

#include "src/os/tqd.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

constexpr double kQuoteMs = 972.7;        // Table 1, Broadcom Quote.
constexpr double kDropTimeoutMs = 10.0;   // Driver receive timeout per lost frame.

TEST(TqdRobustnessTest, QuoteSurvivesDroppingEveryThirdFrame) {
  Machine machine;
  // The machine's TpmClient fetched its two public keys at construction, so
  // the daemon's first quote frame is transmit #3 - the first one dropped.
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kDrop;
  plan.every_n = 3;
  plan.drop_timeout_ms = kDropTimeoutMs;
  machine.tpm_transport()->set_fault_plan(plan);

  TpmQuoteDaemon tqd(&machine);
  double before = machine.clock()->NowMillis();
  Result<AttestationResponse> response =
      tqd.HandleChallenge(BytesOf("challenge"), PcrSelection({17}));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(tqd.retries(), 1u);
  EXPECT_EQ(machine.tpm_transport()->faults_injected(), 1u);

  // One burned receive timeout, one 2 ms backoff, then the full quote.
  double elapsed = machine.clock()->NowMillis() - before;
  EXPECT_NEAR(elapsed, kDropTimeoutMs + 2.0 + kQuoteMs, 0.01);
  EXPECT_FALSE(response.value().quote.signature.empty());
  EXPECT_FALSE(response.value().aik_public.empty());
}

TEST(TqdRobustnessTest, ExhaustedRetryBudgetReturnsCleanUnavailable) {
  Machine machine;
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kDrop;
  plan.every_n = 1;  // Every frame lost: the budget cannot save us.
  plan.drop_timeout_ms = kDropTimeoutMs;
  machine.tpm_transport()->set_fault_plan(plan);

  TpmQuoteDaemon tqd(&machine);
  double before = machine.clock()->NowMillis();
  Result<AttestationResponse> response =
      tqd.HandleChallenge(BytesOf("challenge"), PcrSelection({17}));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(tqd.retries(), 3u);  // max_attempts - 1 with the default config.

  // Four burned timeouts plus the doubling backoffs (2 + 4 + 8 ms); the
  // quote itself never ran, so its latency is never charged.
  double elapsed = machine.clock()->NowMillis() - before;
  EXPECT_NEAR(elapsed, 4 * kDropTimeoutMs + 2.0 + 4.0 + 8.0, 0.01);
}

TEST(TqdRobustnessTest, PermanentErrorsAreNotRetried) {
  Machine machine;
  TpmQuoteDaemon tqd(&machine);
  // An empty selection is a permanent argument error: surfaced immediately,
  // no retries, no backoff charged.
  Result<AttestationResponse> response =
      tqd.HandleChallenge(BytesOf("challenge"), PcrSelection());
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(tqd.retries(), 0u);
}

TEST(TqdRobustnessTest, TighterBudgetFailsCleanlyUnderTheSameLossRate) {
  Machine machine;
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kDrop;
  plan.every_n = 3;
  plan.drop_timeout_ms = kDropTimeoutMs;
  machine.tpm_transport()->set_fault_plan(plan);

  // A single-attempt daemon meets the same dropped first frame but has no
  // retries to absorb it.
  TpmQuoteDaemon tqd(&machine, TqdConfig{.max_attempts = 1});
  Result<AttestationResponse> response =
      tqd.HandleChallenge(BytesOf("challenge"), PcrSelection({17}));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(tqd.retries(), 0u);
}

}  // namespace
}  // namespace flicker
