// The simulated SVM platform: SKINIT preconditions and effects, DEV/DMA
// blocking, timing calibration, APIC handshakes, reboot semantics.

#include "src/hw/machine.h"

#include <gtest/gtest.h>

#include "src/crypto/sha1.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

// Builds a minimal raw SLB image: header (length, entry) + filler code.
Bytes RawSlb(uint16_t length, uint16_t entry) {
  Bytes image(kSlbRegionSize, 0);
  image[0] = static_cast<uint8_t>(length);
  image[1] = static_cast<uint8_t>(length >> 8);
  image[2] = static_cast<uint8_t>(entry);
  image[3] = static_cast<uint8_t>(entry >> 8);
  for (size_t i = 4; i < length; ++i) {
    image[i] = static_cast<uint8_t>(i * 31);
  }
  return image;
}

constexpr uint64_t kBase = 0x100000;

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : machine_(MachineConfig{}) {}

  void StageSlb(const Bytes& image) {
    ASSERT_TRUE(machine_.memory()->Write(kBase, image).ok());
  }

  void ParkAps() {
    for (int i = 1; i < machine_.num_cpus(); ++i) {
      machine_.cpu(i)->state = CpuState::kIdle;
      ASSERT_TRUE(machine_.apic()->SendInitIpi(i).ok());
    }
  }

  Machine machine_;
};

TEST_F(MachineTest, SkinitHappyPath) {
  StageSlb(RawSlb(4096, 156));
  ParkAps();
  Result<SkinitLaunch> launch = machine_.Skinit(0, kBase);
  ASSERT_TRUE(launch.ok()) << launch.status().ToString();
  EXPECT_EQ(launch.value().slb_length, 4096);
  EXPECT_EQ(launch.value().entry_point, 156);
  EXPECT_TRUE(machine_.in_secure_session());

  // Hardware protections engaged.
  EXPECT_FALSE(machine_.bsp()->interrupts_enabled);
  EXPECT_FALSE(machine_.bsp()->debug_access_enabled);
  EXPECT_FALSE(machine_.bsp()->paging_enabled);
  EXPECT_TRUE(machine_.dev()->Blocks(kBase, 1));
  EXPECT_TRUE(machine_.dev()->Blocks(kBase + kSlbRegionSize - 1, 1));
  EXPECT_FALSE(machine_.dev()->Blocks(kBase + kSlbRegionSize, 1));

  // PCR 17 holds H(0^20 || H(SLB prefix)).
  Bytes slb_bytes = machine_.memory()->Read(kBase, 4096).value();
  EXPECT_EQ(machine_.tpm()->PcrRead(17).value(),
            ExpectedPcr17AfterSkinit(Sha1::Digest(slb_bytes)));
  EXPECT_EQ(launch.value().measurement, Sha1::Digest(slb_bytes));
}

TEST_F(MachineTest, SkinitRequiresRing0) {
  StageSlb(RawSlb(4096, 156));
  ParkAps();
  machine_.bsp()->ring = 3;
  Result<SkinitLaunch> launch = machine_.Skinit(0, kBase);
  ASSERT_FALSE(launch.ok());
  EXPECT_EQ(launch.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(MachineTest, SkinitRequiresBsp) {
  StageSlb(RawSlb(4096, 156));
  ParkAps();
  Result<SkinitLaunch> launch = machine_.Skinit(1, kBase);
  ASSERT_FALSE(launch.ok());
  EXPECT_EQ(launch.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MachineTest, SkinitRequiresParkedAps) {
  StageSlb(RawSlb(4096, 156));
  // APs still running: the INIT handshake cannot complete.
  Result<SkinitLaunch> launch = machine_.Skinit(0, kBase);
  ASSERT_FALSE(launch.ok());
  EXPECT_EQ(launch.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MachineTest, SkinitRejectsMalformedHeaders) {
  ParkAps();
  StageSlb(RawSlb(2, 0));  // Length smaller than the header itself.
  EXPECT_FALSE(machine_.Skinit(0, kBase).ok());
  StageSlb(RawSlb(4096, 5000));  // Entry beyond length.
  EXPECT_FALSE(machine_.Skinit(0, kBase).ok());
}

TEST_F(MachineTest, SkinitRejectsOutOfBoundsRegion) {
  ParkAps();
  EXPECT_FALSE(machine_.Skinit(0, machine_.memory()->size() - 100).ok());
  EXPECT_FALSE(machine_.Skinit(5, kBase).ok());  // Bad CPU index.
}

TEST_F(MachineTest, SkinitRejectsNestedSession) {
  StageSlb(RawSlb(4096, 156));
  ParkAps();
  ASSERT_TRUE(machine_.Skinit(0, kBase).ok());
  Result<SkinitLaunch> second = machine_.Skinit(0, kBase);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MachineTest, SkinitTimingMatchesTable2) {
  // Table 2: SLB sizes 4/16/32/64 KB -> 11.9/45.0/89.2/177.5 ms. Our model
  // is cpu_setup + 2.76 ms/KB; verify the linear shape within ~15%.
  struct Row {
    uint16_t kb;
    double paper_ms;
  };
  for (const Row& row : {Row{4, 11.9}, Row{16, 45.0}, Row{32, 89.2}}) {
    Machine machine{MachineConfig{}};
    Bytes image = RawSlb(static_cast<uint16_t>(row.kb * 1024), 156);
    ASSERT_TRUE(machine.memory()->Write(kBase, image).ok());
    for (int i = 1; i < machine.num_cpus(); ++i) {
      machine.cpu(i)->state = CpuState::kIdle;
      ASSERT_TRUE(machine.apic()->SendInitIpi(i).ok());
    }
    double before = machine.clock()->NowMillis();
    ASSERT_TRUE(machine.Skinit(0, kBase).ok());
    double elapsed = machine.clock()->NowMillis() - before;
    EXPECT_NEAR(elapsed, row.paper_ms, row.paper_ms * 0.15) << row.kb << " KB";
  }
}

TEST_F(MachineTest, DmaBlockedInsideSlbDuringSession) {
  StageSlb(RawSlb(4096, 156));
  ParkAps();
  ASSERT_TRUE(machine_.Skinit(0, kBase).ok());

  // A malicious DMA device tries to overwrite PAL code: the DEV blocks it.
  Status write = machine_.DmaWrite(kBase + 200, Bytes(16, 0xee));
  EXPECT_EQ(write.code(), StatusCode::kPermissionDenied);
  Result<Bytes> read = machine_.DmaRead(kBase + 200, 16);
  EXPECT_EQ(read.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(machine_.dma_blocked_count(), 2u);

  // DMA elsewhere still works (devices keep running, §7.5).
  EXPECT_TRUE(machine_.DmaWrite(0x800000, Bytes(16, 0x11)).ok());
}

TEST_F(MachineTest, ExitSecureModeRestoresPlatform) {
  StageSlb(RawSlb(4096, 156));
  ParkAps();
  ASSERT_TRUE(machine_.Skinit(0, kBase).ok());
  ASSERT_TRUE(machine_.ExitSecureMode(0, 0x2000).ok());

  EXPECT_FALSE(machine_.in_secure_session());
  EXPECT_TRUE(machine_.bsp()->interrupts_enabled);
  EXPECT_TRUE(machine_.bsp()->paging_enabled);
  EXPECT_TRUE(machine_.bsp()->debug_access_enabled);
  EXPECT_EQ(machine_.bsp()->cr3, 0x2000u);
  EXPECT_FALSE(machine_.dev()->Blocks(kBase, kSlbRegionSize));
  EXPECT_EQ(machine_.tpm()->locality(), 0);

  // DMA into the former SLB region is allowed again.
  EXPECT_TRUE(machine_.DmaWrite(kBase + 200, Bytes(4, 1)).ok());
}

TEST_F(MachineTest, ExitSecureModeWithoutSessionFails) {
  EXPECT_EQ(machine_.ExitSecureMode(0, 0).code(), StatusCode::kFailedPrecondition);
}

TEST_F(MachineTest, RebootResetsEverything) {
  StageSlb(RawSlb(4096, 156));
  ParkAps();
  ASSERT_TRUE(machine_.Skinit(0, kBase).ok());
  machine_.Reboot();

  EXPECT_FALSE(machine_.in_secure_session());
  EXPECT_FALSE(machine_.dev()->Blocks(kBase, 1));
  // Dynamic PCRs back to -1: reboot is distinguishable from SKINIT reset.
  EXPECT_EQ(machine_.tpm()->PcrRead(17).value(), Bytes(kPcrSize, 0xff));
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    EXPECT_EQ(machine_.cpu(i)->state, CpuState::kRunning);
  }
}

TEST_F(MachineTest, ApicRejectsBadIpis) {
  EXPECT_FALSE(machine_.apic()->SendInitIpi(0).ok());   // BSP.
  EXPECT_FALSE(machine_.apic()->SendInitIpi(9).ok());   // Out of range.
  EXPECT_FALSE(machine_.apic()->SendInitIpi(1).ok());   // Still running.
  machine_.cpu(1)->state = CpuState::kIdle;
  EXPECT_TRUE(machine_.apic()->SendInitIpi(1).ok());
  EXPECT_EQ(machine_.cpu(1)->state, CpuState::kInit);
  EXPECT_TRUE(machine_.apic()->SendStartupIpi(1).ok());
  EXPECT_EQ(machine_.cpu(1)->state, CpuState::kRunning);
}

TEST(SegmentStateTest, ContainsChecksBounds) {
  SegmentState segment{0x1000, 0xfff};  // [0x1000, 0x2000).
  EXPECT_TRUE(segment.Contains(0x1000, 1));
  EXPECT_TRUE(segment.Contains(0x1fff, 1));
  EXPECT_TRUE(segment.Contains(0x1000, 0x1000));
  EXPECT_FALSE(segment.Contains(0x0fff, 1));
  EXPECT_FALSE(segment.Contains(0x2000, 1));
  EXPECT_FALSE(segment.Contains(0x1fff, 2));
}

TEST(PhysicalMemoryTest, BoundsChecking) {
  PhysicalMemory memory(1024);
  EXPECT_TRUE(memory.Write(0, Bytes(1024, 1)).ok());
  EXPECT_FALSE(memory.Write(1, Bytes(1024, 1)).ok());
  EXPECT_TRUE(memory.Read(1000, 24).ok());
  EXPECT_FALSE(memory.Read(1000, 25).ok());
  EXPECT_TRUE(memory.Erase(0, 1024).ok());
  EXPECT_FALSE(memory.Erase(1024, 1).ok());
  EXPECT_EQ(memory.Read(0, 4).value(), Bytes(4, 0));
}

TEST(DevTest, OverlapSemantics) {
  DeviceExclusionVector dev;
  dev.Protect(100, 50);
  EXPECT_TRUE(dev.Blocks(100, 1));
  EXPECT_TRUE(dev.Blocks(149, 1));
  EXPECT_TRUE(dev.Blocks(90, 20));
  EXPECT_TRUE(dev.Blocks(140, 20));
  EXPECT_FALSE(dev.Blocks(150, 10));
  EXPECT_FALSE(dev.Blocks(50, 50));
  dev.Unprotect(100, 50);
  EXPECT_FALSE(dev.Blocks(100, 1));
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.AdvanceMillis(1.5);
  EXPECT_EQ(clock.NowMicros(), 1500u);
  clock.AdvanceMicros(500);
  EXPECT_DOUBLE_EQ(clock.NowMillis(), 2.0);
  SimStopwatch watch(&clock);
  clock.AdvanceMillis(10);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 10.0);
  clock.AdvanceMillis(-5);  // Negative advances are ignored.
  EXPECT_DOUBLE_EQ(clock.NowMillis(), 12.0);
}

}  // namespace
}  // namespace flicker
