// Parameterized timing-calibration sweeps: the cost model must reproduce
// the paper's measured latencies across SLB sizes and TPM profiles.

#include <tuple>

#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/tpm/pcr_bank.h"

namespace flicker {
namespace {

// ---- Table 2 rows as parameters: (slb_kb, paper_ms) ----

class SkinitSweepTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SkinitSweepTest, MatchesPaperWithin15Percent) {
  auto [kb, paper_ms] = GetParam();
  Machine machine{MachineConfig{}};
  uint16_t length = static_cast<uint16_t>(kb * 1024);
  Bytes image(kSlbRegionSize, 0);
  image[0] = static_cast<uint8_t>(length);
  image[1] = static_cast<uint8_t>(length >> 8);
  ASSERT_TRUE(machine.memory()->Write(0x100000, image).ok());
  for (int i = 1; i < machine.num_cpus(); ++i) {
    machine.cpu(i)->state = CpuState::kIdle;
    ASSERT_TRUE(machine.apic()->SendInitIpi(i).ok());
  }
  double before = machine.clock()->NowMillis();
  ASSERT_TRUE(machine.Skinit(0, 0x100000).ok());
  double measured = machine.clock()->NowMillis() - before;
  EXPECT_NEAR(measured, paper_ms, paper_ms * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Table2Rows, SkinitSweepTest,
                         ::testing::Values(std::make_tuple(4, 11.9), std::make_tuple(16, 45.0),
                                           std::make_tuple(32, 89.2)));

// ---- TPM command costs per profile ----

struct ProfileCase {
  const char* name;
  TpmTimingProfile profile;
  double quote_ms;
  double unseal_ms;
};

class TpmProfileTest : public ::testing::TestWithParam<int> {
 protected:
  static ProfileCase Case(int index) {
    if (index == 0) {
      return {"broadcom", BroadcomBcm0102Profile(), 972.7, 898.3};
    }
    if (index == 1) {
      return {"infineon", InfineonProfile(), 331.0, 391.0};
    }
    return {"nextgen", NextGenHardwareProfile(), 1.0, 0.001};
  }
};

TEST_P(TpmProfileTest, QuoteCostMatchesProfile) {
  ProfileCase test_case = Case(GetParam());
  SimClock clock;
  Tpm tpm(&clock, test_case.profile);
  double before = clock.NowMillis();
  ASSERT_TRUE(tpm.Quote(Bytes(20, 1), PcrSelection({17})).ok());
  EXPECT_NEAR(clock.NowMillis() - before, test_case.quote_ms, test_case.quote_ms * 0.01 + 0.001);
}

TEST_P(TpmProfileTest, ProfilesArePositiveAndOrdered) {
  ProfileCase test_case = Case(GetParam());
  EXPECT_GT(test_case.profile.quote_ms, 0.0);
  EXPECT_GT(test_case.profile.unseal_ms, 0.0);
  EXPECT_GT(test_case.profile.skinit_transfer_ms_per_kb, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Profiles, TpmProfileTest, ::testing::Values(0, 1, 2));

// ---- SKINIT cost model linearity ----

class SkinitLinearityTest : public ::testing::TestWithParam<int> {};

TEST_P(SkinitLinearityTest, CostIsAffineInSize) {
  TimingModel timing = DefaultTimingModel();
  int kb = GetParam();
  double cost_n = timing.SkinitMillis(static_cast<size_t>(kb) * 1024);
  double cost_2n = timing.SkinitMillis(static_cast<size_t>(kb) * 2048);
  // Affine: cost(2n) - cost(n) == cost(n) - cost(0).
  EXPECT_NEAR(cost_2n - cost_n, cost_n - timing.SkinitMillis(0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkinitLinearityTest, ::testing::Values(1, 4, 16, 32));

// ---- The next-generation hardware claim ([19]) ----

TEST(NextGenTest, OrdersOfMagnitudeFaster) {
  TimingModel old_hw = DefaultTimingModel();
  TimingModel new_hw = NextGenTimingModel();
  // Seal/unseal-equivalents improve by >= 5 orders of magnitude.
  EXPECT_GE(old_hw.tpm.unseal_ms / new_hw.tpm.unseal_ms, 1e5);
  // Late launch improves by >= 3 orders of magnitude at 64 KB.
  EXPECT_GE(old_hw.SkinitMillis(64 * 1024) / new_hw.SkinitMillis(64 * 1024), 1e3);
}

}  // namespace
}  // namespace flicker
