# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rootkit_detector "/root/repo/build/examples/rootkit_detector")
set_tests_properties(example_rootkit_detector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ssh_login "/root/repo/build/examples/ssh_login")
set_tests_properties(example_ssh_login PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_certificate_authority "/root/repo/build/examples/certificate_authority")
set_tests_properties(example_certificate_authority PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_factoring "/root/repo/build/examples/distributed_factoring")
set_tests_properties(example_distributed_factoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attestation_tour "/root/repo/build/examples/attestation_tour")
set_tests_properties(example_attestation_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
