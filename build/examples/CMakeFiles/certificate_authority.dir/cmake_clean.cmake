file(REMOVE_RECURSE
  "CMakeFiles/certificate_authority.dir/certificate_authority.cpp.o"
  "CMakeFiles/certificate_authority.dir/certificate_authority.cpp.o.d"
  "certificate_authority"
  "certificate_authority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certificate_authority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
