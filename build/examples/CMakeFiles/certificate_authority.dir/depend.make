# Empty dependencies file for certificate_authority.
# This may be replaced when dependencies are built.
