file(REMOVE_RECURSE
  "CMakeFiles/rootkit_detector.dir/rootkit_detector.cpp.o"
  "CMakeFiles/rootkit_detector.dir/rootkit_detector.cpp.o.d"
  "rootkit_detector"
  "rootkit_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootkit_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
