# Empty dependencies file for rootkit_detector.
# This may be replaced when dependencies are built.
