file(REMOVE_RECURSE
  "CMakeFiles/ssh_login.dir/ssh_login.cpp.o"
  "CMakeFiles/ssh_login.dir/ssh_login.cpp.o.d"
  "ssh_login"
  "ssh_login.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssh_login.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
