# Empty compiler generated dependencies file for ssh_login.
# This may be replaced when dependencies are built.
