file(REMOVE_RECURSE
  "CMakeFiles/attestation_tour.dir/attestation_tour.cpp.o"
  "CMakeFiles/attestation_tour.dir/attestation_tour.cpp.o.d"
  "attestation_tour"
  "attestation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attestation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
