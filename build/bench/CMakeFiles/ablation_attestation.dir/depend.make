# Empty dependencies file for ablation_attestation.
# This may be replaced when dependencies are built.
