file(REMOVE_RECURSE
  "CMakeFiles/ablation_attestation.dir/ablation_attestation.cc.o"
  "CMakeFiles/ablation_attestation.dir/ablation_attestation.cc.o.d"
  "ablation_attestation"
  "ablation_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
