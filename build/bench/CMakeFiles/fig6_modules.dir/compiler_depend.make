# Empty compiler generated dependencies file for fig6_modules.
# This may be replaced when dependencies are built.
