file(REMOVE_RECURSE
  "CMakeFiles/fig6_modules.dir/fig6_modules.cc.o"
  "CMakeFiles/fig6_modules.dir/fig6_modules.cc.o.d"
  "fig6_modules"
  "fig6_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
