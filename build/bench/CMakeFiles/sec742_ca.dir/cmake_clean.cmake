file(REMOVE_RECURSE
  "CMakeFiles/sec742_ca.dir/sec742_ca.cc.o"
  "CMakeFiles/sec742_ca.dir/sec742_ca.cc.o.d"
  "sec742_ca"
  "sec742_ca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec742_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
