# Empty compiler generated dependencies file for sec742_ca.
# This may be replaced when dependencies are built.
