file(REMOVE_RECURSE
  "CMakeFiles/table1_rootkit.dir/table1_rootkit.cc.o"
  "CMakeFiles/table1_rootkit.dir/table1_rootkit.cc.o.d"
  "table1_rootkit"
  "table1_rootkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rootkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
