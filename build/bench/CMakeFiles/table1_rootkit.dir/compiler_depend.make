# Empty compiler generated dependencies file for table1_rootkit.
# This may be replaced when dependencies are built.
