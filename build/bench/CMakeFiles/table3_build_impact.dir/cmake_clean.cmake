file(REMOVE_RECURSE
  "CMakeFiles/table3_build_impact.dir/table3_build_impact.cc.o"
  "CMakeFiles/table3_build_impact.dir/table3_build_impact.cc.o.d"
  "table3_build_impact"
  "table3_build_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_build_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
