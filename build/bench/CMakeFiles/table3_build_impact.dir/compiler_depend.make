# Empty compiler generated dependencies file for table3_build_impact.
# This may be replaced when dependencies are built.
