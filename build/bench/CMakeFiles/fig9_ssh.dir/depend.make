# Empty dependencies file for fig9_ssh.
# This may be replaced when dependencies are built.
