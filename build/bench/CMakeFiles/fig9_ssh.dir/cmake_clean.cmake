file(REMOVE_RECURSE
  "CMakeFiles/fig9_ssh.dir/fig9_ssh.cc.o"
  "CMakeFiles/fig9_ssh.dir/fig9_ssh.cc.o.d"
  "fig9_ssh"
  "fig9_ssh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ssh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
