file(REMOVE_RECURSE
  "CMakeFiles/fig8_efficiency.dir/fig8_efficiency.cc.o"
  "CMakeFiles/fig8_efficiency.dir/fig8_efficiency.cc.o.d"
  "fig8_efficiency"
  "fig8_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
