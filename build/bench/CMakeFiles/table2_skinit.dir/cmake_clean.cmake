file(REMOVE_RECURSE
  "CMakeFiles/table2_skinit.dir/table2_skinit.cc.o"
  "CMakeFiles/table2_skinit.dir/table2_skinit.cc.o.d"
  "table2_skinit"
  "table2_skinit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_skinit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
