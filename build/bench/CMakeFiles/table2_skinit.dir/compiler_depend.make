# Empty compiler generated dependencies file for table2_skinit.
# This may be replaced when dependencies are built.
