file(REMOVE_RECURSE
  "CMakeFiles/ablation_interactivity.dir/ablation_interactivity.cc.o"
  "CMakeFiles/ablation_interactivity.dir/ablation_interactivity.cc.o.d"
  "ablation_interactivity"
  "ablation_interactivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interactivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
