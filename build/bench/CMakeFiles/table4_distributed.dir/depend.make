# Empty dependencies file for table4_distributed.
# This may be replaced when dependencies are built.
