file(REMOVE_RECURSE
  "CMakeFiles/table4_distributed.dir/table4_distributed.cc.o"
  "CMakeFiles/table4_distributed.dir/table4_distributed.cc.o.d"
  "table4_distributed"
  "table4_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
