# Empty dependencies file for sec75_device_io.
# This may be replaced when dependencies are built.
