
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sec75_device_io.cc" "bench/CMakeFiles/sec75_device_io.dir/sec75_device_io.cc.o" "gcc" "bench/CMakeFiles/sec75_device_io.dir/sec75_device_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/flicker_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/flicker_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attest/CMakeFiles/flicker_attest.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flicker_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/flicker_os.dir/DependInfo.cmake"
  "/root/repo/build/src/slb/CMakeFiles/flicker_slb.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flicker_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/flicker_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/flicker_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flicker_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
