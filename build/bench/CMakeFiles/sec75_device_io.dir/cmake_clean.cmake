file(REMOVE_RECURSE
  "CMakeFiles/sec75_device_io.dir/sec75_device_io.cc.o"
  "CMakeFiles/sec75_device_io.dir/sec75_device_io.cc.o.d"
  "sec75_device_io"
  "sec75_device_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec75_device_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
