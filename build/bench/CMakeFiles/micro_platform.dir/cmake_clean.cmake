file(REMOVE_RECURSE
  "CMakeFiles/micro_platform.dir/micro_platform.cc.o"
  "CMakeFiles/micro_platform.dir/micro_platform.cc.o.d"
  "micro_platform"
  "micro_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
