# Empty compiler generated dependencies file for micro_platform.
# This may be replaced when dependencies are built.
