# Empty dependencies file for flicker_tpm.
# This may be replaced when dependencies are built.
