file(REMOVE_RECURSE
  "CMakeFiles/flicker_tpm.dir/pcr_bank.cc.o"
  "CMakeFiles/flicker_tpm.dir/pcr_bank.cc.o.d"
  "CMakeFiles/flicker_tpm.dir/tpm.cc.o"
  "CMakeFiles/flicker_tpm.dir/tpm.cc.o.d"
  "CMakeFiles/flicker_tpm.dir/tpm_util.cc.o"
  "CMakeFiles/flicker_tpm.dir/tpm_util.cc.o.d"
  "libflicker_tpm.a"
  "libflicker_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
