
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpm/pcr_bank.cc" "src/tpm/CMakeFiles/flicker_tpm.dir/pcr_bank.cc.o" "gcc" "src/tpm/CMakeFiles/flicker_tpm.dir/pcr_bank.cc.o.d"
  "/root/repo/src/tpm/tpm.cc" "src/tpm/CMakeFiles/flicker_tpm.dir/tpm.cc.o" "gcc" "src/tpm/CMakeFiles/flicker_tpm.dir/tpm.cc.o.d"
  "/root/repo/src/tpm/tpm_util.cc" "src/tpm/CMakeFiles/flicker_tpm.dir/tpm_util.cc.o" "gcc" "src/tpm/CMakeFiles/flicker_tpm.dir/tpm_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/flicker_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flicker_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
