file(REMOVE_RECURSE
  "libflicker_tpm.a"
)
