# Empty compiler generated dependencies file for flicker_common.
# This may be replaced when dependencies are built.
