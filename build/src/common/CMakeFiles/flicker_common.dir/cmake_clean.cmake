file(REMOVE_RECURSE
  "CMakeFiles/flicker_common.dir/bytes.cc.o"
  "CMakeFiles/flicker_common.dir/bytes.cc.o.d"
  "CMakeFiles/flicker_common.dir/status.cc.o"
  "CMakeFiles/flicker_common.dir/status.cc.o.d"
  "libflicker_common.a"
  "libflicker_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
