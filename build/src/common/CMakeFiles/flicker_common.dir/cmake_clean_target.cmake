file(REMOVE_RECURSE
  "libflicker_common.a"
)
