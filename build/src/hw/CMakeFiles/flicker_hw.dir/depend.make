# Empty dependencies file for flicker_hw.
# This may be replaced when dependencies are built.
