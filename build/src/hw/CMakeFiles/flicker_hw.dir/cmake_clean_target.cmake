file(REMOVE_RECURSE
  "libflicker_hw.a"
)
