file(REMOVE_RECURSE
  "CMakeFiles/flicker_hw.dir/cpu.cc.o"
  "CMakeFiles/flicker_hw.dir/cpu.cc.o.d"
  "CMakeFiles/flicker_hw.dir/machine.cc.o"
  "CMakeFiles/flicker_hw.dir/machine.cc.o.d"
  "CMakeFiles/flicker_hw.dir/memory.cc.o"
  "CMakeFiles/flicker_hw.dir/memory.cc.o.d"
  "libflicker_hw.a"
  "libflicker_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
