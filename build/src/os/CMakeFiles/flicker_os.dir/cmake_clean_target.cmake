file(REMOVE_RECURSE
  "libflicker_os.a"
)
