file(REMOVE_RECURSE
  "CMakeFiles/flicker_os.dir/devices.cc.o"
  "CMakeFiles/flicker_os.dir/devices.cc.o.d"
  "CMakeFiles/flicker_os.dir/flicker_module.cc.o"
  "CMakeFiles/flicker_os.dir/flicker_module.cc.o.d"
  "CMakeFiles/flicker_os.dir/interactivity.cc.o"
  "CMakeFiles/flicker_os.dir/interactivity.cc.o.d"
  "CMakeFiles/flicker_os.dir/kernel.cc.o"
  "CMakeFiles/flicker_os.dir/kernel.cc.o.d"
  "CMakeFiles/flicker_os.dir/scheduler.cc.o"
  "CMakeFiles/flicker_os.dir/scheduler.cc.o.d"
  "CMakeFiles/flicker_os.dir/tqd.cc.o"
  "CMakeFiles/flicker_os.dir/tqd.cc.o.d"
  "libflicker_os.a"
  "libflicker_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
