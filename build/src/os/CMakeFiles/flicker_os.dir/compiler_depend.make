# Empty compiler generated dependencies file for flicker_os.
# This may be replaced when dependencies are built.
