
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/devices.cc" "src/os/CMakeFiles/flicker_os.dir/devices.cc.o" "gcc" "src/os/CMakeFiles/flicker_os.dir/devices.cc.o.d"
  "/root/repo/src/os/flicker_module.cc" "src/os/CMakeFiles/flicker_os.dir/flicker_module.cc.o" "gcc" "src/os/CMakeFiles/flicker_os.dir/flicker_module.cc.o.d"
  "/root/repo/src/os/interactivity.cc" "src/os/CMakeFiles/flicker_os.dir/interactivity.cc.o" "gcc" "src/os/CMakeFiles/flicker_os.dir/interactivity.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/flicker_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/flicker_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/os/CMakeFiles/flicker_os.dir/scheduler.cc.o" "gcc" "src/os/CMakeFiles/flicker_os.dir/scheduler.cc.o.d"
  "/root/repo/src/os/tqd.cc" "src/os/CMakeFiles/flicker_os.dir/tqd.cc.o" "gcc" "src/os/CMakeFiles/flicker_os.dir/tqd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slb/CMakeFiles/flicker_slb.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flicker_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/flicker_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/flicker_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flicker_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
