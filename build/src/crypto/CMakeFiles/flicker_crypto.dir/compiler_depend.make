# Empty compiler generated dependencies file for flicker_crypto.
# This may be replaced when dependencies are built.
