
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/bigint.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/bigint.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/bigint.cc.o.d"
  "/root/repo/src/crypto/drbg.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/drbg.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/drbg.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/md5.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/md5.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/md5.cc.o.d"
  "/root/repo/src/crypto/md5crypt.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/md5crypt.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/md5crypt.cc.o.d"
  "/root/repo/src/crypto/rc4.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/rc4.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/rc4.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/rsa.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/rsa.cc.o.d"
  "/root/repo/src/crypto/sha1.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/sha1.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/sha1.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/sha512.cc" "src/crypto/CMakeFiles/flicker_crypto.dir/sha512.cc.o" "gcc" "src/crypto/CMakeFiles/flicker_crypto.dir/sha512.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flicker_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
