file(REMOVE_RECURSE
  "libflicker_crypto.a"
)
