file(REMOVE_RECURSE
  "CMakeFiles/flicker_crypto.dir/aes.cc.o"
  "CMakeFiles/flicker_crypto.dir/aes.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/bigint.cc.o"
  "CMakeFiles/flicker_crypto.dir/bigint.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/drbg.cc.o"
  "CMakeFiles/flicker_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/hmac.cc.o"
  "CMakeFiles/flicker_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/md5.cc.o"
  "CMakeFiles/flicker_crypto.dir/md5.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/md5crypt.cc.o"
  "CMakeFiles/flicker_crypto.dir/md5crypt.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/rc4.cc.o"
  "CMakeFiles/flicker_crypto.dir/rc4.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/rsa.cc.o"
  "CMakeFiles/flicker_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/sha1.cc.o"
  "CMakeFiles/flicker_crypto.dir/sha1.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/sha256.cc.o"
  "CMakeFiles/flicker_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/flicker_crypto.dir/sha512.cc.o"
  "CMakeFiles/flicker_crypto.dir/sha512.cc.o.d"
  "libflicker_crypto.a"
  "libflicker_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
