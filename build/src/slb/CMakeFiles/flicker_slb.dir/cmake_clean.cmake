file(REMOVE_RECURSE
  "CMakeFiles/flicker_slb.dir/extractor.cc.o"
  "CMakeFiles/flicker_slb.dir/extractor.cc.o.d"
  "CMakeFiles/flicker_slb.dir/module_registry.cc.o"
  "CMakeFiles/flicker_slb.dir/module_registry.cc.o.d"
  "CMakeFiles/flicker_slb.dir/pal.cc.o"
  "CMakeFiles/flicker_slb.dir/pal.cc.o.d"
  "CMakeFiles/flicker_slb.dir/pal_heap.cc.o"
  "CMakeFiles/flicker_slb.dir/pal_heap.cc.o.d"
  "CMakeFiles/flicker_slb.dir/slb_core.cc.o"
  "CMakeFiles/flicker_slb.dir/slb_core.cc.o.d"
  "CMakeFiles/flicker_slb.dir/slb_layout.cc.o"
  "CMakeFiles/flicker_slb.dir/slb_layout.cc.o.d"
  "libflicker_slb.a"
  "libflicker_slb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_slb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
