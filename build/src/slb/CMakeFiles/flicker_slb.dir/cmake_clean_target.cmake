file(REMOVE_RECURSE
  "libflicker_slb.a"
)
