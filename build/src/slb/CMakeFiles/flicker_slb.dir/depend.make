# Empty dependencies file for flicker_slb.
# This may be replaced when dependencies are built.
