
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slb/extractor.cc" "src/slb/CMakeFiles/flicker_slb.dir/extractor.cc.o" "gcc" "src/slb/CMakeFiles/flicker_slb.dir/extractor.cc.o.d"
  "/root/repo/src/slb/module_registry.cc" "src/slb/CMakeFiles/flicker_slb.dir/module_registry.cc.o" "gcc" "src/slb/CMakeFiles/flicker_slb.dir/module_registry.cc.o.d"
  "/root/repo/src/slb/pal.cc" "src/slb/CMakeFiles/flicker_slb.dir/pal.cc.o" "gcc" "src/slb/CMakeFiles/flicker_slb.dir/pal.cc.o.d"
  "/root/repo/src/slb/pal_heap.cc" "src/slb/CMakeFiles/flicker_slb.dir/pal_heap.cc.o" "gcc" "src/slb/CMakeFiles/flicker_slb.dir/pal_heap.cc.o.d"
  "/root/repo/src/slb/slb_core.cc" "src/slb/CMakeFiles/flicker_slb.dir/slb_core.cc.o" "gcc" "src/slb/CMakeFiles/flicker_slb.dir/slb_core.cc.o.d"
  "/root/repo/src/slb/slb_layout.cc" "src/slb/CMakeFiles/flicker_slb.dir/slb_layout.cc.o" "gcc" "src/slb/CMakeFiles/flicker_slb.dir/slb_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/flicker_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/flicker_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/flicker_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flicker_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
