file(REMOVE_RECURSE
  "CMakeFiles/flicker_attest.dir/event_log.cc.o"
  "CMakeFiles/flicker_attest.dir/event_log.cc.o.d"
  "CMakeFiles/flicker_attest.dir/ima.cc.o"
  "CMakeFiles/flicker_attest.dir/ima.cc.o.d"
  "CMakeFiles/flicker_attest.dir/oslo.cc.o"
  "CMakeFiles/flicker_attest.dir/oslo.cc.o.d"
  "CMakeFiles/flicker_attest.dir/privacy_ca.cc.o"
  "CMakeFiles/flicker_attest.dir/privacy_ca.cc.o.d"
  "CMakeFiles/flicker_attest.dir/verifier.cc.o"
  "CMakeFiles/flicker_attest.dir/verifier.cc.o.d"
  "libflicker_attest.a"
  "libflicker_attest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_attest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
