file(REMOVE_RECURSE
  "libflicker_attest.a"
)
