
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attest/event_log.cc" "src/attest/CMakeFiles/flicker_attest.dir/event_log.cc.o" "gcc" "src/attest/CMakeFiles/flicker_attest.dir/event_log.cc.o.d"
  "/root/repo/src/attest/ima.cc" "src/attest/CMakeFiles/flicker_attest.dir/ima.cc.o" "gcc" "src/attest/CMakeFiles/flicker_attest.dir/ima.cc.o.d"
  "/root/repo/src/attest/oslo.cc" "src/attest/CMakeFiles/flicker_attest.dir/oslo.cc.o" "gcc" "src/attest/CMakeFiles/flicker_attest.dir/oslo.cc.o.d"
  "/root/repo/src/attest/privacy_ca.cc" "src/attest/CMakeFiles/flicker_attest.dir/privacy_ca.cc.o" "gcc" "src/attest/CMakeFiles/flicker_attest.dir/privacy_ca.cc.o.d"
  "/root/repo/src/attest/verifier.cc" "src/attest/CMakeFiles/flicker_attest.dir/verifier.cc.o" "gcc" "src/attest/CMakeFiles/flicker_attest.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/flicker_os.dir/DependInfo.cmake"
  "/root/repo/build/src/slb/CMakeFiles/flicker_slb.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/flicker_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/flicker_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flicker_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flicker_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
