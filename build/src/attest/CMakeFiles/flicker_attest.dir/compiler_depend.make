# Empty compiler generated dependencies file for flicker_attest.
# This may be replaced when dependencies are built.
