file(REMOVE_RECURSE
  "libflicker_net.a"
)
