# Empty dependencies file for flicker_net.
# This may be replaced when dependencies are built.
