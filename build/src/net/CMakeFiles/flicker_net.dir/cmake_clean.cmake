file(REMOVE_RECURSE
  "CMakeFiles/flicker_net.dir/channel.cc.o"
  "CMakeFiles/flicker_net.dir/channel.cc.o.d"
  "libflicker_net.a"
  "libflicker_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
