file(REMOVE_RECURSE
  "libflicker_apps.a"
)
