# Empty dependencies file for flicker_apps.
# This may be replaced when dependencies are built.
