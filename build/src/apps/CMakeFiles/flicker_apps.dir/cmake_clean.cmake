file(REMOVE_RECURSE
  "CMakeFiles/flicker_apps.dir/ca.cc.o"
  "CMakeFiles/flicker_apps.dir/ca.cc.o.d"
  "CMakeFiles/flicker_apps.dir/distributed.cc.o"
  "CMakeFiles/flicker_apps.dir/distributed.cc.o.d"
  "CMakeFiles/flicker_apps.dir/rootkit_detector.cc.o"
  "CMakeFiles/flicker_apps.dir/rootkit_detector.cc.o.d"
  "CMakeFiles/flicker_apps.dir/ssh.cc.o"
  "CMakeFiles/flicker_apps.dir/ssh.cc.o.d"
  "libflicker_apps.a"
  "libflicker_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
