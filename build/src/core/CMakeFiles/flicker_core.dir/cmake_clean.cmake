file(REMOVE_RECURSE
  "CMakeFiles/flicker_core.dir/flicker_platform.cc.o"
  "CMakeFiles/flicker_core.dir/flicker_platform.cc.o.d"
  "CMakeFiles/flicker_core.dir/remote_attestation.cc.o"
  "CMakeFiles/flicker_core.dir/remote_attestation.cc.o.d"
  "CMakeFiles/flicker_core.dir/sealed_state.cc.o"
  "CMakeFiles/flicker_core.dir/sealed_state.cc.o.d"
  "CMakeFiles/flicker_core.dir/secure_channel.cc.o"
  "CMakeFiles/flicker_core.dir/secure_channel.cc.o.d"
  "libflicker_core.a"
  "libflicker_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
