# Empty compiler generated dependencies file for flicker_core.
# This may be replaced when dependencies are built.
