
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/flicker_platform.cc" "src/core/CMakeFiles/flicker_core.dir/flicker_platform.cc.o" "gcc" "src/core/CMakeFiles/flicker_core.dir/flicker_platform.cc.o.d"
  "/root/repo/src/core/remote_attestation.cc" "src/core/CMakeFiles/flicker_core.dir/remote_attestation.cc.o" "gcc" "src/core/CMakeFiles/flicker_core.dir/remote_attestation.cc.o.d"
  "/root/repo/src/core/sealed_state.cc" "src/core/CMakeFiles/flicker_core.dir/sealed_state.cc.o" "gcc" "src/core/CMakeFiles/flicker_core.dir/sealed_state.cc.o.d"
  "/root/repo/src/core/secure_channel.cc" "src/core/CMakeFiles/flicker_core.dir/secure_channel.cc.o" "gcc" "src/core/CMakeFiles/flicker_core.dir/secure_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attest/CMakeFiles/flicker_attest.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flicker_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/flicker_os.dir/DependInfo.cmake"
  "/root/repo/build/src/slb/CMakeFiles/flicker_slb.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flicker_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/flicker_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/flicker_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flicker_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
