file(REMOVE_RECURSE
  "libflicker_core.a"
)
