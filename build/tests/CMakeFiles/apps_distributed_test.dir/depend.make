# Empty dependencies file for apps_distributed_test.
# This may be replaced when dependencies are built.
