file(REMOVE_RECURSE
  "CMakeFiles/apps_distributed_test.dir/apps/distributed_test.cc.o"
  "CMakeFiles/apps_distributed_test.dir/apps/distributed_test.cc.o.d"
  "apps_distributed_test"
  "apps_distributed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
