file(REMOVE_RECURSE
  "CMakeFiles/crypto_md5crypt_test.dir/crypto/md5crypt_test.cc.o"
  "CMakeFiles/crypto_md5crypt_test.dir/crypto/md5crypt_test.cc.o.d"
  "crypto_md5crypt_test"
  "crypto_md5crypt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_md5crypt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
