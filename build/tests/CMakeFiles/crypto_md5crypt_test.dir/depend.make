# Empty dependencies file for crypto_md5crypt_test.
# This may be replaced when dependencies are built.
