file(REMOVE_RECURSE
  "CMakeFiles/tpm_tpm_test.dir/tpm/tpm_test.cc.o"
  "CMakeFiles/tpm_tpm_test.dir/tpm/tpm_test.cc.o.d"
  "tpm_tpm_test"
  "tpm_tpm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_tpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
