file(REMOVE_RECURSE
  "CMakeFiles/crypto_bigint_test.dir/crypto/bigint_test.cc.o"
  "CMakeFiles/crypto_bigint_test.dir/crypto/bigint_test.cc.o.d"
  "crypto_bigint_test"
  "crypto_bigint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
