file(REMOVE_RECURSE
  "CMakeFiles/apps_rootkit_test.dir/apps/rootkit_test.cc.o"
  "CMakeFiles/apps_rootkit_test.dir/apps/rootkit_test.cc.o.d"
  "apps_rootkit_test"
  "apps_rootkit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_rootkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
