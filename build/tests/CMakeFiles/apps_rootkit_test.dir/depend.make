# Empty dependencies file for apps_rootkit_test.
# This may be replaced when dependencies are built.
