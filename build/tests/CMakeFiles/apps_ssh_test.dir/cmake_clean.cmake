file(REMOVE_RECURSE
  "CMakeFiles/apps_ssh_test.dir/apps/ssh_test.cc.o"
  "CMakeFiles/apps_ssh_test.dir/apps/ssh_test.cc.o.d"
  "apps_ssh_test"
  "apps_ssh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_ssh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
