# Empty dependencies file for attest_oslo_test.
# This may be replaced when dependencies are built.
