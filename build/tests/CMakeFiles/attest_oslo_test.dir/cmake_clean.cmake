file(REMOVE_RECURSE
  "CMakeFiles/attest_oslo_test.dir/attest/oslo_test.cc.o"
  "CMakeFiles/attest_oslo_test.dir/attest/oslo_test.cc.o.d"
  "attest_oslo_test"
  "attest_oslo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_oslo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
