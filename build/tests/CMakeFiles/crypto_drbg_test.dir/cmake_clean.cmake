file(REMOVE_RECURSE
  "CMakeFiles/crypto_drbg_test.dir/crypto/drbg_test.cc.o"
  "CMakeFiles/crypto_drbg_test.dir/crypto/drbg_test.cc.o.d"
  "crypto_drbg_test"
  "crypto_drbg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_drbg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
