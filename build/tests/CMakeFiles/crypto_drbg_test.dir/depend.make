# Empty dependencies file for crypto_drbg_test.
# This may be replaced when dependencies are built.
