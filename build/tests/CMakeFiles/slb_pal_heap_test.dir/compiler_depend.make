# Empty compiler generated dependencies file for slb_pal_heap_test.
# This may be replaced when dependencies are built.
