file(REMOVE_RECURSE
  "CMakeFiles/slb_pal_heap_test.dir/slb/pal_heap_test.cc.o"
  "CMakeFiles/slb_pal_heap_test.dir/slb/pal_heap_test.cc.o.d"
  "slb_pal_heap_test"
  "slb_pal_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_pal_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
