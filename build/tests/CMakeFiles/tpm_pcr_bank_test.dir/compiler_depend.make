# Empty compiler generated dependencies file for tpm_pcr_bank_test.
# This may be replaced when dependencies are built.
