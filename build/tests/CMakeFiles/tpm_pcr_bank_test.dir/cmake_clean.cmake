file(REMOVE_RECURSE
  "CMakeFiles/tpm_pcr_bank_test.dir/tpm/pcr_bank_test.cc.o"
  "CMakeFiles/tpm_pcr_bank_test.dir/tpm/pcr_bank_test.cc.o.d"
  "tpm_pcr_bank_test"
  "tpm_pcr_bank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_pcr_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
