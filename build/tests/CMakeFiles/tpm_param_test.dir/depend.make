# Empty dependencies file for tpm_param_test.
# This may be replaced when dependencies are built.
