file(REMOVE_RECURSE
  "CMakeFiles/tpm_param_test.dir/tpm/tpm_param_test.cc.o"
  "CMakeFiles/tpm_param_test.dir/tpm/tpm_param_test.cc.o.d"
  "tpm_param_test"
  "tpm_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
