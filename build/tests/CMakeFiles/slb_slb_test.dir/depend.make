# Empty dependencies file for slb_slb_test.
# This may be replaced when dependencies are built.
