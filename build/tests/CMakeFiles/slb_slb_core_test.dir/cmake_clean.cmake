file(REMOVE_RECURSE
  "CMakeFiles/slb_slb_core_test.dir/slb/slb_core_test.cc.o"
  "CMakeFiles/slb_slb_core_test.dir/slb/slb_core_test.cc.o.d"
  "slb_slb_core_test"
  "slb_slb_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_slb_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
