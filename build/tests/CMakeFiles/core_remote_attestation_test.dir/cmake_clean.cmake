file(REMOVE_RECURSE
  "CMakeFiles/core_remote_attestation_test.dir/core/remote_attestation_test.cc.o"
  "CMakeFiles/core_remote_attestation_test.dir/core/remote_attestation_test.cc.o.d"
  "core_remote_attestation_test"
  "core_remote_attestation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_remote_attestation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
