# Empty dependencies file for core_remote_attestation_test.
# This may be replaced when dependencies are built.
