file(REMOVE_RECURSE
  "CMakeFiles/os_interactivity_test.dir/os/interactivity_test.cc.o"
  "CMakeFiles/os_interactivity_test.dir/os/interactivity_test.cc.o.d"
  "os_interactivity_test"
  "os_interactivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_interactivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
