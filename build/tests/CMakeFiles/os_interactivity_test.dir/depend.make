# Empty dependencies file for os_interactivity_test.
# This may be replaced when dependencies are built.
