# Empty dependencies file for attest_event_log_test.
# This may be replaced when dependencies are built.
