file(REMOVE_RECURSE
  "CMakeFiles/attest_event_log_test.dir/attest/event_log_test.cc.o"
  "CMakeFiles/attest_event_log_test.dir/attest/event_log_test.cc.o.d"
  "attest_event_log_test"
  "attest_event_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_event_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
