file(REMOVE_RECURSE
  "CMakeFiles/hw_timing_param_test.dir/hw/timing_param_test.cc.o"
  "CMakeFiles/hw_timing_param_test.dir/hw/timing_param_test.cc.o.d"
  "hw_timing_param_test"
  "hw_timing_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_timing_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
