# Empty dependencies file for hw_timing_param_test.
# This may be replaced when dependencies are built.
