file(REMOVE_RECURSE
  "CMakeFiles/slb_param_test.dir/slb/slb_param_test.cc.o"
  "CMakeFiles/slb_param_test.dir/slb/slb_param_test.cc.o.d"
  "slb_param_test"
  "slb_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
