# Empty compiler generated dependencies file for slb_param_test.
# This may be replaced when dependencies are built.
