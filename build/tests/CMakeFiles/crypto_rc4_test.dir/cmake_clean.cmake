file(REMOVE_RECURSE
  "CMakeFiles/crypto_rc4_test.dir/crypto/rc4_test.cc.o"
  "CMakeFiles/crypto_rc4_test.dir/crypto/rc4_test.cc.o.d"
  "crypto_rc4_test"
  "crypto_rc4_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_rc4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
