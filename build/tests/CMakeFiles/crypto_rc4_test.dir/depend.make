# Empty dependencies file for crypto_rc4_test.
# This may be replaced when dependencies are built.
