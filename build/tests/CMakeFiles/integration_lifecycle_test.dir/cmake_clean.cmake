file(REMOVE_RECURSE
  "CMakeFiles/integration_lifecycle_test.dir/integration/lifecycle_test.cc.o"
  "CMakeFiles/integration_lifecycle_test.dir/integration/lifecycle_test.cc.o.d"
  "integration_lifecycle_test"
  "integration_lifecycle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
