# Empty compiler generated dependencies file for integration_lifecycle_test.
# This may be replaced when dependencies are built.
