# Empty compiler generated dependencies file for slb_extractor_test.
# This may be replaced when dependencies are built.
