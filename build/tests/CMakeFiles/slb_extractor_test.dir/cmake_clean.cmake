file(REMOVE_RECURSE
  "CMakeFiles/slb_extractor_test.dir/slb/extractor_test.cc.o"
  "CMakeFiles/slb_extractor_test.dir/slb/extractor_test.cc.o.d"
  "slb_extractor_test"
  "slb_extractor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
