# Empty dependencies file for attest_attest_test.
# This may be replaced when dependencies are built.
