file(REMOVE_RECURSE
  "CMakeFiles/attest_attest_test.dir/attest/attest_test.cc.o"
  "CMakeFiles/attest_attest_test.dir/attest/attest_test.cc.o.d"
  "attest_attest_test"
  "attest_attest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_attest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
