# Empty compiler generated dependencies file for integration_adversary_test.
# This may be replaced when dependencies are built.
