file(REMOVE_RECURSE
  "CMakeFiles/integration_adversary_test.dir/integration/adversary_test.cc.o"
  "CMakeFiles/integration_adversary_test.dir/integration/adversary_test.cc.o.d"
  "integration_adversary_test"
  "integration_adversary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_adversary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
