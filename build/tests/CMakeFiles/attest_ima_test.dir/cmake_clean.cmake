file(REMOVE_RECURSE
  "CMakeFiles/attest_ima_test.dir/attest/ima_test.cc.o"
  "CMakeFiles/attest_ima_test.dir/attest/ima_test.cc.o.d"
  "attest_ima_test"
  "attest_ima_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_ima_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
