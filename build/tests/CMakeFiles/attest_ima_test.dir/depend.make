# Empty dependencies file for attest_ima_test.
# This may be replaced when dependencies are built.
