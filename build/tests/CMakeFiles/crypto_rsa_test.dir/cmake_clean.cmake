file(REMOVE_RECURSE
  "CMakeFiles/crypto_rsa_test.dir/crypto/rsa_test.cc.o"
  "CMakeFiles/crypto_rsa_test.dir/crypto/rsa_test.cc.o.d"
  "crypto_rsa_test"
  "crypto_rsa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_rsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
