# Empty dependencies file for crypto_bigint_division_test.
# This may be replaced when dependencies are built.
