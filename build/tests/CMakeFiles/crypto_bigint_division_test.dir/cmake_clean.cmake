file(REMOVE_RECURSE
  "CMakeFiles/crypto_bigint_division_test.dir/crypto/bigint_division_test.cc.o"
  "CMakeFiles/crypto_bigint_division_test.dir/crypto/bigint_division_test.cc.o.d"
  "crypto_bigint_division_test"
  "crypto_bigint_division_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_bigint_division_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
