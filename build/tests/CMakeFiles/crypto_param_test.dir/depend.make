# Empty dependencies file for crypto_param_test.
# This may be replaced when dependencies are built.
