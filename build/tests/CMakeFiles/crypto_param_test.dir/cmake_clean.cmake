file(REMOVE_RECURSE
  "CMakeFiles/crypto_param_test.dir/crypto/crypto_param_test.cc.o"
  "CMakeFiles/crypto_param_test.dir/crypto/crypto_param_test.cc.o.d"
  "crypto_param_test"
  "crypto_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
