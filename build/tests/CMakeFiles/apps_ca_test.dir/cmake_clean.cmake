file(REMOVE_RECURSE
  "CMakeFiles/apps_ca_test.dir/apps/ca_test.cc.o"
  "CMakeFiles/apps_ca_test.dir/apps/ca_test.cc.o.d"
  "apps_ca_test"
  "apps_ca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_ca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
