# Empty dependencies file for apps_ca_test.
# This may be replaced when dependencies are built.
