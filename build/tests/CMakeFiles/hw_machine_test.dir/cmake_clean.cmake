file(REMOVE_RECURSE
  "CMakeFiles/hw_machine_test.dir/hw/machine_test.cc.o"
  "CMakeFiles/hw_machine_test.dir/hw/machine_test.cc.o.d"
  "hw_machine_test"
  "hw_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
