// Figure 9 reproduction: SSH password-authentication overhead - the
// server-side breakdown of both PALs plus the client-perceived latencies
// quoted in §7.4.1.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/ssh.h"

namespace flicker {
namespace {

void RunProfile(const char* name, const TimingModel& timing) {
  FlickerPlatformConfig config;
  config.machine.timing = timing;
  FlickerPlatform platform(config);
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<SshPal>(), options).value();

  SshServer server(&platform, &binary);
  if (!server.AddUser("alice", "correct horse", "a1b2c3d4").ok()) {
    return;
  }
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "ssh-server");
  SshClient client(&binary, ca.public_key(), cert);
  Channel channel(platform.clock());

  // ---- PAL 1 (setup) + attestation: the password-prompt latency ----
  double prompt_t0 = platform.clock()->NowMillis();
  Bytes setup_nonce = client.MakeNonce();
  channel.Deliver();  // Challenge to the server.
  Result<SshServer::SetupResult> setup = server.Setup(setup_nonce);
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.status().ToString().c_str());
    return;
  }
  channel.Deliver();  // Key + attestation back.
  if (!client.VerifyServerSetup(setup.value(), setup_nonce).ok()) {
    std::printf("client rejected setup attestation\n");
    return;
  }
  double prompt_latency = platform.clock()->NowMillis() - prompt_t0;

  // ---- PAL 2 (login): the post-password latency ----
  Bytes login_nonce = client.MakeNonce();
  channel.Deliver();  // Server nonce to the client.
  Result<Bytes> ciphertext = client.EncryptPassword("correct horse", login_nonce);
  if (!ciphertext.ok()) {
    return;
  }
  channel.Deliver();  // Ciphertext to the server.
  double login_t0 = platform.clock()->NowMillis();
  Result<SshServer::LoginResult> login =
      server.HandleLogin("alice", ciphertext.value(), login_nonce);
  double login_latency = platform.clock()->NowMillis() - login_t0;
  if (!login.ok() || !login.value().authenticated) {
    std::printf("login failed\n");
    return;
  }

  PrintHeader(std::string("Figure 9a: SSH PAL 1 (setup) [") + name + "]");
  PrintCompareHeader();
  PrintCompareRow("SKINIT", 14.3, setup.value().skinit_ms, "ms");
  PrintCompareRow("Key Gen (RSA-1024)", 185.7, timing.cpu.rsa1024_keygen_ms, "ms");
  PrintCompareRow("Seal", 10.2, timing.tpm.seal_ms, "ms");
  PrintCompareRow("Total PAL 1", 217.1, setup.value().pal1_total_ms, "ms");

  PrintHeader(std::string("Figure 9b: SSH PAL 2 (login) [") + name + "]");
  PrintCompareHeader();
  PrintCompareRow("SKINIT", 14.3, login.value().skinit_ms, "ms");
  PrintCompareRow("Unseal", 905.4, timing.tpm.unseal_ms, "ms");
  PrintCompareRow("Decrypt (RSA-1024)", 4.6, timing.cpu.rsa1024_decrypt_ms, "ms");
  PrintCompareRow("Total PAL 2", 937.6, login.value().pal2_total_ms, "ms");

  PrintHeader(std::string("Sec 7.4.1: client-perceived latency [") + name + "]");
  PrintCompareHeader();
  PrintCompareRow("TCP connect -> password prompt", 1221.0, prompt_latency, "ms");
  PrintCompareRow("  (unmodified server)", 210.0, 210.0, "ms");
  PrintCompareRow("password entry -> session", 940.0, login_latency, "ms");
  PrintCompareRow("  (unmodified server)", 10.0, 10.0, "ms");
  std::printf("(the prompt latency includes PAL 1 plus the %s quote of %.0f ms)\n",
              timing.tpm.name.c_str(), timing.tpm.quote_ms);
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunProfile("Broadcom BCM0102", flicker::DefaultTimingModel());
  flicker::RunProfile("Infineon", flicker::InfineonTimingModel());
  return 0;
}
