// Ablation: session overhead across TPM/hardware generations - the
// Broadcom the paper measured, the faster Infineon it cites, and the
// next-generation hardware its companion paper [19] recommends ("improve
// performance by up to six orders of magnitude").
//
// The workload is one distributed-computing session with 1 s of application
// work (Table 4's first column), plus the SSH login session (Fig. 9b).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/distributed.h"
#include "src/apps/ssh.h"

namespace flicker {
namespace {

struct RowResult {
  double session_overhead_ms;
  double overhead_pct;
  double ssh_login_ms;
};

RowResult MeasureGeneration(const TimingModel& timing) {
  RowResult row{};

  // Distributed session with 1 s of work.
  {
    FlickerPlatformConfig config;
    config.machine.timing = timing;
    FlickerPlatform platform(config);
    PalBuildOptions options;
    options.measurement_stub = true;
    PalBinary binary = BuildPal(std::make_shared<DistributedPal>(), options).value();
    BoincClient client(&platform, &binary);
    if (!client.Initialize().ok()) {
      return row;
    }
    const double work_ms = 1000.0;
    FactorWorkUnit unit;
    unit.composite = 1234577;
    unit.search_limit = 2 + static_cast<uint64_t>(work_ms * timing.cpu.divisor_tests_per_ms);
    double t0 = platform.clock()->NowMillis();
    BoincClient::RunStats stats = client.Process(unit, work_ms + 1);
    double total = platform.clock()->NowMillis() - t0;
    if (stats.status.ok()) {
      row.session_overhead_ms = total - work_ms;
      row.overhead_pct = row.session_overhead_ms / total * 100.0;
    }
  }

  // SSH login PAL.
  {
    FlickerPlatformConfig config;
    config.machine.timing = timing;
    FlickerPlatform platform(config);
    PalBuildOptions options;
    options.measurement_stub = true;
    PalBinary binary = BuildPal(std::make_shared<SshPal>(), options).value();
    SshServer server(&platform, &binary);
    (void)server.AddUser("alice", "pw", "saltsalt");
    PrivacyCa ca;
    AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "host");
    SshClient client(&binary, ca.public_key(), cert);
    Bytes setup_nonce = client.MakeNonce();
    Result<SshServer::SetupResult> setup = server.Setup(setup_nonce);
    if (setup.ok() && client.VerifyServerSetup(setup.value(), setup_nonce).ok()) {
      Bytes login_nonce = client.MakeNonce();
      Result<Bytes> ciphertext = client.EncryptPassword("pw", login_nonce);
      if (ciphertext.ok()) {
        Result<SshServer::LoginResult> login =
            server.HandleLogin("alice", ciphertext.value(), login_nonce);
        if (login.ok()) {
          row.ssh_login_ms = login.value().pal2_total_ms;
        }
      }
    }
  }
  return row;
}

void RunAblation() {
  PrintHeader("Ablation: hardware generations (Broadcom -> Infineon -> ASPLOS'08 proposal)");
  std::printf("%-40s %14s %12s %14s\n", "hardware", "overhead (ms)", "overhead %",
              "SSH login (ms)");
  PrintRule();
  struct Generation {
    const char* label;
    TimingModel timing;
  };
  for (const Generation& generation :
       {Generation{"Broadcom BCM0102 (paper's testbed)", DefaultTimingModel()},
        Generation{"Infineon v1.2 (paper §7)", InfineonTimingModel()},
        Generation{"next-gen hardware ([19] proposal)", NextGenTimingModel()}}) {
    RowResult row = MeasureGeneration(generation.timing);
    std::printf("%-40s %14.2f %11.2f%% %14.2f\n", generation.label, row.session_overhead_ms,
                row.overhead_pct, row.ssh_login_ms);
  }
  std::printf("\n(the fixed per-session cost collapses from ~925 ms to sub-millisecond,\n"
              " the direction of [19]'s \"up to six orders of magnitude\" improvement;\n"
              " what remains is the application's own compute)\n");
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunAblation();
  return 0;
}
