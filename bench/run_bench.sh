#!/usr/bin/env sh
# Builds the benches in Release and refreshes the committed machine-readable
# reports (BENCH_crypto.json and BENCH_tpm.json at the repo root), then
# prints the usual google-benchmark tables for eyeballing.
#
# BENCH_tpm.json doubles as an assertion: micro_tpm_transport exits non-zero
# if the wire transport's real per-command cost exceeds 1% of the modeled
# Broadcom command latency.
#
# Usage: bench/run_bench.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target micro_crypto micro_tpm_transport \
  -j "$(nproc 2>/dev/null || echo 4)"

"$build_dir/bench/micro_crypto" --bench_json="$repo_root/BENCH_crypto.json"
"$build_dir/bench/micro_tpm_transport" --bench_json="$repo_root/BENCH_tpm.json"
"$build_dir/bench/micro_crypto" --benchmark_filter='ModExp2048|RsaSignSha1_2048|Sha1/65536|TpmQuoteEndToEnd'
"$build_dir/bench/micro_tpm_transport" --benchmark_filter='Transport'
