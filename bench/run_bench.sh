#!/usr/bin/env sh
# Builds the benches in Release and refreshes the committed machine-readable
# crypto report (BENCH_crypto.json at the repo root), then prints the usual
# google-benchmark table for eyeballing.
#
# Usage: bench/run_bench.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target micro_crypto -j "$(nproc 2>/dev/null || echo 4)"

"$build_dir/bench/micro_crypto" --bench_json="$repo_root/BENCH_crypto.json"
"$build_dir/bench/micro_crypto" --benchmark_filter='ModExp2048|RsaSignSha1_2048|Sha1/65536|TpmQuoteEndToEnd'
