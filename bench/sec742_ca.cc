// §7.4.2 reproduction: certificate-authority signing latency (paper:
// 906.2 ms average over 100 trials, unseal-dominated; signature itself
// ~4.7 ms).

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/ca.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

void RunProfile(const char* name, const TimingModel& timing, int trials) {
  FlickerPlatformConfig config;
  config.machine.timing = timing;
  FlickerPlatform platform(config);
  Bytes owner_auth = Sha1::Digest(BytesOf("owner"));
  if (!platform.tpm()->TakeOwnership(owner_auth).ok()) {
    return;
  }

  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<CaPal>(), options).value();
  CertificateAuthorityHost host(&platform, &binary, "Flicker CA");
  if (!host.Initialize(owner_auth).ok()) {
    std::printf("CA init failed\n");
    return;
  }

  CaPolicy policy;
  policy.allowed_suffixes = {".corp.example.com"};

  double total = 0;
  int issued = 0;
  for (int i = 0; i < trials; ++i) {
    CertificateSigningRequest csr;
    csr.subject = "host" + std::to_string(i) + ".corp.example.com";
    Drbg rng(BytesOf(csr.subject));
    csr.subject_public_key = RsaGenerateKey(512, &rng).pub.Serialize();
    CertificateAuthorityHost::SignReport report = host.SignCertificate(csr, policy);
    if (report.status.ok()) {
      total += report.session_ms;
      ++issued;
      if (!CertificateAuthorityHost::VerifyCertificate(host.ca_public_key(),
                                                       report.certificate)) {
        std::printf("ISSUED CERTIFICATE FAILED VERIFICATION\n");
      }
    }
  }

  PrintHeader(std::string("Sec 7.4.2: CA certificate signing [") + name + "]");
  PrintCompareHeader();
  PrintCompareRow("sign request (avg)", 906.2, total / issued, "ms");
  PrintCompareRow("  RSA signature alone", 4.7, timing.cpu.rsa1024_sign_ms, "ms");
  PrintCompareRow("  Unseal (dominant)", 898.3, timing.tpm.unseal_ms, "ms");
  std::printf("issued %d certificates (serials 1..%d), all verified against the CA key\n",
              issued, issued);

  // Policy rejection demo.
  CertificateSigningRequest evil;
  evil.subject = "www.evil.com";
  evil.subject_public_key = Bytes(16, 1);
  CertificateAuthorityHost::SignReport rejected = host.SignCertificate(evil, policy);
  std::printf("CSR for %s: %s\n", evil.subject.c_str(), rejected.status.ToString().c_str());
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunProfile("Broadcom BCM0102", flicker::DefaultTimingModel(), 20);
  flicker::RunProfile("Infineon", flicker::InfineonTimingModel(), 20);
  return 0;
}
