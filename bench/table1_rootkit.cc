// Table 1 reproduction: rootkit-detector overhead breakdown and the §7.1
// end-to-end query latency, under both TPM profiles.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/rootkit_detector.h"

namespace flicker {
namespace {

void RunProfile(const char* profile_name, const TimingModel& timing) {
  FlickerPlatformConfig config;
  config.machine.timing = timing;
  FlickerPlatform platform(config);

  PalBinary binary = BuildPal(std::make_shared<RootkitDetectorPal>()).value();
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "remote-host");
  RootkitMonitor monitor(&binary, platform.kernel()->pristine_measurement(), ca.public_key(),
                         cert);
  Channel channel(platform.clock());

  // Warm-up query, then the measured one (25 paper trials; deterministic sim
  // needs one).
  monitor.Query(&platform, &channel);
  double t0 = platform.clock()->NowMillis();
  RootkitMonitor::QueryReport report = monitor.Query(&platform, &channel);
  double total = platform.clock()->NowMillis() - t0;
  if (!report.status.ok()) {
    std::printf("QUERY FAILED: %s\n", report.status.ToString().c_str());
    return;
  }

  PrintHeader(std::string("Table 1: rootkit detector breakdown [") + profile_name + "]");
  PrintCompareHeader();
  double extend_ms = timing.tpm.pcr_extend_ms;
  double hash_ms = timing.Sha1Millis(2 * 1024 * 1024 + 4096 + 176 * 1024);
  bool is_broadcom = timing.tpm.name == "Broadcom BCM0102";
  // Paper columns are Broadcom-only; for Infineon we still print the paper
  // numbers for reference.
  PrintCompareRow("SKINIT", 15.4, report.skinit_ms, "ms");
  PrintCompareRow("PCR Extend", 1.2, extend_ms, "ms");
  PrintCompareRow("Hash of kernel", 22.0, hash_ms, "ms");
  PrintCompareRow("TPM Quote", 972.7, report.quote_ms, "ms");
  PrintCompareRow("Total query latency", 1022.7, total, "ms");
  std::printf("(verdict: attestation %s, kernel %s)\n",
              report.status.ok() ? "valid" : "INVALID", report.kernel_clean ? "clean" : "TAMPERED");
  if (!is_broadcom) {
    std::printf("note: paper columns are the Broadcom numbers; this run shows the\n"
                "Infineon TPM cutting the quote-dominated latency (§7.2).\n");
  }

  // Also demonstrate detection: install a rootkit, re-query.
  if (is_broadcom) {
    if (platform.kernel()->InstallSyscallHook(11).ok()) {
      RootkitMonitor::QueryReport detect = monitor.Query(&platform, &channel);
      std::printf("with syscall hook installed: attestation %s, kernel %s\n",
                  detect.status.ok() ? "valid" : "INVALID",
                  detect.kernel_clean ? "clean (BUG!)" : "TAMPERED (detected)");
    }
  }
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunProfile("Broadcom BCM0102", flicker::DefaultTimingModel());
  flicker::RunProfile("Infineon", flicker::InfineonTimingModel());
  return 0;
}
