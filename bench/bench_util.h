// Shared helpers for the reproduction benches: consistent table printing
// with paper-vs-measured columns.
//
// Every bench prints simulated-time results calibrated against the paper's
// HP dc5750 (Broadcom BCM0102 TPM); benches re-run key rows under the
// Infineon profile where §7 quotes both.

#ifndef FLICKER_BENCH_BENCH_UTIL_H_
#define FLICKER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace flicker {

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("---------------------------------------------------------------------\n");
}

// A row comparing the paper's reported number with our simulated one.
inline void PrintCompareRow(const char* label, double paper, double measured, const char* unit) {
  double delta_pct = paper != 0.0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("%-34s %10.1f %10.1f %6s  %+6.1f%%\n", label, paper, measured, unit, delta_pct);
}

inline void PrintCompareHeader() {
  std::printf("%-34s %10s %10s %6s  %7s\n", "operation", "paper", "measured", "unit", "delta");
  PrintRule();
}

inline std::string FormatMinSec(double seconds) {
  int minutes = static_cast<int>(seconds) / 60;
  double rest = seconds - minutes * 60;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%d:%04.1f", minutes, rest);
  return std::string(buffer);
}

}  // namespace flicker

#endif  // FLICKER_BENCH_BENCH_UTIL_H_
