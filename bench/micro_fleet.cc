// The fleet-scale simulation bench: a thousand full Flicker machines and a
// verifier farm under one discrete-event executor, driven by a seeded
// open-loop Poisson client. Reports sessions/sec, round-latency percentiles,
// verifier utilization and the batch-size distribution as BENCH_fleet.json.
//
// Determinism is part of the contract: the same seed must produce a
// byte-identical JSON file and executor order digest run after run -
// verify.sh --fleet runs this twice and cmp(1)s the outputs.
//
//   micro_fleet                          flagship 1000-machine run, summary
//                                        to stdout
//   micro_fleet --bench_json=PATH        also write the JSON report to PATH
//   micro_fleet --machines=N --rounds=N --verifiers=N --seed=N
//                                        override the flagship shape
//   micro_fleet --chaos                  arm the chaos campaign: lossy wires,
//                                        a rack partition and two power cuts
//   micro_fleet --chaos-fuzz             run the composite chaos fuzzer: N
//                                        seeded fault plans against the
//                                        invariant oracles; any violation is
//                                        shrunk to a minimal plan (exit 2)
//     --fuzz-plans=N --fuzz-seed=N       campaign shape
//     --misordered-commit                arm the test-only misordered-commit
//                                        checkpoint bug the fuzzer must find
//     --replay-out=PATH                  write the minimal plan's replay file
//     --artifact-out=PATH                write the failure artifact (crash
//                                        point census + order digest)
//   micro_fleet --replay=FILE            re-run a replay file; prints the
//                                        observed replay serialization (byte
//                                        identical run over run) and exits 0
//                                        iff the observed failure signature
//                                        matches the file's "# signature:"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/sim/chaos_fuzz.h"
#include "src/sim/fleet.h"

namespace flicker {
namespace {

sim::FleetConfig FlagshipConfig() {
  sim::FleetConfig config;
  config.seed = 1;
  config.num_machines = 1000;
  config.num_verifiers = 8;
  config.rounds = 2000;
  config.mean_interarrival_ms = 1.0;
  config.batched_machines_bp = 5000;
  config.full_session_bp = 250;
  config.round_timeout_ms = 30000.0;
  return config;
}

void ArmChaos(sim::FleetConfig* config) {
  config->fault_mix.drop_bp = 300;
  config->fault_mix.duplicate_bp = 200;
  config->fault_mix.reorder_bp = 200;
  config->fault_mix.corrupt_bp = 300;
  config->fault_mix.delay_bp = 200;
  config->fault_seed = config->seed ^ 0xC4405ULL;

  sim::FleetPartition partition;
  partition.start_ms = 1000.0;
  partition.end_ms = 4000.0;
  partition.first_machine = 0;
  partition.last_machine = config->num_machines / 4 - 1;
  config->partitions.push_back(partition);

  for (int i = 0; i < 2; ++i) {
    sim::FleetPowerCut cut;
    cut.at_ms = 1500.0 + 1000.0 * i;
    cut.machine = (config->num_machines / 2 + i) % config->num_machines;
    config->power_cuts.push_back(cut);
  }
}

// The fuzzer's base fleet: small enough that hundreds of shrink probes stay
// cheap, arrivals sparse enough that the tail of the round schedule lands
// after the fault horizon (feeding the starvation oracle), checkpoint store
// on so crash-point power cuts have a two-phase protocol to tear.
sim::FleetConfig FuzzBaseConfig(uint64_t seed) {
  sim::FleetConfig config;
  config.seed = seed;
  config.num_machines = 4;
  config.num_verifiers = 2;
  config.rounds = 32;
  config.mean_interarrival_ms = 100.0;
  config.batched_machines_bp = 5000;
  config.round_timeout_ms = 30000.0;
  config.checkpoints.enabled = true;
  return config;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return static_cast<bool>(out);
}

int RunChaosFuzz(uint64_t campaign_seed, int num_plans, bool misordered_commit,
                 const std::string& replay_out, const std::string& artifact_out) {
  sim::FleetConfig base = FuzzBaseConfig(campaign_seed);
  base.checkpoints.misordered_commit = misordered_commit;
  sim::ChaosFuzzReport report = sim::ChaosFuzz(base, campaign_seed, num_plans);
  std::printf("chaos-fuzz: %d plans, seed %llu%s\n", report.plans_run,
              static_cast<unsigned long long>(campaign_seed),
              misordered_commit ? ", misordered-commit armed" : "");
  std::printf("  violations: %d\n", report.violations);
  if (!report.found) {
    std::printf("  all invariant oracles held\n");
    return 0;
  }
  std::printf("  first violation: %s (%zu events, shrunk to %zu in %d runs)\n",
              report.signature.c_str(), report.original_events, report.minimal.events.size(),
              report.shrink_runs);
  if (!replay_out.empty() && !WriteFile(replay_out, report.replay_file)) {
    std::fprintf(stderr, "cannot write %s\n", replay_out.c_str());
    return 1;
  }
  if (!artifact_out.empty() && !WriteFile(artifact_out, report.artifact)) {
    std::fprintf(stderr, "cannot write %s\n", artifact_out.c_str());
    return 1;
  }
  std::fputs(report.artifact.c_str(), stdout);
  return 2;
}

int RunReplay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<sim::ChaosReplay> parsed = sim::ParseChaosReplay(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "replay parse failed: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const sim::ChaosReplay& replay = parsed.value();
  sim::ChaosOutcome outcome = sim::RunChaosPlan(replay.base, replay.plan);
  if (!outcome.ran) {
    std::fprintf(stderr, "replay run failed: %s\n", outcome.error.c_str());
    return 1;
  }
  // The observed run, re-serialized: two invocations of the same file must
  // produce byte-identical stdout (verify.sh cmp(1)s them), and the
  // signature line is the regression gate.
  std::fputs(sim::SerializeChaosReplay(replay.base, replay.plan, outcome.signature).c_str(),
             stdout);
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016llx",
                static_cast<unsigned long long>(outcome.stats.order_digest));
  std::printf("# order_digest: %s\n", digest);
  if (outcome.signature != replay.signature) {
    std::fprintf(stderr, "signature mismatch: file says '%s', run produced '%s'\n",
                 replay.signature.c_str(), outcome.signature.c_str());
    return 3;
  }
  return 0;
}

int RunFleet(const sim::FleetConfig& config, const std::string& json_path) {
  sim::Fleet fleet(config);
  Status run = fleet.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "fleet run failed: %s\n", run.ToString().c_str());
    return 1;
  }
  const sim::FleetStats& stats = fleet.stats();

  std::printf("fleet: %d machines, %d verifiers, %d rounds, seed %llu\n", config.num_machines,
              config.num_verifiers, config.rounds,
              static_cast<unsigned long long>(config.seed));
  std::printf("  outcome: %llu completed, %llu timed out, %llu failed, %llu rejected "
              "(accepted_wrong=%llu)\n",
              static_cast<unsigned long long>(stats.rounds_completed),
              static_cast<unsigned long long>(stats.rounds_timed_out),
              static_cast<unsigned long long>(stats.rounds_failed),
              static_cast<unsigned long long>(stats.rounds_rejected + stats.tampered_rejected),
              static_cast<unsigned long long>(stats.accepted_wrong));
  std::printf("  throughput: %.3f sessions/sec over %.1f simulated s\n", stats.SessionsPerSec(),
              stats.sim_duration_ms / 1000.0);
  std::printf("  latency: p50 %.1f ms, p99 %.1f ms\n", stats.LatencyPercentileMs(0.50),
              stats.LatencyPercentileMs(0.99));
  std::printf("  verifiers: %.4f utilization; batch quotes: %llu\n", stats.VerifierUtilization(),
              static_cast<unsigned long long>(stats.batch_quotes));
  std::printf("  engine: %llu events, max heap %zu, order digest 0x%016llx\n",
              static_cast<unsigned long long>(stats.events_processed), stats.max_heap,
              static_cast<unsigned long long>(stats.order_digest));

  if (stats.accepted_wrong != 0) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %llu tampered frames accepted\n",
                 static_cast<unsigned long long>(stats.accepted_wrong));
    return 2;
  }

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = stats.ToJson(config);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  flicker::sim::FleetConfig config = flicker::FlagshipConfig();
  std::string json_path;
  std::string replay_path;
  std::string replay_out;
  std::string artifact_out;
  bool chaos = false;
  bool chaos_fuzz = false;
  bool misordered_commit = false;
  int fuzz_plans = 24;
  uint64_t fuzz_seed = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--bench_json=", 13) == 0) {
      json_path = arg + 13;
    } else if (std::strncmp(arg, "--machines=", 11) == 0) {
      config.num_machines = std::atoi(arg + 11);
    } else if (std::strncmp(arg, "--verifiers=", 12) == 0) {
      config.num_verifiers = std::atoi(arg + 12);
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      config.rounds = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(arg, "--chaos-fuzz") == 0) {
      chaos_fuzz = true;
    } else if (std::strncmp(arg, "--fuzz-plans=", 13) == 0) {
      fuzz_plans = std::atoi(arg + 13);
    } else if (std::strncmp(arg, "--fuzz-seed=", 12) == 0) {
      fuzz_seed = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strcmp(arg, "--misordered-commit") == 0) {
      misordered_commit = true;
    } else if (std::strncmp(arg, "--replay-out=", 13) == 0) {
      replay_out = arg + 13;
    } else if (std::strncmp(arg, "--artifact-out=", 15) == 0) {
      artifact_out = arg + 15;
    } else if (std::strncmp(arg, "--replay=", 9) == 0) {
      replay_path = arg + 9;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 1;
    }
  }
  if (!replay_path.empty()) {
    return flicker::RunReplay(replay_path);
  }
  if (chaos_fuzz) {
    return flicker::RunChaosFuzz(fuzz_seed, fuzz_plans, misordered_commit, replay_out,
                                 artifact_out);
  }
  if (chaos) {
    flicker::ArmChaos(&config);
  }
  return flicker::RunFleet(config, json_path);
}
