// The fleet-scale simulation bench: a thousand full Flicker machines and a
// verifier farm under one discrete-event executor, driven by a seeded
// open-loop Poisson client. Reports sessions/sec, round-latency percentiles,
// verifier utilization and the batch-size distribution as BENCH_fleet.json.
//
// Determinism is part of the contract: the same seed must produce a
// byte-identical JSON file and executor order digest run after run -
// verify.sh --fleet runs this twice and cmp(1)s the outputs.
//
//   micro_fleet                          flagship 1000-machine run, summary
//                                        to stdout
//   micro_fleet --bench_json=PATH        also write the JSON report to PATH
//   micro_fleet --machines=N --rounds=N --verifiers=N --seed=N
//                                        override the flagship shape
//   micro_fleet --chaos                  arm the chaos campaign: lossy wires,
//                                        a rack partition and two power cuts

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/sim/fleet.h"

namespace flicker {
namespace {

sim::FleetConfig FlagshipConfig() {
  sim::FleetConfig config;
  config.seed = 1;
  config.num_machines = 1000;
  config.num_verifiers = 8;
  config.rounds = 2000;
  config.mean_interarrival_ms = 1.0;
  config.batched_machines_bp = 5000;
  config.full_session_bp = 250;
  config.round_timeout_ms = 30000.0;
  return config;
}

void ArmChaos(sim::FleetConfig* config) {
  config->fault_mix.drop_bp = 300;
  config->fault_mix.duplicate_bp = 200;
  config->fault_mix.reorder_bp = 200;
  config->fault_mix.corrupt_bp = 300;
  config->fault_mix.delay_bp = 200;
  config->fault_seed = config->seed ^ 0xC4405ULL;

  sim::FleetPartition partition;
  partition.start_ms = 1000.0;
  partition.end_ms = 4000.0;
  partition.first_machine = 0;
  partition.last_machine = config->num_machines / 4 - 1;
  config->partitions.push_back(partition);

  for (int i = 0; i < 2; ++i) {
    sim::FleetPowerCut cut;
    cut.at_ms = 1500.0 + 1000.0 * i;
    cut.machine = (config->num_machines / 2 + i) % config->num_machines;
    config->power_cuts.push_back(cut);
  }
}

int RunFleet(const sim::FleetConfig& config, const std::string& json_path) {
  sim::Fleet fleet(config);
  Status run = fleet.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "fleet run failed: %s\n", run.ToString().c_str());
    return 1;
  }
  const sim::FleetStats& stats = fleet.stats();

  std::printf("fleet: %d machines, %d verifiers, %d rounds, seed %llu\n", config.num_machines,
              config.num_verifiers, config.rounds,
              static_cast<unsigned long long>(config.seed));
  std::printf("  outcome: %llu completed, %llu timed out, %llu failed, %llu rejected "
              "(accepted_wrong=%llu)\n",
              static_cast<unsigned long long>(stats.rounds_completed),
              static_cast<unsigned long long>(stats.rounds_timed_out),
              static_cast<unsigned long long>(stats.rounds_failed),
              static_cast<unsigned long long>(stats.rounds_rejected + stats.tampered_rejected),
              static_cast<unsigned long long>(stats.accepted_wrong));
  std::printf("  throughput: %.3f sessions/sec over %.1f simulated s\n", stats.SessionsPerSec(),
              stats.sim_duration_ms / 1000.0);
  std::printf("  latency: p50 %.1f ms, p99 %.1f ms\n", stats.LatencyPercentileMs(0.50),
              stats.LatencyPercentileMs(0.99));
  std::printf("  verifiers: %.4f utilization; batch quotes: %llu\n", stats.VerifierUtilization(),
              static_cast<unsigned long long>(stats.batch_quotes));
  std::printf("  engine: %llu events, max heap %zu, order digest 0x%016llx\n",
              static_cast<unsigned long long>(stats.events_processed), stats.max_heap,
              static_cast<unsigned long long>(stats.order_digest));

  if (stats.accepted_wrong != 0) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %llu tampered frames accepted\n",
                 static_cast<unsigned long long>(stats.accepted_wrong));
    return 2;
  }

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = stats.ToJson(config);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  flicker::sim::FleetConfig config = flicker::FlagshipConfig();
  std::string json_path;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--bench_json=", 13) == 0) {
      json_path = arg + 13;
    } else if (std::strncmp(arg, "--machines=", 11) == 0) {
      config.num_machines = std::atoi(arg + 11);
    } else if (std::strncmp(arg, "--verifiers=", 12) == 0) {
      config.num_verifiers = std::atoi(arg + 12);
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      config.rounds = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--chaos") == 0) {
      chaos = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 1;
    }
  }
  if (chaos) {
    flicker::ArmChaos(&config);
  }
  return flicker::RunFleet(config, json_path);
}
