// Session-layer behavior under loss: what does the reliable-session machinery
// cost, and what does it deliver, when the wire starts eating datagrams?
//
// The --bench_json mode (BENCH_net.json) runs 200 request/response exchanges
// (256-byte payloads, default SessionConfig) at 0 / 1 / 5 / 20 % drop rates
// on seeded schedules and reports the completion-time distribution (p50 /
// p95 / max, simulated milliseconds), the retransmit count, the goodput in
// kbit/s of simulated time, and the fail-closed count. Everything runs on
// the simulated clock with fixed seeds, so the report is byte-identical
// across runs and machines - a drift in it is a behavior change, not noise.
//
// The within_budget verdict asserts the headline claims: a clean wire
// completes every call with zero retransmits at ~1 RTT, and 20 % loss still
// completes the overwhelming majority inside the deadline - the rest fail
// CLOSED, never hang, never return garbage.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/net/session.h"

namespace flicker {
namespace {

constexpr int kCallsPerRate = 200;
constexpr size_t kPayloadBytes = 256;

struct RateReport {
  uint32_t loss_bp = 0;
  int completed = 0;
  int failed_closed = 0;
  uint64_t retransmits = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;
  double goodput_kbps = 0;  // Delivered payload bits per simulated second.
};

RateReport RunAtLossRate(uint32_t loss_bp) {
  SimClock clock;
  LossyChannel channel(&clock);
  NetFaultMix mix;
  mix.drop_bp = loss_bp;
  channel.set_fault_schedule(NetFaultSchedule(0x6e65ULL + loss_bp, mix));
  SessionClient client(&channel, NetEndpoint::kClient);
  SessionServer server(&channel, NetEndpoint::kServer);
  SessionServer::Handler echo = [](const Bytes& request) -> Result<Bytes> {
    return request;
  };
  SessionClient::PeerPump pump = [&](double deadline_ms) {
    server.ServePending(deadline_ms, echo);
  };

  RateReport report;
  report.loss_bp = loss_bp;
  const Bytes payload(kPayloadBytes, 0x42);
  std::vector<double> completion_ms;
  const double start_ms = clock.NowMillis();
  for (int i = 0; i < kCallsPerRate; ++i) {
    const double call_start_ms = clock.NowMillis();
    Result<Bytes> reply = client.Call(payload, pump);
    if (reply.ok() && reply.value() == payload) {
      ++report.completed;
      completion_ms.push_back(clock.NowMillis() - call_start_ms);
    } else {
      ++report.failed_closed;  // Typed error within deadline; never garbage.
    }
  }
  report.retransmits = client.retransmits();

  if (!completion_ms.empty()) {
    std::sort(completion_ms.begin(), completion_ms.end());
    report.p50_ms = completion_ms[completion_ms.size() / 2];
    report.p95_ms = completion_ms[completion_ms.size() * 95 / 100];
    report.max_ms = completion_ms.back();
  }
  const double elapsed_s = (clock.NowMillis() - start_ms) / 1000.0;
  if (elapsed_s > 0) {
    report.goodput_kbps =
        static_cast<double>(report.completed) * kPayloadBytes * 8.0 / elapsed_s / 1000.0;
  }
  return report;
}

// ---- google-benchmark section (host wall time of the whole machinery) ----

void BM_SessionEchoAtLoss(benchmark::State& state) {
  const uint32_t loss_bp = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    RateReport report = RunAtLossRate(loss_bp);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetLabel(std::to_string(state.range(0)) + "bp drop, " +
                 std::to_string(kCallsPerRate) + " calls");
}
BENCHMARK(BM_SessionEchoAtLoss)->Arg(0)->Arg(100)->Arg(500)->Arg(2000);

// ---- JSON mode: fixed-schema, deterministic (simulated-time) report ----

int RunJsonBench(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_net: cannot open %s for writing\n", path.c_str());
    return 1;
  }

  const uint32_t rates_bp[] = {0, 100, 500, 2000};
  std::vector<RateReport> reports;
  for (uint32_t rate : rates_bp) {
    reports.push_back(RunAtLossRate(rate));
  }

  // The headline claims this report exists to defend.
  const RateReport& clean = reports.front();
  const RateReport& worst = reports.back();
  bool within_budget = true;
  within_budget &= clean.completed == kCallsPerRate && clean.retransmits == 0;
  within_budget &= clean.p95_ms < 15.0;  // ~1 RTT; no timeout window burned.
  within_budget &= worst.completed >= kCallsPerRate * 9 / 10;
  for (const RateReport& r : reports) {
    within_budget &= (r.completed + r.failed_closed) == kCallsPerRate;
    within_budget &= r.max_ms <= SessionConfig().total_deadline_ms;
  }

  std::fprintf(out,
               "{\n"
               "  \"schema\": \"flicker-bench-net-v1\",\n"
               "  \"calls_per_rate\": %d,\n"
               "  \"payload_bytes\": %zu,\n"
               "  \"rates\": [\n",
               kCallsPerRate, kPayloadBytes);
  for (size_t i = 0; i < reports.size(); ++i) {
    const RateReport& r = reports[i];
    std::fprintf(out,
                 "    {\"loss_bp\": %u, \"completed\": %d, \"failed_closed\": %d, "
                 "\"retransmits\": %llu, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
                 "\"max_ms\": %.4f, \"goodput_kbps\": %.3f}%s\n",
                 r.loss_bp, r.completed, r.failed_closed,
                 static_cast<unsigned long long>(r.retransmits), r.p50_ms, r.p95_ms,
                 r.max_ms, r.goodput_kbps, i + 1 < reports.size() ? "," : "");
    std::printf("loss %5.2f%%: %3d/%d completed, %3d failed closed, %4llu retransmits, "
                "p50 %7.3f ms, p95 %7.3f ms, max %7.3f ms, goodput %8.3f kbit/s\n",
                r.loss_bp / 100.0, r.completed, kCallsPerRate, r.failed_closed,
                static_cast<unsigned long long>(r.retransmits), r.p50_ms, r.p95_ms, r.max_ms,
                r.goodput_kbps);
  }
  std::fprintf(out,
               "  ],\n"
               "  \"within_budget\": %s\n"
               "}\n",
               within_budget ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s (within_budget=%s)\n", path.c_str(), within_budget ? "true" : "false");
  return within_budget ? 0 : 2;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--bench_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return flicker::RunJsonBench(argv[i] + sizeof(kFlag) - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
