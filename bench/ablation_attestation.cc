// Ablation: Flicker's fine-grained attestation vs the trusted-boot (IMA)
// baseline it argues against (paper §1 "Meaningful Attestation", §8).
//
// Both attestations run on the same simulated platform; the table compares
// what the verifier must know, what a single unexpected component does to
// the verdict, and what the attestation leaks.

#include <cstdio>
#include <memory>
#include <set>

#include "bench/bench_util.h"
#include "src/apps/hello.h"
#include "src/attest/ima.h"
#include "src/attest/verifier.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"

namespace flicker {
namespace {

void RunComparison() {
  FlickerPlatform platform;
  Bytes nonce = Sha1::Digest(BytesOf("ablation-nonce"));

  // ---- Baseline: IMA trusted boot over a realistic software stack ----
  ImaSystem ima(platform.machine());
  std::set<std::string> known_good;
  const char* stack[] = {"bios",        "grub",      "kernel-2.6.20", "initrd",
                         "libc-2.5",    "libssl",    "sshd-4.3p2",    "apache-2.2",
                         "postfix",     "cron",      "udevd",         "dbus",
                         "syslogd",     "ntpd",      "login",         "bash",
                         "perl-5.8",    "python2.4", "gcc-4.1",       "make",
                         "nfs-utils",   "cups",      "xorg",          "firefox-2.0",
                         "thunderbird", "gnupg"};
  for (const char* component : stack) {
    Bytes content = BytesOf(std::string("bits-of-") + component);
    (void)ima.MeasureEvent(component, content);
    known_good.insert(ToHex(Sha1::Digest(content)));
  }
  // One locally rebuilt tool the verifier has never seen.
  (void)ima.MeasureEvent("in-house-monitoring-agent", BytesOf("site-local build"));

  Result<ImaAttestation> ima_attestation = ima.Attest(nonce);
  ImaVerdict ima_verdict = VerifyImaAttestation(
      ima_attestation.value(), platform.machine()->tpm()->aik_public(), known_good, nonce);

  // ---- Flicker: attest one PAL on the very same (messy) platform ----
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>()).value();
  SlbCoreOptions options;
  options.nonce = nonce;
  Result<FlickerSessionResult> session = platform.ExecuteSession(binary, Bytes(), options);
  Result<AttestationResponse> response =
      platform.tqd()->HandleChallenge(nonce, PcrSelection({kSkinitPcr}));
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "host");
  SessionExpectation expectation;
  expectation.binary = &binary;
  expectation.inputs = Bytes();
  expectation.outputs = session.value().outputs();
  expectation.nonce = nonce;
  Status flicker_verdict =
      VerifyAttestation(expectation, response.value(), cert, ca.public_key(), nonce);

  PrintHeader("Ablation: fine-grained (Flicker) vs trusted-boot (IMA) attestation");
  std::printf("%-44s %16s %16s\n", "", "trusted boot", "Flicker");
  PrintRule();
  std::printf("%-44s %16zu %16d\n", "log entries shipped to verifier",
              ima_verdict.entries_total, 1);
  std::printf("%-44s %16zu %16d\n", "known-good digests verifier must curate",
              known_good.size(), 1);
  std::printf("%-44s %16zu %16d\n", "software items leaked to verifier",
              ima_verdict.entries_total, 0);
  std::printf("%-44s %16s %16s\n", "verdict with one unrecognized component",
              ima_verdict.Trustworthy() ? "trusted" : "UNDECIDABLE",
              flicker_verdict.ok() ? "trusted" : "invalid");
  std::printf("%-44s %16s %16s\n", "compromise window", "since boot", "one session");
  std::printf("\nIMA verdict detail: signature %s, log %s, %zu/%zu entries unknown (%s)\n",
              ima_verdict.quote_signature_valid ? "valid" : "invalid",
              ima_verdict.log_matches_pcr ? "consistent" : "inconsistent",
              ima_verdict.entries_unknown, ima_verdict.entries_total,
              ima_verdict.unknown_entries.empty() ? "-"
                                                  : ima_verdict.unknown_entries[0].c_str());
  std::printf("(paper §8: \"Such large attestations can be difficult to verify and leak\n"
              " information about the software on the attestor's platform.\")\n");
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunComparison();
  return 0;
}
