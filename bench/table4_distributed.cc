// Table 4 reproduction: distributed-computing session overhead vs
// application work per session (1/2/4/8 s slices), for both TPM profiles.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/distributed.h"

namespace flicker {
namespace {

struct SessionCosts {
  double skinit_ms;
  double unseal_ms;
  double total_ms;
  double work_ms;
};

// Runs one real work session with ~work_ms of application compute and
// returns the cost breakdown.
SessionCosts MeasureSession(FlickerPlatform* platform, const PalBinary& binary,
                            BoincClient* client, double work_ms) {
  const double divisors_per_ms = platform->machine()->timing().cpu.divisor_tests_per_ms;
  FactorWorkUnit unit;
  unit.composite = 1234577;
  unit.search_limit = 2 + static_cast<uint64_t>(work_ms * divisors_per_ms);

  double t0 = platform->clock()->NowMillis();
  BoincClient::RunStats stats = client->Process(unit, work_ms + 1.0);
  double total = platform->clock()->NowMillis() - t0;

  SessionCosts costs;
  costs.skinit_ms = platform->machine()->timing().SkinitMillis(kMeasurementStubSize);
  costs.unseal_ms = platform->machine()->timing().tpm.unseal_ms;
  costs.total_ms = stats.status.ok() ? total : -1;
  costs.work_ms = work_ms;
  return costs;
}

void RunProfile(const char* name, const TimingModel& timing) {
  FlickerPlatformConfig config;
  config.machine.timing = timing;
  FlickerPlatform platform(config);
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<DistributedPal>(), options).value();
  BoincClient client(&platform, &binary);
  if (!client.Initialize().ok()) {
    std::printf("client init failed\n");
    return;
  }

  PrintHeader(std::string("Table 4: distributed computing overhead [") + name + "]");
  std::printf("%-22s %8s %8s %8s %8s\n", "", "1000 ms", "2000 ms", "4000 ms", "8000 ms");
  PrintRule();

  double skinit[4];
  double unseal[4];
  double overhead[4];
  double paper_overhead[4] = {47, 30, 18, 10};
  double works[4] = {1000, 2000, 4000, 8000};
  for (int i = 0; i < 4; ++i) {
    SessionCosts costs = MeasureSession(&platform, binary, &client, works[i]);
    skinit[i] = costs.skinit_ms;
    unseal[i] = costs.unseal_ms;
    overhead[i] = (costs.total_ms - costs.work_ms) / costs.total_ms * 100.0;
  }
  std::printf("%-22s %8.1f %8.1f %8.1f %8.1f\n", "SKINIT (ms)", skinit[0], skinit[1], skinit[2],
              skinit[3]);
  std::printf("%-22s %8.1f %8.1f %8.1f %8.1f\n", "Unseal (ms)", unseal[0], unseal[1], unseal[2],
              unseal[3]);
  std::printf("%-22s %8.0f%% %7.0f%% %7.0f%% %7.0f%%\n", "Flicker overhead", overhead[0],
              overhead[1], overhead[2], overhead[3]);
  std::printf("%-22s %8.0f%% %7.0f%% %7.0f%% %7.0f%%\n", "  (paper)", paper_overhead[0],
              paper_overhead[1], paper_overhead[2], paper_overhead[3]);
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunProfile("Broadcom BCM0102", flicker::DefaultTimingModel());
  flicker::RunProfile("Infineon", flicker::InfineonTimingModel());
  std::printf("\n(paper SKINIT 14.3 ms, Unseal 898.3 ms; the Infineon profile shows the\n"
              " §7 observation that a faster TPM shrinks the fixed per-session cost)\n");
  return 0;
}
