// Observability cost + export tool.
//
// Tracing must be free at the timescale the simulation models, and invisible
// to the simulation itself: installing a tracer never advances the simulated
// clock, so every table and figure is bit-identical with tracing on or off.
// The --bench_json mode asserts both properties: the measured wall-clock
// cost a tracer adds to one full attestation round stays under 1% of the
// *modeled* round latency, and the simulated duration of the round is
// exactly identical traced and untraced. Built with -DFLICKER_OBS=OFF the
// same binary reports obs_compiled_in=false - the instrumentation sites are
// gone and the overhead is zero by construction.
//
// The other modes are the operator surface of the unified stream:
//   --trace_json=PATH       run one SSH attestation round (both PALs) under
//                           a tracer; export the Chrome trace_event JSON
//                           (load in chrome://tracing or ui.perfetto.dev).
//   --dump_metrics          same round; plain-text metrics dump to stdout.
//   --dump_metrics_md=PATH  regenerate docs/METRICS.md from the metric
//                           definition tables ("-" writes to stdout).
//                           verify.sh diffs this against the committed copy.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/apps/hello.h"
#include "src/apps/ssh.h"
#include "src/core/remote_attestation.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flicker {
namespace {

// One challenged platform + verifier pair; Round() is the full wire-level
// attestation exchange (challenge -> PAL session -> quote -> verify).
struct AttestRig {
  FlickerPlatform platform;
  PalBinary binary;
  PrivacyCa ca;
  AikCertificate cert;
  AttestationService service;
  AttestationVerifier verifier;

  AttestRig()
      : binary(BuildPal(std::make_shared<HelloWorldPal>()).take()),
        cert(ca.Certify(platform.tpm()->aik_public(), "bench-host")),
        service(&platform, cert),
        verifier(&binary, ca.public_key()) {}

  bool Round() {
    Bytes challenge = verifier.MakeChallenge();
    Result<Bytes> reply = service.HandleChallenge(challenge, binary, BytesOf("bench"));
    if (!reply.ok()) {
      return false;
    }
    return verifier.CheckReply(reply.value()).status.ok();
  }
};

struct RunStats {
  double wall_us_per_round = 0;
  double sim_ms_per_round = 0;
  bool all_ok = true;
};

RunStats MeasureRounds(AttestRig* rig, int rounds) {
  using Clock = std::chrono::steady_clock;
  RunStats stats;
  stats.all_ok = rig->Round();  // Warm-up (untimed wall, but sim time counts).
  const uint64_t sim_start_us = rig->platform.clock()->NowMicros();
  const Clock::time_point wall_start = Clock::now();
  for (int i = 0; i < rounds; ++i) {
    stats.all_ok = rig->Round() && stats.all_ok;
  }
  const double wall_s = std::chrono::duration<double>(Clock::now() - wall_start).count();
  const uint64_t sim_us = rig->platform.clock()->NowMicros() - sim_start_us;
  stats.wall_us_per_round = wall_s * 1e6 / rounds;
  stats.sim_ms_per_round = static_cast<double>(sim_us) / 1000.0 / rounds;
  return stats;
}

int RunJsonBench(const std::string& path) {
  constexpr int kRounds = 12;
#if defined(FLICKER_OBS_DISABLED)
  const bool compiled_in = false;
#else
  const bool compiled_in = true;
#endif

  // Untraced: instrumentation compiled in (unless OFF) but no tracer
  // installed - the per-site cost is one global pointer load + branch.
  AttestRig untraced_rig;
  RunStats untraced = MeasureRounds(&untraced_rig, kRounds);

  // Traced: a live tracer captures the full span stream.
  AttestRig traced_rig;
  obs::Tracer tracer(traced_rig.platform.clock());
  obs::InstallGlobalTracer(&tracer);
  RunStats traced = MeasureRounds(&traced_rig, kRounds);
  obs::InstallGlobalTracer(nullptr);

  const double spans_per_round =
      static_cast<double>(tracer.spans().size()) / (kRounds + 1);
  const double overhead_percent =
      (traced.wall_us_per_round - untraced.wall_us_per_round) /
      (untraced.sim_ms_per_round * 1000.0) * 100.0;
  // The load-bearing invariant: tracing observes simulated time, never
  // spends it. Byte-identical tables depend on exact equality here.
  const bool sim_identical = traced.sim_ms_per_round == untraced.sim_ms_per_round;
  const bool within_budget =
      untraced.all_ok && traced.all_ok && sim_identical && overhead_percent < 1.0;

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_obs: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"flicker-bench-obs-v1\",\n"
               "  \"obs_compiled_in\": %s,\n"
               "  \"overhead_budget_percent\": 1.0,\n"
               "  \"rounds\": %d,\n"
               "  \"untraced\": {\"wall_us_per_round\": %.3f, \"sim_ms_per_round\": %.3f},\n"
               "  \"traced\": {\"wall_us_per_round\": %.3f, \"sim_ms_per_round\": %.3f, "
               "\"spans_per_round\": %.1f},\n"
               "  \"tracing_overhead_percent\": %.4f,\n"
               "  \"sim_time_identical\": %s,\n"
               "  \"within_budget\": %s\n"
               "}\n",
               compiled_in ? "true" : "false", kRounds, untraced.wall_us_per_round,
               untraced.sim_ms_per_round, traced.wall_us_per_round, traced.sim_ms_per_round,
               spans_per_round, overhead_percent, sim_identical ? "true" : "false",
               within_budget ? "true" : "false");
  std::fclose(out);

  std::printf("attestation round: %.3f us wall untraced, %.3f us wall traced "
              "(%.1f spans/round), %.1f ms simulated\n",
              untraced.wall_us_per_round, traced.wall_us_per_round, spans_per_round,
              untraced.sim_ms_per_round);
  std::printf("tracing overhead: %.4f%% of the modeled round budget; "
              "sim time identical: %s\n",
              overhead_percent, sim_identical ? "yes" : "NO");
  std::printf("wrote %s (within_budget=%s)\n", path.c_str(), within_budget ? "true" : "false");
  return within_budget ? 0 : 2;
}

// One full SSH round under a tracer: setup PAL + attestation, then a login
// frame through the second PAL - the span tree runs from app.ssh_* down to
// individual TPM ordinals. Returns the exported Chrome JSON via *trace and
// the final metrics dump via *metrics.
bool RunSshRound(std::string* trace, std::string* metrics) {
  FlickerPlatform platform;
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<SshPal>(), options).value();

  SshServer server(&platform, &binary);
  if (!server.AddUser("alice", "correct horse", "a1b2c3d4").ok()) {
    return false;
  }
  PrivacyCa ca;
  AikCertificate cert = ca.Certify(platform.tpm()->aik_public(), "ssh-server");
  SshClient client(&binary, ca.public_key(), cert);

  obs::Tracer tracer(platform.clock());
  obs::InstallGlobalTracer(&tracer);

  Bytes setup_nonce = client.MakeNonce();
  Result<SshServer::SetupResult> setup = server.Setup(setup_nonce);
  bool ok = setup.ok() && client.VerifyServerSetup(setup.value(), setup_nonce).ok();

  if (ok) {
    Bytes login_nonce = client.MakeNonce();
    Result<Bytes> ciphertext = client.EncryptPassword("correct horse", login_nonce);
    ok = ciphertext.ok();
    if (ok) {
      SshLoginRequest request;
      request.username = "alice";
      request.encrypted_password = ciphertext.value();
      request.login_nonce = login_nonce;
      Result<Bytes> verdict = server.HandleLoginFrame(request.Serialize());
      ok = verdict.ok() && verdict.value().size() == 1 && verdict.value()[0] == 1;
    }
  }

  obs::InstallGlobalTracer(nullptr);
  if (trace != nullptr) {
    *trace = tracer.ExportChromeTrace();
  }
  if (metrics != nullptr) {
    std::ostringstream os;
    obs::MetricsRegistry::Global()->DumpText(os);
    *metrics = os.str();
  }
  return ok;
}

int RunTraceExport(const std::string& path) {
  std::string trace;
  if (!RunSshRound(&trace, nullptr)) {
    std::fprintf(stderr, "micro_obs: SSH round failed\n");
    return 1;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "micro_obs: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << trace;
  out.close();
  std::printf("wrote %s (%zu bytes; load in chrome://tracing or ui.perfetto.dev)\n",
              path.c_str(), trace.size());
  return 0;
}

int RunMetricsDump() {
  std::string metrics;
  if (!RunSshRound(nullptr, &metrics)) {
    std::fprintf(stderr, "micro_obs: SSH round failed\n");
    return 1;
  }
  std::fputs(metrics.c_str(), stdout);
  return 0;
}

int RunMetricsMarkdown(const std::string& path) {
  if (path == "-") {
    obs::MetricsRegistry::DumpMarkdown(std::cout);
    return 0;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "micro_obs: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  obs::MetricsRegistry::DumpMarkdown(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kBench[] = "--bench_json=";
    constexpr const char kTrace[] = "--trace_json=";
    constexpr const char kMd[] = "--dump_metrics_md=";
    if (std::strncmp(argv[i], kBench, sizeof(kBench) - 1) == 0) {
      return flicker::RunJsonBench(argv[i] + sizeof(kBench) - 1);
    }
    if (std::strncmp(argv[i], kTrace, sizeof(kTrace) - 1) == 0) {
      return flicker::RunTraceExport(argv[i] + sizeof(kTrace) - 1);
    }
    if (std::strncmp(argv[i], kMd, sizeof(kMd) - 1) == 0) {
      return flicker::RunMetricsMarkdown(argv[i] + sizeof(kMd) - 1);
    }
    if (std::strcmp(argv[i], "--dump_metrics") == 0) {
      return flicker::RunMetricsDump();
    }
  }
  std::fprintf(stderr,
               "usage: micro_obs --bench_json=PATH | --trace_json=PATH |\n"
               "                 --dump_metrics | --dump_metrics_md=PATH|-\n");
  return 1;
}
