// Figure 8 reproduction: Flicker efficiency vs user latency, against 3-way,
// 5-way and 7-way replication. Replication wastes a constant fraction of
// all machines; Flicker amortizes a fixed per-session cost, so it crosses
// the replication lines as sessions lengthen.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/distributed.h"

namespace flicker {
namespace {

// Measures the fixed per-session Flicker cost with a real (tiny-work)
// session, then evaluates efficiency across the latency sweep.
void RunFigure8(const char* name, const TimingModel& timing) {
  FlickerPlatformConfig config;
  config.machine.timing = timing;
  FlickerPlatform platform(config);
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<DistributedPal>(), options).value();
  BoincClient client(&platform, &binary);
  if (!client.Initialize().ok()) {
    std::printf("init failed\n");
    return;
  }

  // One measured session with ~100 ms of work isolates the fixed overhead.
  const double probe_work_ms = 100.0;
  FactorWorkUnit unit;
  unit.composite = 99991;
  unit.search_limit =
      2 + static_cast<uint64_t>(probe_work_ms * timing.cpu.divisor_tests_per_ms);
  double t0 = platform.clock()->NowMillis();
  BoincClient::RunStats stats = client.Process(unit, probe_work_ms + 1);
  double overhead_ms = (platform.clock()->NowMillis() - t0) - probe_work_ms;

  PrintHeader(std::string("Figure 8: efficiency vs user latency [") + name + "]");
  std::printf("measured fixed per-session overhead: %.1f ms\n", overhead_ms);
  std::printf("%-14s %10s %8s %8s %8s\n", "latency (s)", "Flicker", "3-way", "5-way", "7-way");
  PrintRule();
  double crossover3 = -1;
  for (int latency_s = 1; latency_s <= 10; ++latency_s) {
    double total_ms = latency_s * 1000.0;
    double flicker_eff =
        total_ms > overhead_ms ? (total_ms - overhead_ms) / total_ms : 0.0;
    std::printf("%-14d %9.1f%% %7.1f%% %7.1f%% %7.1f%%\n", latency_s, flicker_eff * 100.0,
                100.0 / 3, 100.0 / 5, 100.0 / 7);
    if (crossover3 < 0 && flicker_eff > 1.0 / 3) {
      crossover3 = latency_s;
    }
  }
  PrintRule();
  std::printf("Flicker beats 3-way replication from ~%.0f s user latency\n", crossover3);
  std::printf("(paper: \"a two second user latency allows a more efficient distributed\n"
              " application than replicating to three or more machines\")\n");
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunFigure8("Broadcom BCM0102", flicker::DefaultTimingModel());
  flicker::RunFigure8("Infineon", flicker::InfineonTimingModel());
  return 0;
}
