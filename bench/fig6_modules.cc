// Figure 6 reproduction: the PAL module inventory (LOC and binary size per
// module), plus the composed TCB of each application PAL in this repo.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/ca.h"
#include "src/apps/distributed.h"
#include "src/apps/hello.h"
#include "src/apps/rootkit_detector.h"
#include "src/apps/ssh.h"
#include "src/slb/module_registry.h"
#include "src/slb/slb_layout.h"

namespace flicker {
namespace {

void PrintModuleTable() {
  PrintHeader("Figure 6: PAL library modules (paper-reported LOC and size)");
  std::printf("%-22s %8s %10s  %s\n", "module", "LOC", "size (KB)", "properties");
  PrintRule();
  ModuleRegistry registry;
  int total_loc = 0;
  size_t total_bytes = 0;
  for (const PalModule& module : registry.modules()) {
    std::printf("%-22s %8d %10.3f  %s\n", module.name.c_str(), module.lines_of_code,
                module.binary_bytes / 1024.0, module.description.c_str());
    total_loc += module.lines_of_code;
    total_bytes += module.binary_bytes;
  }
  PrintRule();
  std::printf("%-22s %8d %10.3f\n", "total", total_loc, total_bytes / 1024.0);
}

void PrintPalTcb(const char* label, const PalBinary& binary) {
  std::printf("%-24s %8d %10.1f %8u   ", label, binary.tcb.total_lines,
              binary.tcb.total_bytes / 1024.0, binary.measured_length);
  for (const std::string& module : binary.tcb.linked_modules) {
    std::printf("%s; ", module.c_str());
  }
  std::printf("\n");
}

void PrintApplicationTcbs() {
  PrintHeader("Composed application PALs: TCB accounting");
  std::printf("%-24s %8s %10s %8s   %s\n", "PAL", "TCB LOC", "TCB KB", "SLB len", "linked modules");
  PrintRule();

  PrintPalTcb("hello-world", BuildPal(std::make_shared<HelloWorldPal>()).value());
  PrintPalTcb("rootkit-detector", BuildPal(std::make_shared<RootkitDetectorPal>()).value());

  PalBuildOptions stub;
  stub.measurement_stub = true;
  PrintPalTcb("boinc-factoring", BuildPal(std::make_shared<DistributedPal>(), stub).value());
  PrintPalTcb("ssh-password", BuildPal(std::make_shared<SshPal>(), stub).value());
  PrintPalTcb("certificate-authority", BuildPal(std::make_shared<CaPal>(), stub).value());

  PalBuildOptions protected_build;
  protected_build.os_protection = true;
  PrintPalTcb("hello-world + OS prot",
              BuildPal(std::make_shared<HelloWorldPal>(), protected_build).value());

  std::printf("\nThe minimal PAL trusts %d lines - the paper's \"as few as 250\" claim.\n",
              BuildPal(std::make_shared<HelloWorldPal>()).value().tcb.total_lines);
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::PrintModuleTable();
  flicker::PrintApplicationTcbs();
  return 0;
}
