// Host-side throughput of the simulator itself (google-benchmark): how many
// real microseconds one simulated Flicker operation costs. Useful when
// sizing large simulated campaigns (fleet tests, long Table 3 sweeps).

#include <memory>

#include <benchmark/benchmark.h>

#include "src/apps/hello.h"
#include "src/core/flicker_platform.h"
#include "src/crypto/sha1.h"
#include "src/tpm/transport.h"
#include "src/tpm/tpm_util.h"

namespace flicker {
namespace {

void BM_BuildPal(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPal(std::make_shared<HelloWorldPal>()));
  }
}
BENCHMARK(BM_BuildPal);

void BM_FullFlickerSession(benchmark::State& state) {
  FlickerPlatform platform;
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform.ExecuteSession(binary, Bytes()));
  }
}
BENCHMARK(BM_FullFlickerSession)->Unit(benchmark::kMicrosecond);

void BM_TpmSealUnseal(benchmark::State& state) {
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  Bytes auth = Sha1::Digest(BytesOf("bench"));
  Bytes data(64, 0x42);
  for (auto _ : state) {
    Result<SealedBlob> blob = TpmSealData(&client, data, PcrSelection({17}), {}, auth);
    benchmark::DoNotOptimize(TpmUnsealData(&client, blob.value(), auth));
  }
}
BENCHMARK(BM_TpmSealUnseal)->Unit(benchmark::kMicrosecond);

void BM_TpmQuote(benchmark::State& state) {
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  Bytes nonce(20, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Quote(nonce, PcrSelection({17})));
  }
}
BENCHMARK(BM_TpmQuote)->Unit(benchmark::kMicrosecond);

void BM_MachineSkinit(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Machine machine{MachineConfig{}};
    Bytes image(kSlbRegionSize, 0);
    image[0] = 0x00;
    image[1] = 0x10;
    (void)machine.memory()->Write(0x100000, image);
    for (int i = 1; i < machine.num_cpus(); ++i) {
      machine.cpu(i)->state = CpuState::kIdle;
      (void)machine.apic()->SendInitIpi(i);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(machine.Skinit(0, 0x100000));
  }
}
BENCHMARK(BM_MachineSkinit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace flicker

BENCHMARK_MAIN();
