// The concurrent-execution bench: classic whole-machine suspend vs the
// minimal-hypervisor mode, plus the cross-core adversarial campaign.
//
// Part one is the Fig. 9-style app-impact comparison: the same PAL run N
// times in each mode on identical machines, reporting the OS-visible pause
// per session. Classic pauses the machine for the whole session (suspend +
// SKINIT + PAL + resume); concurrent pauses it only for the hypercall and
// world-switch slivers. The bench asserts the headline acceptance
// criterion - at least a 5x reduction in OS-visible pause - and that the
// two modes produce byte-identical outputs and PCR 17 chains.
//
// Part two runs the §13 fleet campaign (src/hv/hv_campaign): Poisson
// session rounds on multi-core machines under continuous OS-driven DMA,
// guest-memory and malicious-hypercall attack. Reports fleet sessions/sec,
// p99 round latency and the typed-denial ledger; accepted_wrong or a
// mistyped denial is an invariant violation (exit 2).
//
// Determinism is part of the contract: the same seed must produce a
// byte-identical BENCH_hv.json run after run - verify.sh --hv runs this
// twice per seed and cmp(1)s the outputs.
//
//   micro_hv                        flagship run, summary to stdout
//   micro_hv --bench_json=PATH      also write the JSON report to PATH
//   micro_hv --seed=N --sessions=N --duration_ms=N --machines=N
//   micro_hv --quiet                short campaign horizon (CI-sized)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/apps/hello.h"
#include "src/core/flicker_platform.h"
#include "src/hv/hv_campaign.h"

namespace flicker {
namespace {

std::string F3(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

struct ModeComparison {
  int sessions = 0;
  double classic_pause_ms_mean = 0;
  double concurrent_pause_ms_mean = 0;
  double classic_total_ms_mean = 0;
  double concurrent_total_ms_mean = 0;
  // The one-time hypervisor SKINIT, amortized across every session until
  // the next reboot; reported separately from the steady-state means.
  double hv_launch_pause_ms = 0;
  bool parity_ok = true;

  double PauseReduction() const {
    return concurrent_pause_ms_mean <= 0 ? 0
                                         : classic_pause_ms_mean / concurrent_pause_ms_mean;
  }
};

// The same PAL, N sessions per mode, on identically configured machines.
// The concurrent platform keeps the default mirrored-PCR config, so the
// comparison also checks the production parity path end to end.
Result<ModeComparison> CompareModes(int sessions) {
  ModeComparison cmp;
  cmp.sessions = sessions;

  Result<PalBinary> built = BuildPal(std::make_shared<HelloWorldPal>());
  if (!built.ok()) {
    return built.status();
  }
  const PalBinary binary = built.take();
  const Bytes inputs = BytesOf("micro-hv-input");

  FlickerPlatformConfig classic_config;
  FlickerPlatform classic(classic_config);
  FlickerPlatformConfig concurrent_config;
  concurrent_config.mode = SessionMode::kConcurrent;
  FlickerPlatform concurrent(concurrent_config);

  // Launch the hypervisor up front: its SKINIT is paid once per boot, so
  // the per-session comparison measures steady state (Fig. 9's regime).
  FLICKER_RETURN_IF_ERROR(concurrent.EnsureHypervisorResident());
  cmp.hv_launch_pause_ms =
      static_cast<double>(concurrent.hypervisor()->stats().os_pause_ns) / 1e6;

  for (int i = 0; i < sessions; ++i) {
    Result<FlickerSessionResult> a = classic.ExecuteSession(binary, inputs);
    if (!a.ok()) {
      return a.status();
    }
    Result<FlickerSessionResult> b = concurrent.ExecuteSession(binary, inputs);
    if (!b.ok()) {
      return b.status();
    }
    cmp.classic_pause_ms_mean += a.value().os_pause_ms;
    cmp.concurrent_pause_ms_mean += b.value().os_pause_ms;
    cmp.classic_total_ms_mean += a.value().session_total_ms;
    cmp.concurrent_total_ms_mean += b.value().session_total_ms;
    if (a.value().record.outputs != b.value().record.outputs ||
        a.value().record.pcr17_final != b.value().record.pcr17_final ||
        a.value().record.pcr17_during_execution != b.value().record.pcr17_during_execution) {
      cmp.parity_ok = false;
    }
  }
  cmp.classic_pause_ms_mean /= sessions;
  cmp.concurrent_pause_ms_mean /= sessions;
  cmp.classic_total_ms_mean /= sessions;
  cmp.concurrent_total_ms_mean /= sessions;
  return cmp;
}

int RunBench(int sessions, const hv::HvCampaignConfig& config, const std::string& json_path) {
  Result<ModeComparison> compared = CompareModes(sessions);
  if (!compared.ok()) {
    std::fprintf(stderr, "mode comparison failed: %s\n", compared.status().ToString().c_str());
    return 1;
  }
  const ModeComparison& cmp = compared.value();

  std::printf("hv: %d sessions per mode (hello-world PAL)\n", cmp.sessions);
  std::printf("  classic:    pause %.3f ms/session (total %.3f ms)\n",
              cmp.classic_pause_ms_mean, cmp.classic_total_ms_mean);
  std::printf("  concurrent: pause %.3f ms/session (total %.3f ms, one-time launch %.3f ms)\n",
              cmp.concurrent_pause_ms_mean, cmp.concurrent_total_ms_mean,
              cmp.hv_launch_pause_ms);
  std::printf("  OS-visible pause reduction: %.1fx, mode parity %s\n", cmp.PauseReduction(),
              cmp.parity_ok ? "ok" : "VIOLATED");

  Result<hv::HvCampaignStats> run = hv::RunHvCampaign(config);
  if (!run.ok()) {
    std::fprintf(stderr, "hv campaign failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const hv::HvCampaignStats& stats = run.value();

  std::printf("hv campaign: %d machines x %d cores, %.0f ms horizon, seed %llu\n",
              config.num_machines, config.num_cpus, config.duration_ms,
              static_cast<unsigned long long>(config.seed));
  std::printf("  rounds: %llu injected, %llu completed, %llu failed (%llu dual, %llu attacked)\n",
              static_cast<unsigned long long>(stats.rounds_injected),
              static_cast<unsigned long long>(stats.rounds_completed),
              static_cast<unsigned long long>(stats.rounds_failed),
              static_cast<unsigned long long>(stats.dual_rounds),
              static_cast<unsigned long long>(stats.attacked_rounds));
  std::printf("  fleet: %.1f sessions/sec, round latency p50 %.3f ms, p99 %.3f ms\n",
              stats.SessionsPerSecond(), stats.LatencyPercentileMs(0.50),
              stats.LatencyPercentileMs(0.99));
  std::printf("  attacks: %llu launched, %llu denied, %llu mistyped, accepted_wrong=%llu\n",
              static_cast<unsigned long long>(stats.attacks_launched),
              static_cast<unsigned long long>(stats.attacks_denied),
              static_cast<unsigned long long>(stats.attacks_mistyped),
              static_cast<unsigned long long>(stats.accepted_wrong));
  std::printf("  protections: %llu DMA blocked, %llu NPT faults; pause %.3f ms vs classic-equiv "
              "%.3f ms (%.1fx)\n",
              static_cast<unsigned long long>(stats.dma_blocked),
              static_cast<unsigned long long>(stats.npt_blocked), stats.os_pause_ms_total,
              stats.classic_equiv_pause_ms_total, stats.PauseReduction());
  std::printf("  engine: %llu events, max heap %zu, order digest 0x%016llx\n",
              static_cast<unsigned long long>(stats.events_processed), stats.max_heap,
              static_cast<unsigned long long>(stats.order_digest));

  bool violated = false;
  if (!cmp.parity_ok) {
    std::fprintf(stderr, "INVARIANT VIOLATION: classic and concurrent sessions diverged\n");
    violated = true;
  }
  if (cmp.PauseReduction() < 5.0) {
    std::fprintf(stderr, "INVARIANT VIOLATION: pause reduction %.1fx is below the 5x floor\n",
                 cmp.PauseReduction());
    violated = true;
  }
  if (stats.accepted_wrong != 0 || stats.attacks_mistyped != 0) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: %llu attacks accepted, %llu denied for the wrong reason\n",
                 static_cast<unsigned long long>(stats.accepted_wrong),
                 static_cast<unsigned long long>(stats.attacks_mistyped));
    violated = true;
  }
  if (violated) {
    return 2;
  }

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::string json = "{\n";
    json += "  \"comparison\": {\"sessions_per_mode\": " + std::to_string(cmp.sessions);
    json += ", \"classic_pause_ms\": " + F3(cmp.classic_pause_ms_mean);
    json += ", \"concurrent_pause_ms\": " + F3(cmp.concurrent_pause_ms_mean);
    json += ", \"classic_total_ms\": " + F3(cmp.classic_total_ms_mean);
    json += ", \"concurrent_total_ms\": " + F3(cmp.concurrent_total_ms_mean);
    json += ", \"hv_launch_pause_ms\": " + F3(cmp.hv_launch_pause_ms);
    json += ", \"pause_reduction\": " + F3(cmp.PauseReduction());
    json += std::string(", \"parity\": ") + (cmp.parity_ok ? "true" : "false") + "},\n";
    json += "  \"adversarial_campaign\": ";
    json += stats.ToJson(config);
    json += "}\n";
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  flicker::hv::HvCampaignConfig config;
  int sessions = 20;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--bench_json=", 13) == 0) {
      json_path = arg + 13;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--sessions=", 11) == 0) {
      sessions = std::atoi(arg + 11);
    } else if (std::strncmp(arg, "--duration_ms=", 14) == 0) {
      config.duration_ms = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--machines=", 11) == 0) {
      config.num_machines = std::atoi(arg + 11);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      config.duration_ms = 6000.0;
      config.num_machines = 2;
      sessions = 5;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 1;
    }
  }
  return flicker::RunBench(sessions, config, json_path);
}
