// Table 3 reproduction: impact of periodic rootkit detection on a kernel
// build. The paper builds Linux 2.6.20 (7:22.6 baseline) while the detector
// runs every 5:00 / 3:00 / 2:00 / 1:00 / 0:30; the impact is lost in noise.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/rootkit_detector.h"

namespace flicker {
namespace {

constexpr double kBaselineBuildSeconds = 442.6;  // 7:22.6.

// Simulates the build as BSP-bound work; every `period_s` the flicker-module
// suspends the OS for one detection session (measured for real on the
// platform). The quote runs on the untrusted OS concurrently with the build
// (it is TPM-bound, not CPU-bound), so only the session pause costs time.
double SimulateBuild(double period_s) {
  FlickerPlatform platform;
  PalBinary binary = BuildPal(std::make_shared<RootkitDetectorPal>()).value();
  Bytes inputs = platform.kernel()->SerializeRegions();

  double work_left_s = kBaselineBuildSeconds;
  double build_elapsed_s = 0;
  double until_detection_s = period_s;
  while (work_left_s > 0) {
    double slice = period_s > 0 && until_detection_s < work_left_s ? until_detection_s
                                                                   : work_left_s;
    work_left_s -= slice;
    build_elapsed_s += slice;
    until_detection_s -= slice;
    if (period_s > 0 && until_detection_s <= 0 && work_left_s > 0) {
      Result<FlickerSessionResult> session = platform.ExecuteSession(binary, inputs);
      if (session.ok()) {
        build_elapsed_s += session.value().session_total_ms / 1000.0;
      }
      until_detection_s = period_s;
    }
  }
  return build_elapsed_s;
}

void RunTable3() {
  PrintHeader("Table 3: kernel build time vs rootkit-detection period");
  std::printf("%-18s %14s %14s %10s\n", "detection period", "paper [m:s]", "measured [m:s]",
              "overhead");
  PrintRule();
  struct Row {
    const char* label;
    double period_s;
    const char* paper;
  };
  for (const Row& row : {Row{"No Detection", 0, "7:22.6"}, Row{"5:00", 300, "7:21.4"},
                         Row{"3:00", 180, "7:21.4"}, Row{"2:00", 120, "7:21.8"},
                         Row{"1:00", 60, "7:21.9"}, Row{"0:30", 30, "7:22.6"}}) {
    double measured = SimulateBuild(row.period_s);
    std::printf("%-18s %14s %14s %+9.2f%%\n", row.label, row.paper,
                FormatMinSec(measured).c_str(),
                (measured - kBaselineBuildSeconds) / kBaselineBuildSeconds * 100.0);
  }
  std::printf("(paper: differences are within measurement noise - std dev up to 2.6 s;\n"
              " our deterministic simulator shows the true added cost: ~40 ms/session)\n");
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunTable3();
  return 0;
}
