// Table 2 reproduction: SKINIT latency as a function of SLB size, plus the
// §7.2 measurement-stub optimization (4736-byte stub -> ~14 ms SKINIT).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/hello.h"
#include "src/core/flicker_platform.h"

namespace flicker {
namespace {

// Measures a raw SKINIT of `kb` KB on a fresh machine.
double MeasureSkinit(size_t kb) {
  Machine machine{MachineConfig{}};
  // The SLB length field is 16-bit, so "64 KB" caps at 0xfffc (the paper's
  // 64 KB row is the same 4-bytes-short region).
  size_t requested = kb == 0 ? 4 : kb * 1024;
  uint16_t length = requested >= 0x10000 ? 0xfffc : static_cast<uint16_t>(requested);
  Bytes image(kSlbRegionSize, 0);
  image[0] = static_cast<uint8_t>(length);
  image[1] = static_cast<uint8_t>(length >> 8);
  image[2] = 0;
  image[3] = 0;
  if (machine.memory()->Write(0x100000, image).ok()) {
    for (int i = 1; i < machine.num_cpus(); ++i) {
      machine.cpu(i)->state = CpuState::kIdle;
      (void)machine.apic()->SendInitIpi(i);
    }
    double before = machine.clock()->NowMillis();
    if (machine.Skinit(0, 0x100000).ok()) {
      return machine.clock()->NowMillis() - before;
    }
  }
  return -1;
}

void RunTable2() {
  PrintHeader("Table 2: SKINIT latency vs SLB size (Broadcom, 2.76 ms/KB transfer)");
  std::printf("%-14s %10s %12s\n", "SLB size (KB)", "paper (ms)", "measured (ms)");
  PrintRule();
  struct Row {
    size_t kb;
    double paper_ms;
  };
  for (const Row& row : {Row{0, 0.0}, Row{4, 11.9}, Row{16, 45.0}, Row{32, 89.2},
                         Row{64, 177.5}}) {
    std::printf("%-14zu %10.1f %12.1f\n", row.kb, row.paper_ms, MeasureSkinit(row.kb));
  }
  std::printf("(the 0 KB row bounds the CPU-side state change; measured includes the\n"
              " minimal 4-byte header transfer)\n");
}

void RunStubOptimization() {
  PrintHeader("Sec 7.2: measurement-stub optimization (4736-byte stub SLB)");
  std::printf("%-44s %10s %12s\n", "configuration", "paper (ms)", "measured (ms)");
  PrintRule();

  // Full 64 KB SLB without the stub.
  double full = MeasureSkinit(64);
  std::printf("%-44s %10.1f %12.1f\n", "SKINIT, full 64 KB SLB", 177.5, full);

  // Stub build: SKINIT streams only 4736 bytes; the stub hashes the 64 KB
  // region on the main CPU inside the session.
  FlickerPlatform platform;
  PalBuildOptions options;
  options.measurement_stub = true;
  PalBinary binary = BuildPal(std::make_shared<HelloWorldPal>(), options).value();
  Result<FlickerSessionResult> session = platform.ExecuteSession(binary, Bytes());
  if (session.ok()) {
    std::printf("%-44s %10.1f %12.1f\n", "SKINIT, 4736-byte measurement stub", 14.0,
                session.value().skinit_ms);
    std::printf("%-44s %10s %12.2f\n", "  + stub's CPU hash of 64 KB region", "-",
                session.value().record.stub_hash_ms);
    std::printf("savings per session: %.1f ms (paper: 164 of 176 ms)\n",
                full - session.value().skinit_ms);
  }
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunTable2();
  flicker::RunStubOptimization();
  return 0;
}
