// Host-side microbenchmarks of the TPM byte-frame transport: what does
// marshalling a command, pushing it through TpmTransport and unmarshalling
// the response cost in real wall time, per command?
//
// The transport exists to centralize locality policy, tracing and fault
// injection - it must be free at the timescale the simulation models. The
// --bench_json mode asserts exactly that: the measured wall-clock cost of a
// full driver round trip stays under 1% of the *modeled* Broadcom latency of
// the same command (Table 1), for every command benchmarked. A regression
// that makes the choke point expensive fails the bench, not just a number.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/bytes.h"
#include "src/crypto/sha1.h"
#include "src/hw/clock.h"
#include "src/hw/timing.h"
#include "src/tpm/commands.h"
#include "src/tpm/tpm.h"
#include "src/tpm/tpm_util.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

struct Rig {
  SimClock clock;
  Tpm tpm;
  TpmTransport transport;
  TpmClient client;

  Rig() : tpm(&clock, BroadcomBcm0102Profile()), transport(&tpm), client(&transport) {}
};

// ---- google-benchmark section (table mode) ----

void BM_BuildParseGetRandomFrame(benchmark::State& state) {
  for (auto _ : state) {
    Bytes frame = BuildGetRandom(20);
    benchmark::DoNotOptimize(ParseCommandFrame(frame));
  }
}
BENCHMARK(BM_BuildParseGetRandomFrame);

void BM_BuildParseExtendFrame(benchmark::State& state) {
  Bytes measurement(kPcrSize, 0xAB);
  for (auto _ : state) {
    Bytes frame = BuildPcrExtend(17, measurement);
    benchmark::DoNotOptimize(ParseCommandFrame(frame));
  }
}
BENCHMARK(BM_BuildParseExtendFrame);

void BM_TransportPcrRead(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.client.PcrRead(0));
  }
}
BENCHMARK(BM_TransportPcrRead);

void BM_TransportPcrExtend(benchmark::State& state) {
  Rig rig;
  Bytes measurement(kPcrSize, 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.client.PcrExtend(0, measurement));
  }
}
BENCHMARK(BM_TransportPcrExtend);

void BM_TransportGetRandom(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.client.GetRandom(20));
  }
}
BENCHMARK(BM_TransportGetRandom);

// ---- JSON mode: fixed-schema report + <1% overhead assertion ----

template <typename Fn>
double MeasureMicrosPerOp(Fn&& fn, double min_seconds, int max_iters) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up iteration, untimed.
  int iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds && iters < max_iters);
  return elapsed / iters * 1e6;
}

int RunJsonBench(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_tpm_transport: cannot open %s for writing\n", path.c_str());
    return 1;
  }

  Rig rig;
  const TpmTimingProfile profile = BroadcomBcm0102Profile();
  Bytes measurement(kPcrSize, 0xEF);

  struct Row {
    const char* key;
    double wall_us;     // Measured driver round trip, real time.
    double modeled_ms;  // Calibrated Broadcom command latency.
  };
  Row rows[] = {
      {"pcr_read",
       MeasureMicrosPerOp([&] { benchmark::DoNotOptimize(rig.client.PcrRead(0)); }, 0.5, 200000),
       profile.pcr_read_ms},
      {"pcr_extend",
       MeasureMicrosPerOp(
           [&] { benchmark::DoNotOptimize(rig.client.PcrExtend(0, measurement)); }, 0.5, 200000),
       profile.pcr_extend_ms},
      {"get_random",
       MeasureMicrosPerOp([&] { benchmark::DoNotOptimize(rig.client.GetRandom(20)); }, 0.5,
                          200000),
       profile.get_random_ms},
  };

  // The full round trip includes the device model's work; the overhead bound
  // still must hold because the modeled latency is the budget a real driver
  // has while the physical TPM grinds.
  bool within_budget = true;
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"flicker-bench-tpm-v1\",\n"
               "  \"overhead_budget_percent\": 1.0,\n"
               "  \"commands\": {\n");
  for (size_t i = 0; i < sizeof(rows) / sizeof(rows[0]); ++i) {
    double overhead_percent = rows[i].wall_us / (rows[i].modeled_ms * 1000.0) * 100.0;
    within_budget = within_budget && overhead_percent < 1.0;
    std::fprintf(out,
                 "    \"%s\": {\"wall_us\": %.3f, \"modeled_ms\": %.1f, "
                 "\"overhead_percent\": %.4f}%s\n",
                 rows[i].key, rows[i].wall_us, rows[i].modeled_ms, overhead_percent,
                 i + 1 < sizeof(rows) / sizeof(rows[0]) ? "," : "");
    std::printf("%-10s: %8.3f us real vs %6.1f ms modeled (%.4f%% overhead)\n", rows[i].key,
                rows[i].wall_us, rows[i].modeled_ms, overhead_percent);
  }
  std::fprintf(out,
               "  },\n"
               "  \"within_budget\": %s\n"
               "}\n",
               within_budget ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s (within_budget=%s)\n", path.c_str(), within_budget ? "true" : "false");
  return within_budget ? 0 : 2;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--bench_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return flicker::RunJsonBench(argv[i] + sizeof(kFlag) - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
