// Host-side microbenchmarks (google-benchmark) of the from-scratch crypto
// substrate. These measure real wall time of the primitives every simulated
// TPM/PAL operation executes, complementing the calibrated simulated-time
// benches.

#include <benchmark/benchmark.h>

#include "src/common/bytes.h"
#include "src/crypto/aes.h"
#include "src/crypto/bigint.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/crypto/md5.h"
#include "src/crypto/md5crypt.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"

namespace flicker {
namespace {

void BM_Sha1(benchmark::State& state) {
  Drbg rng(1);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Drbg rng(2);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  Drbg rng(3);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(4096)->Arg(65536);

void BM_Md5(benchmark::State& state) {
  Drbg rng(4);
  Bytes data = rng.Generate(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Md5);

void BM_Md5Crypt(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5Crypt("correct horse battery staple", "a1b2c3d4"));
  }
}
BENCHMARK(BM_Md5Crypt);

void BM_HmacSha1(benchmark::State& state) {
  Drbg rng(5);
  Bytes key = rng.Generate(20);
  Bytes data = rng.Generate(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha1(key, data));
  }
}
BENCHMARK(BM_HmacSha1);

void BM_AesCbcEncrypt(benchmark::State& state) {
  Drbg rng(6);
  Aes aes(rng.Generate(16));
  Bytes iv = rng.Generate(16);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes.EncryptCbc(data, iv));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(1024)->Arg(16384);

void BM_BigIntModExp1024(benchmark::State& state) {
  Drbg rng(7);
  BigInt base = BigInt::FromBytesBe(rng.Generate(128));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(128));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(128));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExp(base, exp, mod));
  }
}
BENCHMARK(BM_BigIntModExp1024);

void BM_RsaKeygen1024(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    Drbg rng(seed++);
    benchmark::DoNotOptimize(RsaGenerateKey(1024, &rng));
  }
}
BENCHMARK(BM_RsaKeygen1024)->Unit(benchmark::kMillisecond);

void BM_RsaDecrypt1024(benchmark::State& state) {
  Drbg rng(9);
  RsaPrivateKey key = RsaGenerateKey(1024, &rng);
  Bytes ct = RsaEncryptPkcs1(key.pub, BytesOf("payload"), &rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaDecryptPkcs1(key, ct));
  }
}
BENCHMARK(BM_RsaDecrypt1024);

void BM_RsaSignSha1_1024(benchmark::State& state) {
  Drbg rng(10);
  RsaPrivateKey key = RsaGenerateKey(1024, &rng);
  Bytes msg = BytesOf("certificate payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSignSha1(key, msg));
  }
}
BENCHMARK(BM_RsaSignSha1_1024);

}  // namespace
}  // namespace flicker

BENCHMARK_MAIN();
