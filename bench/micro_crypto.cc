// Host-side microbenchmarks (google-benchmark) of the from-scratch crypto
// substrate. These measure real wall time of the primitives every simulated
// TPM/PAL operation executes, complementing the calibrated simulated-time
// benches.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/bytes.h"
#include "src/crypto/aes.h"
#include "src/crypto/bigint.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/crypto/md5.h"
#include "src/crypto/md5crypt.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"
#include "src/hw/clock.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

const RsaPrivateKey& Rsa2048Key() {
  static const RsaPrivateKey key = [] {
    Drbg rng(20260805);
    return RsaGenerateKey(2048, &rng);
  }();
  return key;
}

void BM_Sha1(benchmark::State& state) {
  Drbg rng(1);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Drbg rng(2);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  Drbg rng(3);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(4096)->Arg(65536);

void BM_Md5(benchmark::State& state) {
  Drbg rng(4);
  Bytes data = rng.Generate(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Md5);

void BM_Md5Crypt(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5Crypt("correct horse battery staple", "a1b2c3d4"));
  }
}
BENCHMARK(BM_Md5Crypt);

void BM_HmacSha1(benchmark::State& state) {
  Drbg rng(5);
  Bytes key = rng.Generate(20);
  Bytes data = rng.Generate(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha1(key, data));
  }
}
BENCHMARK(BM_HmacSha1);

void BM_AesCbcEncrypt(benchmark::State& state) {
  Drbg rng(6);
  Aes aes(rng.Generate(16));
  Bytes iv = rng.Generate(16);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes.EncryptCbc(data, iv));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(1024)->Arg(16384);

void BM_BigIntModExp1024(benchmark::State& state) {
  Drbg rng(7);
  BigInt base = BigInt::FromBytesBe(rng.Generate(128));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(128));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(128));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExp(base, exp, mod));
  }
}
BENCHMARK(BM_BigIntModExp1024);

void BM_ModExp2048_Montgomery(benchmark::State& state) {
  Drbg rng(11);
  BigInt base = BigInt::FromBytesBe(rng.Generate(256));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(256));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(256));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExp(base, exp, mod));
  }
}
BENCHMARK(BM_ModExp2048_Montgomery)->Unit(benchmark::kMillisecond);

void BM_ModExp2048_Reference(benchmark::State& state) {
  Drbg rng(11);
  BigInt base = BigInt::FromBytesBe(rng.Generate(256));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(256));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(256));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExpReference(base, exp, mod));
  }
}
BENCHMARK(BM_ModExp2048_Reference)->Unit(benchmark::kMillisecond);

void BM_RsaSignSha1_2048(benchmark::State& state) {
  const RsaPrivateKey& key = Rsa2048Key();
  Bytes msg = BytesOf("certificate payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSignSha1(key, msg));
  }
}
BENCHMARK(BM_RsaSignSha1_2048)->Unit(benchmark::kMillisecond);

void BM_TpmQuoteEndToEnd(benchmark::State& state) {
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  Bytes nonce(20, 1);
  PcrSelection selection({17});
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Quote(nonce, selection));
  }
}
BENCHMARK(BM_TpmQuoteEndToEnd)->Unit(benchmark::kMillisecond);

void BM_RsaKeygen1024(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    Drbg rng(seed++);
    benchmark::DoNotOptimize(RsaGenerateKey(1024, &rng));
  }
}
BENCHMARK(BM_RsaKeygen1024)->Unit(benchmark::kMillisecond);

void BM_RsaDecrypt1024(benchmark::State& state) {
  Drbg rng(9);
  RsaPrivateKey key = RsaGenerateKey(1024, &rng);
  Bytes ct = RsaEncryptPkcs1(key.pub, BytesOf("payload"), &rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaDecryptPkcs1(key, ct));
  }
}
BENCHMARK(BM_RsaDecrypt1024);

void BM_RsaSignSha1_1024(benchmark::State& state) {
  Drbg rng(10);
  RsaPrivateKey key = RsaGenerateKey(1024, &rng);
  Bytes msg = BytesOf("certificate payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSignSha1(key, msg));
  }
}
BENCHMARK(BM_RsaSignSha1_1024);

// --- machine-readable mode -------------------------------------------------
//
// `micro_crypto --bench_json=PATH` skips google-benchmark and writes a small
// fixed-schema JSON report (ops/sec for the PR-relevant hot paths plus the
// Montgomery-vs-reference speedup and a bit-exactness check) that CI and the
// bench_json CMake target consume.

// Runs `fn` until `min_seconds` of wall time or `max_iters` iterations have
// elapsed (whichever comes first, but always at least one), returns ops/sec.
template <typename Fn>
double MeasureOpsPerSec(Fn&& fn, double min_seconds, int max_iters) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up iteration, untimed.
  int iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds && iters < max_iters);
  return iters / elapsed;
}

int RunJsonBench(const std::string& path) {
  // Open up front so a bad path fails before minutes of measurement.
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_crypto: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  Drbg rng(11);
  BigInt base = BigInt::FromBytesBe(rng.Generate(256));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(256));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(256));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }

  // Bit-exactness proof on the benchmarked operands plus a short sweep.
  bool bit_exact = BigInt::ModExp(base, exp, mod) == BigInt::ModExpReference(base, exp, mod);
  Drbg sweep(0xd1ff);
  for (int i = 0; i < 16 && bit_exact; ++i) {
    BigInt b = BigInt::FromBytesBe(sweep.Generate(96));
    BigInt e = BigInt::FromBytesBe(sweep.Generate(96));
    BigInt m = BigInt::FromBytesBe(sweep.Generate(96));
    if (!m.IsOdd()) {
      m = m + BigInt(1);
    }
    bit_exact = BigInt::ModExp(b, e, m) == BigInt::ModExpReference(b, e, m);
  }

  double mont_ops = MeasureOpsPerSec(
      [&] { benchmark::DoNotOptimize(BigInt::ModExp(base, exp, mod)); }, 1.0, 2000);
  double ref_ops = MeasureOpsPerSec(
      [&] { benchmark::DoNotOptimize(BigInt::ModExpReference(base, exp, mod)); }, 2.0, 200);

  const RsaPrivateKey& key = Rsa2048Key();
  Bytes msg = BytesOf("certificate payload");
  double sign_ops =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(RsaSignSha1(key, msg)); }, 1.0, 2000);

  Drbg sha_rng(1);
  Bytes block = sha_rng.Generate(65536);
  double sha_ops =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(Sha1::Digest(block)); }, 1.0, 20000);

  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  Bytes nonce(20, 1);
  PcrSelection selection({17});
  double quote_ops =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(client.Quote(nonce, selection)); }, 1.0, 2000);

  std::fprintf(out,
               "{\n"
               "  \"schema\": \"flicker-bench-crypto-v1\",\n"
               "  \"unit\": \"ops_per_sec\",\n"
               "  \"modexp2048_montgomery\": %.3f,\n"
               "  \"modexp2048_reference\": %.3f,\n"
               "  \"modexp2048_speedup\": %.2f,\n"
               "  \"modexp2048_bit_exact\": %s,\n"
               "  \"rsa2048_crt_sign\": %.3f,\n"
               "  \"sha1_64kb\": %.3f,\n"
               "  \"tpm_quote_end_to_end\": %.3f\n"
               "}\n",
               mont_ops, ref_ops, mont_ops / ref_ops, bit_exact ? "true" : "false", sign_ops,
               sha_ops, quote_ops);
  std::fclose(out);
  std::printf("modexp2048: montgomery %.1f ops/s, reference %.1f ops/s (%.1fx, bit_exact=%s)\n",
              mont_ops, ref_ops, mont_ops / ref_ops, bit_exact ? "true" : "false");
  std::printf("rsa2048 CRT sign: %.1f ops/s; sha1 64KB: %.1f ops/s; quote: %.1f ops/s\n",
              sign_ops, sha_ops, quote_ops);
  std::printf("wrote %s\n", path.c_str());
  return bit_exact ? 0 : 2;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--bench_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return flicker::RunJsonBench(argv[i] + sizeof(kFlag) - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
