// Host-side microbenchmarks (google-benchmark) of the from-scratch crypto
// substrate. These measure real wall time of the primitives every simulated
// TPM/PAL operation executes, complementing the calibrated simulated-time
// benches.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include <vector>

#include "src/attest/verifier.h"
#include "src/common/bytes.h"
#include "src/crypto/aes.h"
#include "src/crypto/bigint.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/crypto/md5.h"
#include "src/crypto/md5crypt.h"
#include "src/crypto/merkle.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"
#include "src/crypto/sha_multibuf.h"
#include "src/hw/clock.h"
#include "src/os/tqd.h"
#include "src/tpm/transport.h"

namespace flicker {
namespace {

const RsaPrivateKey& Rsa2048Key() {
  static const RsaPrivateKey key = [] {
    Drbg rng(20260805);
    return RsaGenerateKey(2048, &rng);
  }();
  return key;
}

void BM_Sha1(benchmark::State& state) {
  Drbg rng(1);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Drbg rng(2);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  Drbg rng(3);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(4096)->Arg(65536);

// Lane scaling of the multi-buffer engine: batch size 1 degenerates to the
// scalar path; 4/8 fill one SSE2/AVX2 vector; 32 shows steady-state
// throughput over several passes.
void BM_Sha1MultiBuf64Kb(benchmark::State& state) {
  Drbg rng(21);
  std::vector<Bytes> messages;
  for (int i = 0; i < state.range(0); ++i) {
    messages.push_back(rng.Generate(65536));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1DigestMany(messages));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0) * 65536);
}
BENCHMARK(BM_Sha1MultiBuf64Kb)->Arg(1)->Arg(4)->Arg(8)->Arg(32);

void BM_Sha256MultiBuf64Kb(benchmark::State& state) {
  Drbg rng(22);
  std::vector<Bytes> messages;
  for (int i = 0; i < state.range(0); ++i) {
    messages.push_back(rng.Generate(65536));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256DigestMany(messages));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0) * 65536);
}
BENCHMARK(BM_Sha256MultiBuf64Kb)->Arg(1)->Arg(4)->Arg(8)->Arg(32);

void BM_Md5(benchmark::State& state) {
  Drbg rng(4);
  Bytes data = rng.Generate(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Md5);

void BM_Md5Crypt(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5Crypt("correct horse battery staple", "a1b2c3d4"));
  }
}
BENCHMARK(BM_Md5Crypt);

void BM_HmacSha1(benchmark::State& state) {
  Drbg rng(5);
  Bytes key = rng.Generate(20);
  Bytes data = rng.Generate(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha1(key, data));
  }
}
BENCHMARK(BM_HmacSha1);

void BM_AesCbcEncrypt(benchmark::State& state) {
  Drbg rng(6);
  Aes aes(rng.Generate(16));
  Bytes iv = rng.Generate(16);
  Bytes data = rng.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes.EncryptCbc(data, iv));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(1024)->Arg(16384);

void BM_BigIntModExp1024(benchmark::State& state) {
  Drbg rng(7);
  BigInt base = BigInt::FromBytesBe(rng.Generate(128));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(128));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(128));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExp(base, exp, mod));
  }
}
BENCHMARK(BM_BigIntModExp1024);

void BM_ModExp2048_Montgomery(benchmark::State& state) {
  Drbg rng(11);
  BigInt base = BigInt::FromBytesBe(rng.Generate(256));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(256));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(256));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExp(base, exp, mod));
  }
}
BENCHMARK(BM_ModExp2048_Montgomery)->Unit(benchmark::kMillisecond);

void BM_ModExp2048_Reference(benchmark::State& state) {
  Drbg rng(11);
  BigInt base = BigInt::FromBytesBe(rng.Generate(256));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(256));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(256));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExpReference(base, exp, mod));
  }
}
BENCHMARK(BM_ModExp2048_Reference)->Unit(benchmark::kMillisecond);

void BM_RsaSignSha1_2048(benchmark::State& state) {
  const RsaPrivateKey& key = Rsa2048Key();
  Bytes msg = BytesOf("certificate payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSignSha1(key, msg));
  }
}
BENCHMARK(BM_RsaSignSha1_2048)->Unit(benchmark::kMillisecond);

void BM_TpmQuoteEndToEnd(benchmark::State& state) {
  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  Bytes nonce(20, 1);
  PcrSelection selection({17});
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Quote(nonce, selection));
  }
}
BENCHMARK(BM_TpmQuoteEndToEnd)->Unit(benchmark::kMillisecond);

// One full batch-quote round: K challenges coalesced by the daemon, ONE TPM
// quote over the batch's Merkle root, then the verifier-side crypto for all
// K slices - a root recomputation per auth path and one multi-buffer batched
// RSA verify. Returns false if any slice fails to verify, so a bench run
// doubles as a correctness check.
bool RunBatchQuoteRound(TpmQuoteDaemon* tqd, const std::vector<Bytes>& nonces) {
  PcrSelection selection({17});
  for (const Bytes& nonce : nonces) {
    if (!tqd->SubmitBatched(nonce, selection).ok()) {
      return false;
    }
  }
  std::vector<BatchQuoteResponse> slices;
  if (!tqd->FlushReadyBatches(&slices, /*force=*/true).ok() || slices.size() != nonces.size()) {
    return false;
  }
  Result<RsaPublicKey> aik = RsaPublicKey::Deserialize(slices[0].response.aik_public);
  if (!aik.ok()) {
    return false;
  }
  std::vector<Bytes> messages;
  std::vector<Bytes> signatures;
  for (const BatchQuoteResponse& slice : slices) {
    Bytes root = MerkleTree::RootFromPath(slice.nonce, slice.path);
    Bytes composite = RecomputeQuoteComposite(slice.response.quote);
    Bytes info = BytesOf("QUOT");
    info.insert(info.end(), composite.begin(), composite.end());
    info.insert(info.end(), root.begin(), root.end());
    messages.push_back(std::move(info));
    signatures.push_back(slice.response.quote.signature);
  }
  std::vector<bool> verdicts = RsaVerifySha1Batch(aik.value(), messages, signatures);
  for (bool verdict : verdicts) {
    if (!verdict) {
      return false;
    }
  }
  return true;
}

void BM_BatchQuote32Verified(benchmark::State& state) {
  Machine machine;
  TqdConfig config;
  config.max_batch_size = 32;
  TpmQuoteDaemon tqd(&machine, config);
  Drbg rng(23);
  std::vector<Bytes> nonces;
  for (int i = 0; i < 32; ++i) {
    nonces.push_back(rng.Generate(20));
  }
  for (auto _ : state) {
    if (!RunBatchQuoteRound(&tqd, nonces)) {
      state.SkipWithError("batch quote round failed verification");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_BatchQuote32Verified)->Unit(benchmark::kMillisecond);

void BM_RsaKeygen1024(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    Drbg rng(seed++);
    benchmark::DoNotOptimize(RsaGenerateKey(1024, &rng));
  }
}
BENCHMARK(BM_RsaKeygen1024)->Unit(benchmark::kMillisecond);

void BM_RsaDecrypt1024(benchmark::State& state) {
  Drbg rng(9);
  RsaPrivateKey key = RsaGenerateKey(1024, &rng);
  Bytes ct = RsaEncryptPkcs1(key.pub, BytesOf("payload"), &rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaDecryptPkcs1(key, ct));
  }
}
BENCHMARK(BM_RsaDecrypt1024);

void BM_RsaSignSha1_1024(benchmark::State& state) {
  Drbg rng(10);
  RsaPrivateKey key = RsaGenerateKey(1024, &rng);
  Bytes msg = BytesOf("certificate payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSignSha1(key, msg));
  }
}
BENCHMARK(BM_RsaSignSha1_1024);

// --- machine-readable mode -------------------------------------------------
//
// `micro_crypto --bench_json=PATH` skips google-benchmark and writes a small
// fixed-schema JSON report (ops/sec for the PR-relevant hot paths plus the
// Montgomery-vs-reference speedup and a bit-exactness check) that CI and the
// bench_json CMake target consume.

// Runs `fn` until `min_seconds` of wall time or `max_iters` iterations have
// elapsed (whichever comes first, but always at least one), returns ops/sec.
template <typename Fn>
double MeasureOpsPerSec(Fn&& fn, double min_seconds, int max_iters) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up iteration, untimed.
  int iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds && iters < max_iters);
  return iters / elapsed;
}

int RunJsonBench(const std::string& path) {
  // Open up front so a bad path fails before minutes of measurement.
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_crypto: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  Drbg rng(11);
  BigInt base = BigInt::FromBytesBe(rng.Generate(256));
  BigInt exp = BigInt::FromBytesBe(rng.Generate(256));
  BigInt mod = BigInt::FromBytesBe(rng.Generate(256));
  if (!mod.IsOdd()) {
    mod = mod + BigInt(1);
  }

  // Bit-exactness proof on the benchmarked operands plus a short sweep.
  bool bit_exact = BigInt::ModExp(base, exp, mod) == BigInt::ModExpReference(base, exp, mod);
  Drbg sweep(0xd1ff);
  for (int i = 0; i < 16 && bit_exact; ++i) {
    BigInt b = BigInt::FromBytesBe(sweep.Generate(96));
    BigInt e = BigInt::FromBytesBe(sweep.Generate(96));
    BigInt m = BigInt::FromBytesBe(sweep.Generate(96));
    if (!m.IsOdd()) {
      m = m + BigInt(1);
    }
    bit_exact = BigInt::ModExp(b, e, m) == BigInt::ModExpReference(b, e, m);
  }

  double mont_ops = MeasureOpsPerSec(
      [&] { benchmark::DoNotOptimize(BigInt::ModExp(base, exp, mod)); }, 1.0, 2000);
  double ref_ops = MeasureOpsPerSec(
      [&] { benchmark::DoNotOptimize(BigInt::ModExpReference(base, exp, mod)); }, 2.0, 200);

  const RsaPrivateKey& key = Rsa2048Key();
  Bytes msg = BytesOf("certificate payload");
  double sign_ops =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(RsaSignSha1(key, msg)); }, 1.0, 2000);

  Drbg sha_rng(1);
  Bytes block = sha_rng.Generate(65536);
  double sha_ops =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(Sha1::Digest(block)); }, 1.0, 20000);
  double sha256_ops =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(Sha256::Digest(block)); }, 1.0, 20000);

  // Multi-buffer lane scaling: a full vector of 64 KB messages per call.
  // Messages/sec divided by the scalar one-shot rate is the SIMD speedup
  // (1.0 by construction when the dispatcher fell back to scalar code).
  const size_t lanes = ShaMultiBufLanes();
  std::vector<Bytes> lane_msgs;
  Drbg lane_rng(0x1a11e5);
  for (size_t i = 0; i < lanes; ++i) {
    lane_msgs.push_back(lane_rng.Generate(65536));
  }
  // Bit-exactness of the multi-buffer engine on the benchmarked inputs.
  bool multibuf_exact = true;
  {
    std::vector<Bytes> digests = Sha1DigestMany(lane_msgs);
    std::vector<Bytes> digests256 = Sha256DigestMany(lane_msgs);
    for (size_t i = 0; i < lanes; ++i) {
      multibuf_exact = multibuf_exact && digests[i] == Sha1::Digest(lane_msgs[i]) &&
                       digests256[i] == Sha256::Digest(lane_msgs[i]);
    }
  }
  double sha1_mb_msgs =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(Sha1DigestMany(lane_msgs)); }, 1.0, 20000) *
      static_cast<double>(lanes);
  double sha256_mb_msgs =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(Sha256DigestMany(lane_msgs)); }, 1.0,
                       20000) *
      static_cast<double>(lanes);

  SimClock clock;
  Tpm tpm(&clock, BroadcomBcm0102Profile());
  TpmTransport transport(&tpm);
  TpmClient client(&transport);
  Bytes nonce(20, 1);
  PcrSelection selection({17});
  double quote_ops =
      MeasureOpsPerSec([&] { benchmark::DoNotOptimize(client.Quote(nonce, selection)); }, 1.0, 2000);

  // The headline: one TPM quote amortized over a 32-challenge batch, with
  // the full verifier-side crypto (Merkle roots + batched RSA verify) on
  // the clock. Verified quotes/sec vs the serialized quote path above.
  constexpr size_t kBatchChallenges = 32;
  Machine machine;
  TqdConfig tqd_config;
  tqd_config.max_batch_size = kBatchChallenges;
  TpmQuoteDaemon tqd(&machine, tqd_config);
  Drbg batch_rng(0xba7c4);
  std::vector<Bytes> batch_nonces;
  for (size_t i = 0; i < kBatchChallenges; ++i) {
    batch_nonces.push_back(batch_rng.Generate(20));
  }
  bool batch_ok = RunBatchQuoteRound(&tqd, batch_nonces);
  double batch_verified_per_sec =
      MeasureOpsPerSec([&] { batch_ok = batch_ok && RunBatchQuoteRound(&tqd, batch_nonces); },
                       1.0, 2000) *
      static_cast<double>(kBatchChallenges);

  std::fprintf(out,
               "{\n"
               "  \"schema\": \"flicker-bench-crypto-v2\",\n"
               "  \"unit\": \"ops_per_sec\",\n"
               "  \"modexp2048_montgomery\": %.3f,\n"
               "  \"modexp2048_reference\": %.3f,\n"
               "  \"modexp2048_speedup\": %.2f,\n"
               "  \"modexp2048_bit_exact\": %s,\n"
               "  \"rsa2048_crt_sign\": %.3f,\n"
               "  \"sha1_64kb\": %.3f,\n"
               "  \"sha256_64kb\": %.3f,\n"
               "  \"sha_multibuf_engine\": \"%s\",\n"
               "  \"sha_multibuf_lanes\": %zu,\n"
               "  \"sha_multibuf_bit_exact\": %s,\n"
               "  \"sha1_multibuf_64kb_msgs_per_sec\": %.3f,\n"
               "  \"sha1_multibuf_speedup\": %.2f,\n"
               "  \"sha256_multibuf_64kb_msgs_per_sec\": %.3f,\n"
               "  \"sha256_multibuf_speedup\": %.2f,\n"
               "  \"tpm_quote_end_to_end\": %.3f,\n"
               "  \"batch_quote_challenges\": %zu,\n"
               "  \"batch_quote_all_verified\": %s,\n"
               "  \"batch_quote_verified_per_sec\": %.3f,\n"
               "  \"batch_quote_speedup_vs_serial\": %.2f\n"
               "}\n",
               mont_ops, ref_ops, mont_ops / ref_ops, bit_exact ? "true" : "false", sign_ops,
               sha_ops, sha256_ops, ShaMultiBufEngine(), lanes,
               multibuf_exact ? "true" : "false", sha1_mb_msgs, sha1_mb_msgs / sha_ops,
               sha256_mb_msgs, sha256_mb_msgs / sha256_ops, quote_ops, kBatchChallenges,
               batch_ok ? "true" : "false", batch_verified_per_sec,
               batch_verified_per_sec / quote_ops);
  std::fclose(out);
  std::printf("modexp2048: montgomery %.1f ops/s, reference %.1f ops/s (%.1fx, bit_exact=%s)\n",
              mont_ops, ref_ops, mont_ops / ref_ops, bit_exact ? "true" : "false");
  std::printf("rsa2048 CRT sign: %.1f ops/s; sha1 64KB: %.1f ops/s; quote: %.1f ops/s\n",
              sign_ops, sha_ops, quote_ops);
  std::printf("sha multibuf (%s, %zu lanes): sha1 %.1f msgs/s (%.1fx), sha256 %.1f msgs/s "
              "(%.1fx), bit_exact=%s\n",
              ShaMultiBufEngine(), lanes, sha1_mb_msgs, sha1_mb_msgs / sha_ops, sha256_mb_msgs,
              sha256_mb_msgs / sha256_ops, multibuf_exact ? "true" : "false");
  std::printf("batch quote (32 challenges): %.1f verified quotes/s (%.1fx vs serialized, "
              "all_verified=%s)\n",
              batch_verified_per_sec, batch_verified_per_sec / quote_ops,
              batch_ok ? "true" : "false");
  std::printf("wrote %s\n", path.c_str());
  return (bit_exact && multibuf_exact && batch_ok) ? 0 : 2;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--bench_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return flicker::RunJsonBench(argv[i] + sizeof(kFlag) - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
