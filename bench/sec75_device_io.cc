// §7.5 reproduction: impact on the suspended OS. The paper copies large
// files (CD-ROM/HDD/USB) while 8.3 s distributed-computing sessions run with
// 37 ms OS windows; md5sum confirms no corruption and the kernel reports no
// I/O errors. We reproduce all four transfer pairs with a descriptor-ring
// device model.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/os/devices.h"

namespace flicker {
namespace {

void RunCopy(const char* label, double device_mb_per_s, uint64_t total_mb) {
  BlockCopyParams params;
  params.total_bytes = total_mb * 1024 * 1024;
  params.device_mb_per_s = device_mb_per_s;
  params.session_ms = 8300.0;  // Paper: sessions average 8.3 s.
  params.os_window_ms = 37.0;  // Paper: OS runs ~37 ms in between.
  BlockCopyReport report = SimulateBlockCopyDuringSessions(params);

  bool integral = report.source_digest == report.delivered_digest;
  std::printf("%-26s %6llu MB %9.1f s %7llu %8.1f s %10s %8s\n", label,
              static_cast<unsigned long long>(total_mb), report.elapsed_ms / 1000.0,
              static_cast<unsigned long long>(report.stall_events), report.stall_ms / 1000.0,
              report.io_errors == 0 ? "0" : "NONZERO", integral ? "OK" : "CORRUPT");
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::PrintHeader(
      "Sec 7.5: bulk copies during repeated Flicker sessions (8.3 s / 37 ms)");
  std::printf("%-26s %9s %11s %7s %10s %10s %8s\n", "transfer", "size", "elapsed", "stalls",
              "stall time", "io errors", "md5sum");
  flicker::PrintRule();
  // The paper's four pairs: CD-ROM ~8 MB/s sustained, HDD ~40, USB ~20.
  flicker::RunCopy("CD-ROM -> hard drive", 8.0, 256);
  flicker::RunCopy("CD-ROM -> USB drive", 8.0, 256);
  flicker::RunCopy("hard drive -> USB drive", 20.0, 1024);
  flicker::RunCopy("USB drive -> hard drive", 20.0, 1024);
  std::printf("\n(paper: \"the kernel did not report any I/O errors, and integrity checks\n"
              " with md5sum confirmed that the integrity of all files remained intact\";\n"
              " transfers are delayed - the device stalls on a full descriptor ring -\n"
              " but never lost.)\n");
  return 0;
}
