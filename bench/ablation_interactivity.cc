// Ablation: user-perceived interactivity vs session length (§7.5's "the
// user will perceive a hang" + §6.2's multitasking rationale).
//
// Sweeps the per-session length while keeping the total PAL compute fixed,
// showing why the distributed-computing PAL "periodically returns control
// to the untrusted OS": long sessions drop user input, short sessions pay
// the per-session overhead more often (Table 4's trade-off).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/hw/timing.h"
#include "src/os/interactivity.h"

namespace flicker {
namespace {

void RunSweep() {
  PrintHeader("Ablation: input loss and efficiency vs session length");
  std::printf("%-16s %10s %10s %12s %12s\n", "session length", "hang (ms)", "input loss",
              "overhead %", "note");
  PrintRule();

  // Fixed per-session overhead on the paper's testbed (SKINIT stub +
  // unseal + extends).
  const TimingModel timing = DefaultTimingModel();
  const double overhead_ms = timing.SkinitMillis(4736) + timing.tpm.unseal_ms +
                             4 * timing.tpm.pcr_extend_ms + timing.tpm.session_start_ms;

  struct Row {
    const char* label;
    double session_ms;
  };
  for (const Row& row : {Row{"100 ms", 100}, Row{"500 ms", 500}, Row{"1 s", 1000},
                         Row{"2 s", 2000}, Row{"4 s", 4000}, Row{"8.3 s (paper)", 8300}}) {
    InteractivityParams params;
    params.session_ms = row.session_ms;
    params.duration_ms = 120'000;
    InteractivityReport report = SimulateUserInputDuringSessions(params);
    double overhead_pct = row.session_ms > overhead_ms
                              ? overhead_ms / row.session_ms * 100.0
                              : 100.0;
    const char* note = "";
    if (row.session_ms <= overhead_ms) {
      note = "all overhead, no useful work";
    } else if (report.loss_fraction > 0.5) {
      note = "unusable interactively";
    } else if (report.loss_fraction < 0.05 && overhead_pct < 50) {
      note = "sweet spot";
    }
    std::printf("%-16s %10.0f %9.1f%% %11.1f%% %12s\n", row.label, report.longest_hang_ms,
                report.loss_fraction * 100.0, overhead_pct, note);
  }
  std::printf("\n(the i8042 controller buffers ~16 events across a hang; at 30 events/s a\n"
              " session beyond ~0.5 s starts dropping input - §7.5's \"keyboard and mouse\n"
              " input during the Flicker session may be lost\")\n");
}

}  // namespace
}  // namespace flicker

int main() {
  flicker::RunSweep();
  return 0;
}
