// Host-side microbenchmarks of the crash-recovery paths: what does coming
// back from a power loss cost in real wall time?
//
// Robustness machinery must be cheap enough that nobody is tempted to skip
// it. The --bench_json mode (BENCH_robustness.json) asserts absolute budgets:
// the TPM_Init + TPM_Startup(ST_CLEAR) recovery path, a Startup that has to
// roll a torn NV write forward from the journal, TPM_SaveState, and a
// CrashConsistentSealedStore::Recover() classification each stay under a
// millisecond of real time, and a disabled CRASH_POINT costs nanoseconds -
// the production price of the whole fault-injection campaign.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/fault.h"
#include "src/crypto/sha1.h"
#include "src/hw/clock.h"
#include "src/hw/timing.h"
#include "src/tpm/tpm.h"
#include "src/tpm/tpm_util.h"
#include "src/tpm/transport.h"
#include "src/core/sealed_state.h"

namespace flicker {
namespace {

constexpr uint32_t kNvIndex = 0x00015151;

struct Rig {
  SimClock clock;
  Tpm tpm;
  TpmTransport transport;
  TpmClient client;
  Bytes owner_auth;

  Rig() : tpm(&clock, BroadcomBcm0102Profile()), transport(&tpm), client(&transport) {
    owner_auth = Sha1::Digest(BytesOf("owner"));
    (void)tpm.TakeOwnership(owner_auth);
    (void)TpmDefineNvSpace(&client, kNvIndex, 8, PcrSelection(), {}, PcrSelection(), {},
                           owner_auth);
    (void)client.NvWrite(kNvIndex, Bytes(8, 0x11));
  }

  void PowerCycle() {
    transport.hardware()->Init();
    (void)client.Startup(TpmStartupType::kClear);
  }

  // Leaves a committed-but-torn NV write behind, exactly as a power cut
  // mid-apply would.
  void TearNvWrite() {
    CrashPlan plan;
    plan.crash_at_hit = 1;
    plan.only_point = "tpm.nv_write.apply";
    FaultScheduler scheduler;
    scheduler.Arm(plan);
    FaultInjectionScope scope(&scheduler);
    try {
      (void)tpm.NvWrite(kNvIndex, Bytes(8, 0x22));
    } catch (const PowerLossException&) {
    }
  }
};

// A disabled crash point is one null check; keep the loop opaque enough that
// the compiler cannot delete it.
void HitCrashPoints(int n) {
  for (int i = 0; i < n; ++i) {
    CRASH_POINT("bench.noop");
  }
}

// ---- google-benchmark section (table mode) ----

void BM_InitStartupClear(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    rig.PowerCycle();
  }
}
BENCHMARK(BM_InitStartupClear);

void BM_StartupJournalReplay(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    rig.TearNvWrite();
    rig.PowerCycle();
  }
}
BENCHMARK(BM_StartupJournalReplay);

void BM_SaveState(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.client.SaveState());
  }
}
BENCHMARK(BM_SaveState);

void BM_DisabledCrashPoint(benchmark::State& state) {
  for (auto _ : state) {
    HitCrashPoints(1024);
  }
}
BENCHMARK(BM_DisabledCrashPoint);

// ---- JSON mode: fixed-schema report + absolute wall-time budgets ----

template <typename Fn>
double MeasureMicrosPerOp(Fn&& fn, double min_seconds, int max_iters) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up iteration, untimed.
  int iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds && iters < max_iters);
  return elapsed / iters * 1e6;
}

int RunJsonBench(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_recovery: cannot open %s for writing\n", path.c_str());
    return 1;
  }

  Rig rig;
  Result<CrashConsistentSealedStore> created = CrashConsistentSealedStore::Create(
      &rig.client, Sha1::Digest(BytesOf("ctr")), rig.owner_auth);
  if (!created.ok()) {
    std::fprintf(stderr, "micro_recovery: store creation failed\n");
    return 1;
  }
  CrashConsistentSealedStore store = created.take();
  Bytes release_pcr = rig.client.PcrRead(17).value();
  (void)store.Seal(BytesOf("gen-1"), release_pcr, Sha1::Digest(BytesOf("blob")));

  struct Row {
    const char* key;
    double wall_us;    // Measured real time per operation.
    double budget_us;  // Absolute ceiling; exceeding it fails the bench.
  };
  Row rows[] = {
      {"init_startup_clear",
       MeasureMicrosPerOp([&] { rig.PowerCycle(); }, 0.5, 200000), 1000.0},
      {"startup_journal_replay",
       MeasureMicrosPerOp(
           [&] {
             rig.TearNvWrite();
             rig.PowerCycle();
           },
           0.5, 200000),
       1500.0},
      {"save_state",
       MeasureMicrosPerOp([&] { benchmark::DoNotOptimize(rig.client.SaveState()); }, 0.5,
                          200000),
       1000.0},
      {"store_recover",
       MeasureMicrosPerOp([&] { benchmark::DoNotOptimize(store.Recover()); }, 0.5, 200000),
       1000.0},
      {"crash_point_disabled",
       MeasureMicrosPerOp([&] { HitCrashPoints(1024); }, 0.2, 200000) / 1024.0, 0.05},
  };

  bool within_budget = true;
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"flicker-bench-robustness-v1\",\n"
               "  \"operations\": {\n");
  for (size_t i = 0; i < sizeof(rows) / sizeof(rows[0]); ++i) {
    bool ok = rows[i].wall_us < rows[i].budget_us;
    within_budget = within_budget && ok;
    std::fprintf(out,
                 "    \"%s\": {\"wall_us\": %.4f, \"budget_us\": %.2f}%s\n",
                 rows[i].key, rows[i].wall_us, rows[i].budget_us,
                 i + 1 < sizeof(rows) / sizeof(rows[0]) ? "," : "");
    std::printf("%-22s: %10.4f us real (budget %8.2f us)%s\n", rows[i].key, rows[i].wall_us,
                rows[i].budget_us, ok ? "" : "  OVER BUDGET");
  }
  std::fprintf(out,
               "  },\n"
               "  \"within_budget\": %s\n"
               "}\n",
               within_budget ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s (within_budget=%s)\n", path.c_str(), within_budget ? "true" : "false");
  return within_budget ? 0 : 2;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--bench_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return flicker::RunJsonBench(argv[i] + sizeof(kFlag) - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
