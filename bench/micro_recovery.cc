// Host-side microbenchmarks of the crash-recovery paths: what does coming
// back from a power loss cost in real wall time?
//
// Robustness machinery must be cheap enough that nobody is tempted to skip
// it. The --bench_json mode (BENCH_robustness.json) asserts absolute budgets:
// the TPM_Init + TPM_Startup(ST_CLEAR) recovery path, a Startup that has to
// roll a torn NV write forward from the journal, TPM_SaveState, and a
// CrashConsistentSealedStore::Recover() classification each stay under a
// millisecond of real time, and a disabled CRASH_POINT costs nanoseconds -
// the production price of the whole fault-injection campaign.
//
// The v2 schema adds a "fleet" section: the gray-failure verifier-farm
// campaign. Six cells - 0/1/2 gray-slow verifiers, each unhedged (blind
// round-robin) and hedged (p95 hedges + breakers + admission control) - run
// in simulated time, so their numbers are seed-deterministic; the hedged
// two-gray cell is run twice and must serialize byte-identically.
// Acceptance: hedged completion stays >= 99% with p99 <= 3x the fault-free
// p99 while the unhedged control demonstrably degrades, and accepted_wrong
// stays zero everywhere (exit 2 otherwise).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/fault.h"
#include "src/crypto/sha1.h"
#include "src/hw/clock.h"
#include "src/hw/timing.h"
#include "src/tpm/tpm.h"
#include "src/tpm/tpm_util.h"
#include "src/tpm/transport.h"
#include "src/core/sealed_state.h"
#include "src/sim/fleet.h"

namespace flicker {
namespace {

constexpr uint32_t kNvIndex = 0x00015151;

struct Rig {
  SimClock clock;
  Tpm tpm;
  TpmTransport transport;
  TpmClient client;
  Bytes owner_auth;

  Rig() : tpm(&clock, BroadcomBcm0102Profile()), transport(&tpm), client(&transport) {
    owner_auth = Sha1::Digest(BytesOf("owner"));
    (void)tpm.TakeOwnership(owner_auth);
    (void)TpmDefineNvSpace(&client, kNvIndex, 8, PcrSelection(), {}, PcrSelection(), {},
                           owner_auth);
    (void)client.NvWrite(kNvIndex, Bytes(8, 0x11));
  }

  void PowerCycle() {
    transport.hardware()->Init();
    (void)client.Startup(TpmStartupType::kClear);
  }

  // Leaves a committed-but-torn NV write behind, exactly as a power cut
  // mid-apply would.
  void TearNvWrite() {
    CrashPlan plan;
    plan.crash_at_hit = 1;
    plan.only_point = "tpm.nv_write.apply";
    FaultScheduler scheduler;
    scheduler.Arm(plan);
    FaultInjectionScope scope(&scheduler);
    try {
      (void)tpm.NvWrite(kNvIndex, Bytes(8, 0x22));
    } catch (const PowerLossException&) {
    }
  }
};

// A disabled crash point is one null check; keep the loop opaque enough that
// the compiler cannot delete it.
void HitCrashPoints(int n) {
  for (int i = 0; i < n; ++i) {
    CRASH_POINT("bench.noop");
  }
}

// ---- google-benchmark section (table mode) ----

void BM_InitStartupClear(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    rig.PowerCycle();
  }
}
BENCHMARK(BM_InitStartupClear);

void BM_StartupJournalReplay(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    rig.TearNvWrite();
    rig.PowerCycle();
  }
}
BENCHMARK(BM_StartupJournalReplay);

void BM_SaveState(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.client.SaveState());
  }
}
BENCHMARK(BM_SaveState);

void BM_DisabledCrashPoint(benchmark::State& state) {
  for (auto _ : state) {
    HitCrashPoints(1024);
  }
}
BENCHMARK(BM_DisabledCrashPoint);

// ---- Verifier-farm gray-failure campaign (simulated time) ----

constexpr double kGraySlowFactor = 40.0;

sim::FleetConfig FarmCampaignConfig(bool hedged, int gray) {
  sim::FleetConfig config;
  config.seed = 11;
  config.num_machines = 64;
  config.num_verifiers = 8;
  config.rounds = 256;
  config.mean_interarrival_ms = 20.0;
  config.batched_machines_bp = 5000;
  config.round_timeout_ms = 30000.0;
  // Verification is made expensive enough (50 ms) that a 40x gray verifier
  // (2 s per frame) builds a real queue behind itself: the unhedged control
  // must visibly hurt, not shrug the fault off.
  config.verify_cost_ms = 50.0;
  if (hedged) {
    config.farm.hedge = true;
    config.farm.max_outstanding = 16;
  }
  for (int v = 0; v < gray; ++v) {
    sim::FleetVerifierFault fault;
    fault.kind = sim::FleetVerifierFault::Kind::kGraySlow;
    fault.verifier = v;
    fault.start_ms = 0.0;
    fault.end_ms = 6000.0;  // Past the last arrival: gray for the whole run.
    fault.slow_factor = kGraySlowFactor;
    config.verifier_faults.push_back(fault);
  }
  return config;
}

struct FarmCell {
  const char* key;
  bool hedged;
  int gray;
  sim::FleetStats stats;
  double completion = 0;
};

int RunFarmCampaign(std::FILE* out, bool* accepted) {
  FarmCell cells[] = {
      {"unhedged_gray0", false, 0}, {"unhedged_gray1", false, 1}, {"unhedged_gray2", false, 2},
      {"hedged_gray0", true, 0},    {"hedged_gray1", true, 1},    {"hedged_gray2", true, 2},
  };
  std::string hedged_gray2_json;
  for (FarmCell& cell : cells) {
    sim::FleetConfig config = FarmCampaignConfig(cell.hedged, cell.gray);
    sim::Fleet fleet(config);
    Status run = fleet.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "micro_recovery: farm cell %s failed: %s\n", cell.key,
                   run.ToString().c_str());
      return 1;
    }
    cell.stats = fleet.stats();
    cell.completion = static_cast<double>(cell.stats.rounds_completed) /
                      static_cast<double>(cell.stats.rounds_injected);
    if (cell.hedged && cell.gray == 2) {
      hedged_gray2_json = cell.stats.ToJson(config);
    }
  }

  // Seed-determinism gate: the flagship hedged cell re-run must serialize
  // byte-identically (same seed, same event interleaving, same JSON).
  bool deterministic = false;
  {
    sim::FleetConfig config = FarmCampaignConfig(/*hedged=*/true, /*gray=*/2);
    sim::Fleet fleet(config);
    if (fleet.Run().ok()) {
      deterministic = fleet.stats().ToJson(config) == hedged_gray2_json;
    }
  }

  const FarmCell& hedged0 = cells[3];
  const FarmCell& hedged2 = cells[5];
  const FarmCell& unhedged0 = cells[0];
  const FarmCell& unhedged2 = cells[2];
  const double hedged_p99_limit = 3.0 * hedged0.stats.LatencyPercentileMs(0.99);
  const bool completion_ok = hedged2.completion >= 0.99;
  const bool p99_ok = hedged2.stats.LatencyPercentileMs(0.99) <= hedged_p99_limit;
  const bool unhedged_degrades =
      unhedged2.completion < 0.99 ||
      unhedged2.stats.LatencyPercentileMs(0.99) >
          3.0 * unhedged0.stats.LatencyPercentileMs(0.99);
  bool accepted_wrong_zero = true;
  for (const FarmCell& cell : cells) {
    accepted_wrong_zero = accepted_wrong_zero && cell.stats.accepted_wrong == 0;
  }
  *accepted =
      completion_ok && p99_ok && unhedged_degrades && accepted_wrong_zero && deterministic;

  std::fprintf(out,
               "  \"fleet\": {\n"
               "    \"config\": {\"machines\": 64, \"verifiers\": 8, \"rounds\": 256, "
               "\"verify_cost_ms\": 50.0, \"gray_slow_factor\": %.1f, \"seed\": 11},\n"
               "    \"cells\": {\n",
               kGraySlowFactor);
  for (size_t i = 0; i < sizeof(cells) / sizeof(cells[0]); ++i) {
    const FarmCell& cell = cells[i];
    std::fprintf(out,
                 "      \"%s\": {\"completed\": %llu, \"timed_out\": %llu, "
                 "\"completion\": %.4f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"hedges_fired\": %llu, \"hedge_wins\": %llu, \"breaker_trips\": %llu, "
                 "\"overload_sheds\": %llu, \"accepted_wrong\": %llu}%s\n",
                 cell.key, static_cast<unsigned long long>(cell.stats.rounds_completed),
                 static_cast<unsigned long long>(cell.stats.rounds_timed_out), cell.completion,
                 cell.stats.LatencyPercentileMs(0.50), cell.stats.LatencyPercentileMs(0.99),
                 static_cast<unsigned long long>(cell.stats.hedges_fired),
                 static_cast<unsigned long long>(cell.stats.hedge_wins),
                 static_cast<unsigned long long>(cell.stats.breaker_trips),
                 static_cast<unsigned long long>(cell.stats.overload_sheds),
                 static_cast<unsigned long long>(cell.stats.accepted_wrong),
                 i + 1 < sizeof(cells) / sizeof(cells[0]) ? "," : "");
    std::printf("farm %-14s: %5.1f%% complete, p99 %8.1f ms, %llu hedges, %llu trips\n",
                cell.key, cell.completion * 100.0, cell.stats.LatencyPercentileMs(0.99),
                static_cast<unsigned long long>(cell.stats.hedges_fired),
                static_cast<unsigned long long>(cell.stats.breaker_trips));
  }
  std::fprintf(out,
               "    },\n"
               "    \"acceptance\": {\"hedged_gray2_completion_ok\": %s, "
               "\"hedged_gray2_p99_ok\": %s, \"unhedged_degrades\": %s, "
               "\"accepted_wrong_zero\": %s, \"deterministic\": %s}\n"
               "  },\n",
               completion_ok ? "true" : "false", p99_ok ? "true" : "false",
               unhedged_degrades ? "true" : "false", accepted_wrong_zero ? "true" : "false",
               deterministic ? "true" : "false");
  return 0;
}

// ---- JSON mode: fixed-schema report + absolute wall-time budgets ----

template <typename Fn>
double MeasureMicrosPerOp(Fn&& fn, double min_seconds, int max_iters) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up iteration, untimed.
  int iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds && iters < max_iters);
  return elapsed / iters * 1e6;
}

int RunJsonBench(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_recovery: cannot open %s for writing\n", path.c_str());
    return 1;
  }

  Rig rig;
  Result<CrashConsistentSealedStore> created = CrashConsistentSealedStore::Create(
      &rig.client, Sha1::Digest(BytesOf("ctr")), rig.owner_auth);
  if (!created.ok()) {
    std::fprintf(stderr, "micro_recovery: store creation failed\n");
    return 1;
  }
  CrashConsistentSealedStore store = created.take();
  Bytes release_pcr = rig.client.PcrRead(17).value();
  (void)store.Seal(BytesOf("gen-1"), release_pcr, Sha1::Digest(BytesOf("blob")));

  struct Row {
    const char* key;
    double wall_us;    // Measured real time per operation.
    double budget_us;  // Absolute ceiling; exceeding it fails the bench.
  };
  Row rows[] = {
      {"init_startup_clear",
       MeasureMicrosPerOp([&] { rig.PowerCycle(); }, 0.5, 200000), 1000.0},
      {"startup_journal_replay",
       MeasureMicrosPerOp(
           [&] {
             rig.TearNvWrite();
             rig.PowerCycle();
           },
           0.5, 200000),
       1500.0},
      {"save_state",
       MeasureMicrosPerOp([&] { benchmark::DoNotOptimize(rig.client.SaveState()); }, 0.5,
                          200000),
       1000.0},
      {"store_recover",
       MeasureMicrosPerOp([&] { benchmark::DoNotOptimize(store.Recover()); }, 0.5, 200000),
       1000.0},
      {"crash_point_disabled",
       MeasureMicrosPerOp([&] { HitCrashPoints(1024); }, 0.2, 200000) / 1024.0, 0.05},
  };

  bool within_budget = true;
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"flicker-bench-robustness-v2\",\n"
               "  \"operations\": {\n");
  for (size_t i = 0; i < sizeof(rows) / sizeof(rows[0]); ++i) {
    bool ok = rows[i].wall_us < rows[i].budget_us;
    within_budget = within_budget && ok;
    std::fprintf(out,
                 "    \"%s\": {\"wall_us\": %.4f, \"budget_us\": %.2f}%s\n",
                 rows[i].key, rows[i].wall_us, rows[i].budget_us,
                 i + 1 < sizeof(rows) / sizeof(rows[0]) ? "," : "");
    std::printf("%-22s: %10.4f us real (budget %8.2f us)%s\n", rows[i].key, rows[i].wall_us,
                rows[i].budget_us, ok ? "" : "  OVER BUDGET");
  }
  std::fprintf(out, "  },\n");
  bool farm_accepted = false;
  int farm_rc = RunFarmCampaign(out, &farm_accepted);
  if (farm_rc != 0) {
    std::fclose(out);
    return farm_rc;
  }
  std::fprintf(out,
               "  \"within_budget\": %s\n"
               "}\n",
               within_budget ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s (within_budget=%s, farm_accepted=%s)\n", path.c_str(),
              within_budget ? "true" : "false", farm_accepted ? "true" : "false");
  return within_budget && farm_accepted ? 0 : 2;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--bench_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return flicker::RunJsonBench(argv[i] + sizeof(kFlag) - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
