// The vTPM multiplexer bench: the noisy-neighbor + power-cut chaos campaign
// under the discrete-event engine. Six tenants share one hardware TPM; one
// floods at ~50x its fair rate, one crash-loops with a bad owner auth, and
// two mid-campaign power cuts force the crash-consistent recovery path.
// Reports per-tenant completion, fairness (Jain's index over healthy
// tenants), healthy-tenant latency percentiles and the robustness counters
// as BENCH_vtpm.json.
//
// Determinism is part of the contract: the same seed must produce a
// byte-identical JSON file and executor order digest run after run -
// verify.sh --vtpm runs this twice per seed and cmp(1)s the outputs.
//
//   micro_vtpm                      flagship campaign, summary to stdout
//   micro_vtpm --bench_json=PATH    also write the JSON report to PATH
//   micro_vtpm --tenants=N --seed=N --duration_ms=N
//                                   override the flagship shape
//   micro_vtpm --quiet              disable the misbehaving tenants and the
//                                   power cuts (clean baseline)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/vtpm/vtpm_campaign.h"

namespace flicker {
namespace {

vtpm::VtpmCampaignConfig FlagshipConfig() {
  vtpm::VtpmCampaignConfig config;
  config.seed = 1;
  config.num_tenants = 6;
  config.flooding_tenant = 0;
  config.crashloop_tenant = 1;
  config.duration_ms = 120000.0;
  config.power_cut_at_ms = {30000.0, 75000.0};
  return config;
}

int RunCampaign(const vtpm::VtpmCampaignConfig& config, const std::string& json_path) {
  Result<vtpm::VtpmCampaignStats> run = vtpm::RunVtpmCampaign(config);
  if (!run.ok()) {
    std::fprintf(stderr, "vtpm campaign failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const vtpm::VtpmCampaignStats& stats = run.value();

  std::printf("vtpm: %d tenants (flood=%d crashloop=%d), %.0f ms horizon, seed %llu\n",
              config.num_tenants, config.flooding_tenant, config.crashloop_tenant,
              config.duration_ms, static_cast<unsigned long long>(config.seed));
  for (size_t i = 0; i < stats.tenants.size(); ++i) {
    const vtpm::VtpmTenantCampaignStats& tenant = stats.tenants[i];
    std::printf("  tenant %zu: %llu injected, %llu completed, %llu failed, %llu shed, "
                "%llu breaker trips\n",
                i, static_cast<unsigned long long>(tenant.injected),
                static_cast<unsigned long long>(tenant.completed),
                static_cast<unsigned long long>(tenant.failed),
                static_cast<unsigned long long>(tenant.shed),
                static_cast<unsigned long long>(tenant.breaker_trips));
  }
  std::printf("  fairness: healthy completion %.4f, Jain %.4f\n",
              stats.HealthyCompletionRate(config), stats.HealthyJainIndex(config));
  std::printf("  healthy latency: p50 %.1f ms, p99 %.1f ms\n",
              stats.HealthyLatencyPercentileMs(0.50), stats.HealthyLatencyPercentileMs(0.99));
  std::printf("  robustness: %llu rollbacks detected, %llu quarantines, %llu shed, "
              "%llu power cuts\n",
              static_cast<unsigned long long>(stats.rollbacks_detected),
              static_cast<unsigned long long>(stats.quarantines),
              static_cast<unsigned long long>(stats.shed_total),
              static_cast<unsigned long long>(stats.power_cuts));
  std::printf("  verifier: %llu verified, %llu rejected, accepted_wrong=%llu\n",
              static_cast<unsigned long long>(stats.responses_verified),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.accepted_wrong));
  std::printf("  engine: %llu events, max heap %zu, order digest 0x%016llx\n",
              static_cast<unsigned long long>(stats.events_processed), stats.max_heap,
              static_cast<unsigned long long>(stats.order_digest));

  if (stats.accepted_wrong != 0) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %llu quotes answered the wrong challenge\n",
                 static_cast<unsigned long long>(stats.accepted_wrong));
    return 2;
  }

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = stats.ToJson(config);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace flicker

int main(int argc, char** argv) {
  flicker::vtpm::VtpmCampaignConfig config = flicker::FlagshipConfig();
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--bench_json=", 13) == 0) {
      json_path = arg + 13;
    } else if (std::strncmp(arg, "--tenants=", 10) == 0) {
      config.num_tenants = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--duration_ms=", 14) == 0) {
      config.duration_ms = std::atof(arg + 14);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      config.flooding_tenant = -1;
      config.crashloop_tenant = -1;
      config.power_cut_at_ms.clear();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 1;
    }
  }
  return flicker::RunCampaign(config, json_path);
}
