#!/usr/bin/env sh
# Tier-1 verification: configure, build everything, run the full ctest suite.
#
#   verify.sh            build + ctest in ./build (Release by default)
#   verify.sh --asan     additionally build with ASan+UBSan in ./build-asan
#                        and run the TPM and core suites under the sanitizers
#   verify.sh --faults   additionally run the fault-injection campaign
#                        (ctest -L faults, crash matrix included) under
#                        ASan+UBSan and refresh BENCH_robustness.json
#   verify.sh --net      additionally run the adversarial-network campaign
#                        (ctest -L net, chaos matrix included) under
#                        ASan+UBSan and refresh BENCH_net.json
#
# Usage: verify.sh [--asan|--faults|--net] [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
asan=0
faults=0
net=0
if [ "${1:-}" = "--asan" ]; then
  asan=1
  shift
elif [ "${1:-}" = "--faults" ]; then
  faults=1
  shift
elif [ "${1:-}" = "--net" ]; then
  net=1
  shift
fi
build_dir=${1:-"$repo_root/build"}
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

if [ "$asan" = 1 ]; then
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    tpm_pcr_bank_test tpm_tpm_test tpm_param_test tpm_transport_test \
    tpm_commands_negative_test core_platform_test core_remote_attestation_test \
    os_tqd_robustness_test common_serde_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -R \
    '^(tpm_|core_|os_tqd_robustness_test|common_serde_test)'
fi

if [ "$faults" = 1 ]; then
  # Power-loss fault-injection campaign: the crash matrix and the rest of the
  # `faults`-labeled suite, under ASan+UBSan so torn-state handling is also
  # memory-clean, plus the recovery-path wall-time budgets.
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    tpm_lifecycle_test core_sealed_state_test os_tqd_breaker_test \
    integration_crash_matrix_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -L faults
  cmake --build "$build_dir" -j "$jobs" --target micro_recovery
  "$build_dir/bench/micro_recovery" --bench_json="$repo_root/BENCH_robustness.json"
fi

if [ "$net" = 1 ]; then
  # Adversarial-network campaign: the chaos matrix and the rest of the
  # `net`-labeled suite, under ASan+UBSan so hostile-frame handling is also
  # memory-clean, plus the deterministic session-layer loss report.
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    net_channel_test net_lossy_channel_test net_session_test \
    tpm_commands_negative_test integration_net_chaos_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -L net
  cmake --build "$build_dir" -j "$jobs" --target micro_net
  "$build_dir/bench/micro_net" --bench_json="$repo_root/BENCH_net.json"
fi

echo "verify.sh: all checks passed"
