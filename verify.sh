#!/usr/bin/env sh
# Tier-1 verification: configure, build everything, run the full ctest suite,
# then check the generated docs have not drifted from the code.
#
#   verify.sh            build + ctest in ./build (Release by default),
#                        then the doc-drift gate (docs/METRICS.md must match
#                        its regenerated form; DESIGN.md must keep its
#                        numbered sections)
#   verify.sh --asan     additionally build with ASan+UBSan in ./build-asan
#                        and run the TPM and core suites under the sanitizers
#   verify.sh --faults   additionally run the fault-injection campaign
#                        (ctest -L faults, crash matrix included) under
#                        ASan+UBSan and refresh BENCH_robustness.json
#   verify.sh --net      additionally run the adversarial-network campaign
#                        (ctest -L net, chaos matrix included) under
#                        ASan+UBSan and refresh BENCH_net.json
#   verify.sh --obs      additionally run the observability campaign:
#                        obs-labeled suites under ASan+UBSan, two same-seed
#                        SSH trace exports diffed byte-for-byte, a
#                        -DFLICKER_OBS=OFF build proving the instrumentation
#                        compiles out, and a BENCH_obs.json refresh
#   verify.sh --perf     additionally run the SIMD differential campaign: a
#                        -DFLICKER_SIMD=OFF rebuild in ./build-noperf whose
#                        hash/batch-quote suites must pass and whose paper
#                        tables/figures (Table 1/2/4, Fig. 9) must be
#                        byte-identical to the vectorized build's - speed is
#                        the only thing SIMD may change
#   verify.sh --fleet    additionally run the fleet simulation campaign:
#                        fleet-labeled suites under ASan+UBSan, a
#                        1000-machine sanitizer smoke run, a same-seed
#                        double run of the flagship bench whose JSON must be
#                        byte-identical (refreshing BENCH_fleet.json), and a
#                        multi-seed 64-machine chaos sweep in which
#                        accepted_wrong must stay zero
#   verify.sh --vtpm     additionally run the vTPM multiplexer campaign:
#                        vtpm-labeled suites (wire hardening, rollback
#                        attack, crash matrix, double faults) under
#                        ASan+UBSan, then multi-seed noisy-neighbor chaos
#                        double runs whose JSON must be byte-identical
#                        (refreshing BENCH_vtpm.json) with accepted_wrong
#                        pinned at zero
#   verify.sh --chaos-fuzz
#                        additionally run the composite chaos-fuzz campaign
#                        under ASan+UBSan: a clean-store campaign that must
#                        find nothing, a seeded misordered-commit campaign
#                        that must find a torn_state violation and shrink
#                        it, and the committed minimal replay
#                        (tools/chaos/minimal_torn_state.replay) re-run
#                        twice - byte-identical output, signature matched
#   verify.sh --hv       additionally run the concurrent-execution campaign:
#                        hv-labeled suites (late-launch, classic/concurrent
#                        parity, cross-core adversary battery, fleet
#                        campaign) under ASan+UBSan, then the release
#                        build's flagship bench twice with the same seed -
#                        byte-identical JSON (refreshing BENCH_hv.json,
#                        micro_hv exits 2 if any attack is accepted or
#                        mistyped) - and a multi-seed quiet sweep
#
# Usage: verify.sh [--asan|--faults|--net|--obs|--perf|--fleet|--vtpm|--chaos-fuzz|--hv] [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
asan=0
faults=0
net=0
obs=0
perf=0
fleet=0
vtpm=0
chaosfuzz=0
hv=0
if [ "${1:-}" = "--asan" ]; then
  asan=1
  shift
elif [ "${1:-}" = "--faults" ]; then
  faults=1
  shift
elif [ "${1:-}" = "--net" ]; then
  net=1
  shift
elif [ "${1:-}" = "--obs" ]; then
  obs=1
  shift
elif [ "${1:-}" = "--perf" ]; then
  perf=1
  shift
elif [ "${1:-}" = "--fleet" ]; then
  fleet=1
  shift
elif [ "${1:-}" = "--vtpm" ]; then
  vtpm=1
  shift
elif [ "${1:-}" = "--chaos-fuzz" ]; then
  chaosfuzz=1
  shift
elif [ "${1:-}" = "--hv" ]; then
  hv=1
  shift
fi
build_dir=${1:-"$repo_root/build"}
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

# ---- Doc-drift gate (always on) ----
#
# docs/METRICS.md is generated from the metric definition tables in
# src/obs/metrics.cc; a hand edit or a new metric without a regen fails here.
# Regenerate with: build/bench/micro_obs --dump_metrics_md=docs/METRICS.md
"$build_dir/bench/micro_obs" --dump_metrics_md="$build_dir/METRICS.regen.md" > /dev/null
if ! cmp -s "$build_dir/METRICS.regen.md" "$repo_root/docs/METRICS.md"; then
  echo "verify.sh: docs/METRICS.md drifted from src/obs/metrics.cc" >&2
  echo "  regenerate with: $build_dir/bench/micro_obs --dump_metrics_md=docs/METRICS.md" >&2
  diff -u "$repo_root/docs/METRICS.md" "$build_dir/METRICS.regen.md" >&2 || true
  exit 1
fi
# DESIGN.md must keep its numbered sections; a refactor that silently drops
# the observability/robustness design record fails here.
for heading in \
  '## 5\.' '## 8\.' '## 9\.' '## 10\.' '## 11\.' '## 13\.' '## 14\.' '## 15\.' \
  '## 16\.'; do
  if ! grep -q "^$heading" "$repo_root/DESIGN.md"; then
    echo "verify.sh: DESIGN.md is missing section heading '$heading'" >&2
    exit 1
  fi
done
# docs/HYPERVISOR.md is the operator's record of the concurrent-execution
# mode; it must keep the threat model, the protection table, and the two
# session lifecycles. README.md must keep the build-flag matrix the docs
# point operators at.
for heading in '## Threat model' '## Nested protections' \
  '## Session lifecycles' '## Denial taxonomy'; do
  if ! grep -q "^$heading" "$repo_root/docs/HYPERVISOR.md"; then
    echo "verify.sh: docs/HYPERVISOR.md is missing heading '$heading'" >&2
    exit 1
  fi
done
if ! grep -q '^## Build-flag matrix' "$repo_root/README.md"; then
  echo "verify.sh: README.md is missing the '## Build-flag matrix' section" >&2
  exit 1
fi

# ---- Time-discipline gate (always on) ----
#
# Only the discrete-event engine (src/sim/) and the hardware-model charge
# sites listed in tools/time_discipline.allow may advance a SimClock
# directly. Anything else that wants time to pass must post an event.
allow_regex="$build_dir/time_discipline.regex"
sed -e 's/#.*//' -e 's/[[:space:]]*$//' -e '/^$/d' -e 's/\./\\./g' \
    -e 's#^#^#' -e 's#$#:#' \
    "$repo_root/tools/time_discipline.allow" > "$allow_regex"
time_violations=$(grep -rnE 'Advance(Nanos|Micros|Millis|ToNanos)[[:space:]]*\(' \
    "$repo_root/src" --include='*.cc' --include='*.h' \
  | sed "s#^$repo_root/##" \
  | grep -v '^src/sim/' \
  | grep -vEf "$allow_regex" || true)
if [ -n "$time_violations" ]; then
  echo "verify.sh: direct SimClock advancement outside src/sim/ and the allowlist:" >&2
  echo "$time_violations" >&2
  echo "  schedule an event on the executor instead, or (for a genuine" >&2
  echo "  hardware cost model) add the file to tools/time_discipline.allow" >&2
  exit 1
fi

# ---- Crash-point coverage gate (always on) ----
#
# Every CRASH_POINT("...") durability marker in src/ must be executed by the
# crash-matrix / double-fault suites. A new durability boundary the matrix
# never reaches fails here before it can rot uncovered. The census binaries
# append the points they executed to $FLICKER_CRASH_POINTS_OUT.<tag>.txt;
# registration happens on execution, so scheduler arming does not matter.
census_prefix="$build_dir/crash_points"
rm -f "$census_prefix".*.txt
for census_bin in integration_crash_matrix_test vtpm_crash_matrix_test \
    vtpm_double_fault_test; do
  FLICKER_CRASH_POINTS_OUT="$census_prefix" \
    "$build_dir/tests/$census_bin" > /dev/null
done
grep -rhoE 'CRASH_POINT\("[^"]+"\)' "$repo_root/src" \
    --include='*.cc' --include='*.h' --exclude=fault.h \
  | sed -e 's/^CRASH_POINT("//' -e 's/")$//' | sort -u \
  > "$build_dir/crash_points.expected"
sort -u "$census_prefix".*.txt > "$build_dir/crash_points.covered"
uncovered=$(comm -23 "$build_dir/crash_points.expected" "$build_dir/crash_points.covered")
if [ -n "$uncovered" ]; then
  echo "verify.sh: CRASH_POINT sites in src/ never exercised by the crash matrix:" >&2
  echo "$uncovered" >&2
  echo "  extend the crash-matrix / double-fault workloads to reach them" >&2
  exit 1
fi
echo "verify.sh: crash-point coverage: all $(wc -l < "$build_dir/crash_points.expected" | tr -d ' ') sites exercised"

if [ "$asan" = 1 ]; then
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    tpm_pcr_bank_test tpm_tpm_test tpm_param_test tpm_transport_test \
    tpm_commands_negative_test core_platform_test core_remote_attestation_test \
    os_tqd_robustness_test common_serde_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -R \
    '^(tpm_|core_|os_tqd_robustness_test|common_serde_test)'
fi

if [ "$faults" = 1 ]; then
  # Power-loss fault-injection campaign: the crash matrix and the rest of the
  # `faults`-labeled suite, under ASan+UBSan so torn-state handling is also
  # memory-clean, plus the recovery-path wall-time budgets.
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    tpm_lifecycle_test core_sealed_state_test os_tqd_breaker_test \
    integration_crash_matrix_test vtpm_crash_matrix_test vtpm_double_fault_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -L faults
  cmake --build "$build_dir" -j "$jobs" --target micro_recovery
  "$build_dir/bench/micro_recovery" --bench_json="$repo_root/BENCH_robustness.json"
fi

if [ "$net" = 1 ]; then
  # Adversarial-network campaign: the chaos matrix and the rest of the
  # `net`-labeled suite, under ASan+UBSan so hostile-frame handling is also
  # memory-clean, plus the deterministic session-layer loss report.
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    net_channel_test net_lossy_channel_test net_session_test \
    tpm_commands_negative_test integration_net_chaos_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -L net
  cmake --build "$build_dir" -j "$jobs" --target micro_net
  "$build_dir/bench/micro_net" --bench_json="$repo_root/BENCH_net.json"
fi

if [ "$obs" = 1 ]; then
  # Observability campaign. The obs-labeled suites run under ASan+UBSan
  # (tracer/registry lifetimes must be memory-clean), two same-seed SSH
  # rounds must export byte-identical Chrome traces, the -DFLICKER_OBS=OFF
  # configuration must still build and pass its own overhead proof, and the
  # committed overhead report is refreshed.
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    obs_metrics_test obs_trace_test obs_session_test obs_ring_epoch_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -L obs

  cmake --build "$build_dir" -j "$jobs" --target micro_obs
  "$build_dir/bench/micro_obs" --trace_json="$build_dir/trace_a.json" > /dev/null
  "$build_dir/bench/micro_obs" --trace_json="$build_dir/trace_b.json" > /dev/null
  if ! cmp -s "$build_dir/trace_a.json" "$build_dir/trace_b.json"; then
    echo "verify.sh: same-seed trace exports differ (tracing is nondeterministic)" >&2
    exit 1
  fi
  echo "verify.sh: same-seed SSH traces byte-identical"

  noobs_dir="$repo_root/build-noobs"
  cmake -B "$noobs_dir" -S "$repo_root" -DFLICKER_OBS=OFF
  cmake --build "$noobs_dir" -j "$jobs" --target micro_obs
  "$noobs_dir/bench/micro_obs" --bench_json="$noobs_dir/BENCH_obs_off.json"
  if ! grep -q '"obs_compiled_in": false' "$noobs_dir/BENCH_obs_off.json"; then
    echo "verify.sh: FLICKER_OBS=OFF build still has instrumentation compiled in" >&2
    exit 1
  fi

  "$build_dir/bench/micro_obs" --bench_json="$repo_root/BENCH_obs.json"
fi

if [ "$perf" = 1 ]; then
  # SIMD differential campaign. The multi-buffer SHA engine's scalar fallback
  # must be a drop-in replacement: the forced-scalar build re-runs the hash
  # KAT/differential battery, the Merkle and batch-quote protocol suites, and
  # every reproduced paper table/figure must come out byte-identical to the
  # vectorized build's. Any digest divergence shows up as a test failure or
  # an output diff here.
  noperf_dir="$repo_root/build-noperf"
  cmake -B "$noperf_dir" -S "$repo_root" -DFLICKER_SIMD=OFF
  cmake --build "$noperf_dir" -j "$jobs" --target \
    crypto_hash_test crypto_sha_multibuf_test crypto_merkle_test \
    attest_batch_quote_test os_tqd_batch_test \
    table1_rootkit table2_skinit table4_distributed fig9_ssh
  ctest --test-dir "$noperf_dir" --output-on-failure -j "$jobs" -R \
    '^(crypto_hash_test|crypto_sha_multibuf_test|crypto_merkle_test|attest_batch_quote_test|os_tqd_batch_test)$'

  cmake --build "$build_dir" -j "$jobs" --target \
    table1_rootkit table2_skinit table4_distributed fig9_ssh
  for bin in table1_rootkit table2_skinit table4_distributed fig9_ssh; do
    "$build_dir/bench/$bin" > "$build_dir/$bin.perf.out"
    "$noperf_dir/bench/$bin" > "$noperf_dir/$bin.perf.out"
    if ! cmp -s "$build_dir/$bin.perf.out" "$noperf_dir/$bin.perf.out"; then
      echo "verify.sh: $bin output differs between SIMD and scalar builds" >&2
      diff -u "$build_dir/$bin.perf.out" "$noperf_dir/$bin.perf.out" >&2 || true
      exit 1
    fi
  done
  echo "verify.sh: SIMD and scalar builds byte-identical on Table 1/2/4 + Fig. 9"
fi

if [ "$fleet" = 1 ]; then
  # Fleet simulation campaign. The engine and fleet suites run under
  # ASan+UBSan (the event heap and actor lifetimes must be memory-clean),
  # including a 1000-machine smoke run; then the release build's flagship
  # bench runs twice with the same seed and the JSON reports must be
  # byte-identical; finally a multi-seed 64-machine chaos sweep must keep
  # accepted_wrong at zero (micro_fleet exits 2 on a violation).
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    sim_event_queue_test sim_executor_test sim_tqd_timer_test \
    sim_fleet_test sim_fleet_determinism_test sim_fleet_chaos_test \
    sim_fleet_verifier_fault_test sim_chaos_fuzz_test micro_fleet
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -L fleet
  "$asan_dir/bench/micro_fleet" --machines=1000 --rounds=200 --verifiers=8

  cmake --build "$build_dir" -j "$jobs" --target micro_fleet
  "$build_dir/bench/micro_fleet" --bench_json="$build_dir/fleet_a.json" > /dev/null
  "$build_dir/bench/micro_fleet" --bench_json="$build_dir/fleet_b.json" > /dev/null
  if ! cmp -s "$build_dir/fleet_a.json" "$build_dir/fleet_b.json"; then
    echo "verify.sh: same-seed fleet runs differ (the simulation is nondeterministic)" >&2
    diff -u "$build_dir/fleet_a.json" "$build_dir/fleet_b.json" >&2 || true
    exit 1
  fi
  echo "verify.sh: same-seed 1000-machine fleet runs byte-identical"
  cp "$build_dir/fleet_a.json" "$repo_root/BENCH_fleet.json"

  for seed in 1 2 3; do
    "$build_dir/bench/micro_fleet" --chaos --machines=64 --rounds=256 \
      --verifiers=4 --seed="$seed" > /dev/null
  done
  echo "verify.sh: 64-machine chaos sweep clean (accepted_wrong == 0 across seeds)"
fi

if [ "$vtpm" = 1 ]; then
  # vTPM multiplexer campaign. The vtpm-labeled suites run under ASan+UBSan
  # (the wire-hardening battery, the rollback-attack negative test, the
  # crash matrix and the double-fault sweep must all be memory-clean), then
  # the release build's noisy-neighbor chaos bench runs twice per seed: the
  # JSON reports must be byte-identical (micro_vtpm exits 2 if any quote
  # answered the wrong challenge), and the seed-1 flagship refreshes
  # BENCH_vtpm.json.
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    vtpm_state_test vtpm_wire_test vtpm_manager_test vtpm_mux_test \
    vtpm_crash_matrix_test vtpm_double_fault_test vtpm_campaign_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -L vtpm

  cmake --build "$build_dir" -j "$jobs" --target micro_vtpm
  for seed in 1 7 23; do
    "$build_dir/bench/micro_vtpm" --seed="$seed" \
      --bench_json="$build_dir/vtpm_${seed}_a.json" > /dev/null
    "$build_dir/bench/micro_vtpm" --seed="$seed" \
      --bench_json="$build_dir/vtpm_${seed}_b.json" > /dev/null
    if ! cmp -s "$build_dir/vtpm_${seed}_a.json" "$build_dir/vtpm_${seed}_b.json"; then
      echo "verify.sh: same-seed vtpm campaigns differ (seed $seed is nondeterministic)" >&2
      diff -u "$build_dir/vtpm_${seed}_a.json" "$build_dir/vtpm_${seed}_b.json" >&2 || true
      exit 1
    fi
  done
  echo "verify.sh: multi-seed vtpm chaos double-runs byte-identical, accepted_wrong == 0"
  cp "$build_dir/vtpm_1_a.json" "$repo_root/BENCH_vtpm.json"
fi

if [ "$chaosfuzz" = 1 ]; then
  # Composite chaos-fuzz campaign. The fuzzer composes every injector the
  # fleet harness owns (power cuts, partitions, wire-fault mixes, TPM
  # transport windows, verifier faults) under ASan+UBSan. A clean store must
  # survive a campaign with zero violations (exit 0); the PR 3 seeded
  # misordered-commit bug must be found, shrunk by ddmin and written out as
  # a replay + failure artifact (exit 2). Then the committed minimal replay
  # is the shrinker's regression gate: two release re-runs must be
  # byte-identical and reproduce the recorded torn_state signature (exit 0;
  # 3 would mean signature mismatch).
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target sim_chaos_fuzz_test micro_fleet
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -R sim_chaos_fuzz_test
  "$asan_dir/bench/micro_fleet" --chaos-fuzz --fuzz-plans=16 > /dev/null
  echo "verify.sh: clean-store chaos-fuzz campaign found no violations"
  rc=0
  "$asan_dir/bench/micro_fleet" --chaos-fuzz --misordered-commit --fuzz-plans=24 \
    --replay-out="$asan_dir/fuzz_min.replay" \
    --artifact-out="$asan_dir/fuzz_artifact.txt" > /dev/null || rc=$?
  if [ "$rc" != 2 ]; then
    echo "verify.sh: chaos fuzzer missed the seeded misordered-commit bug (rc=$rc)" >&2
    exit 1
  fi
  echo "verify.sh: chaos fuzzer found and shrank the seeded torn_state violation"

  cmake --build "$build_dir" -j "$jobs" --target micro_fleet
  replay="$repo_root/tools/chaos/minimal_torn_state.replay"
  "$build_dir/bench/micro_fleet" --replay="$replay" > "$build_dir/replay_a.txt"
  "$build_dir/bench/micro_fleet" --replay="$replay" > "$build_dir/replay_b.txt"
  if ! cmp -s "$build_dir/replay_a.txt" "$build_dir/replay_b.txt"; then
    echo "verify.sh: committed chaos replay re-runs differ (nondeterministic replay)" >&2
    diff -u "$build_dir/replay_a.txt" "$build_dir/replay_b.txt" >&2 || true
    exit 1
  fi
  echo "verify.sh: committed minimal replay reproduces byte-identically"
fi

if [ "$hv" = 1 ]; then
  # Concurrent-execution campaign. The hv-labeled suites run under
  # ASan+UBSan (the multi-core machine model, nested-page walks and VMCB
  # bookkeeping must be memory-clean): late-launch/protection units, the
  # classic-vs-concurrent parity battery (every PAL workload byte-identical
  # across modes), the cross-core adversary battery, and the fleet campaign.
  # Then the release build's flagship bench runs twice with the same seed -
  # the JSON reports must be byte-identical (micro_hv exits 2 if any attack
  # is accepted or mistyped, or the pause-reduction floor is missed) and the
  # first run refreshes BENCH_hv.json - followed by a multi-seed quiet sweep.
  asan_dir="$repo_root/build-asan"
  cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Asan
  cmake --build "$asan_dir" -j "$jobs" --target \
    hv_hypervisor_test hv_parity_test hv_adversary_test hv_campaign_test
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" -L hv

  cmake --build "$build_dir" -j "$jobs" --target micro_hv
  "$build_dir/bench/micro_hv" --bench_json="$build_dir/hv_a.json" > /dev/null
  "$build_dir/bench/micro_hv" --bench_json="$build_dir/hv_b.json" > /dev/null
  if ! cmp -s "$build_dir/hv_a.json" "$build_dir/hv_b.json"; then
    echo "verify.sh: same-seed hv campaigns differ (the simulation is nondeterministic)" >&2
    diff -u "$build_dir/hv_a.json" "$build_dir/hv_b.json" >&2 || true
    exit 1
  fi
  echo "verify.sh: same-seed hv campaign double-run byte-identical"
  cp "$build_dir/hv_a.json" "$repo_root/BENCH_hv.json"

  for seed in 2 5 11; do
    "$build_dir/bench/micro_hv" --quiet --seed="$seed" > /dev/null
  done
  echo "verify.sh: multi-seed hv adversarial sweep clean (accepted_wrong == 0 across seeds)"
fi

echo "verify.sh: all checks passed"
